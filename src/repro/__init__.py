"""repro — a full reproduction of MMlib (EDBT 2022).

"Efficiently Managing Deep Learning Models in a Distributed Environment"
(Strassenburg, Tolovski, Rabl): three approaches for saving and recovering
exact deep-learning models — baseline snapshots, parameter updates, and
model provenance — rebuilt from scratch on a numpy deep-learning substrate
with a document store, shared file store, and distributed-environment
simulator.

Subpackages
-----------
``repro.nn``        numpy DL substrate (tensors, autograd, models, optim)
``repro.docstore``  MongoDB-substitute document database (+ TCP server)
``repro.filestore`` shared file storage (+ simulated network links)
``repro.core``      MMlib itself: BA / PUA / MPA, probe tool, heuristics
``repro.distsim``   server/node simulation and evaluation flows
``repro.workloads`` synthetic datasets, model relations, chain pretraining
"""

from .errors import MMLibError, StoreCorruptionError, TransientStoreError
from .faults import CrashPoint, FaultInjector, FaultyDocumentStore
from .retry import RetryingDocumentStore, RetryPolicy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MMLibError",
    "TransientStoreError",
    "StoreCorruptionError",
    "CrashPoint",
    "FaultInjector",
    "FaultyDocumentStore",
    "RetryPolicy",
    "RetryingDocumentStore",
]
