"""Save-info containers: everything a save service needs to persist a model."""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from ..nn.modules import Module
from .errors import SaveError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .train_service import TrainService

__all__ = ["ArchitectureRef", "ModelSaveInfo", "ProvenanceSaveInfo", "TrainRunSpec"]


@dataclass(frozen=True)
class ArchitectureRef:
    """How to rebuild a model's architecture: code + factory reference.

    ``source`` carries the defining module's source text, persisted as the
    model's *code file* (the paper saves the architecture "by its
    implementation in code").  Reconstruction imports ``module`` and calls
    ``factory(**kwargs)``.
    """

    module: str
    factory: str
    kwargs: dict
    source: str = ""

    @classmethod
    def from_factory(cls, module: str, factory: str, kwargs: dict | None = None) -> "ArchitectureRef":
        """Build a ref, capturing the defining module's source code."""
        imported = importlib.import_module(module)
        if not hasattr(imported, factory):
            raise SaveError(f"module {module!r} has no factory {factory!r}")
        try:
            source = inspect.getsource(imported)
        except (OSError, TypeError):
            source = ""
        return cls(module=module, factory=factory, kwargs=dict(kwargs or {}), source=source)

    def build(self) -> Module:
        """Instantiate the architecture (parameters are loaded separately)."""
        imported = importlib.import_module(self.module)
        factory = getattr(imported, self.factory)
        model = factory(**self.kwargs)
        if not isinstance(model, Module):
            raise SaveError(
                f"{self.module}.{self.factory} returned {type(model).__name__}, "
                "expected a Module"
            )
        return model

    def to_dict(self) -> dict:
        return {"module": self.module, "factory": self.factory, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_dict(cls, payload: dict, source: str = "") -> "ArchitectureRef":
        return cls(
            module=payload["module"],
            factory=payload["factory"],
            kwargs=dict(payload.get("kwargs", {})),
            source=source,
        )


@dataclass
class ModelSaveInfo:
    """Input to :meth:`AbstractSaveService.save_model` for snapshot saves.

    ``base_model_id`` links derived models to their base (paper Fig. 1);
    ``use_case`` is an optional evaluation tag like ``"U_3-1-2"``.
    """

    model: Module
    architecture: ArchitectureRef
    base_model_id: str | None = None
    use_case: str | None = None
    store_checksums: bool = True

    def validate(self) -> None:
        if not isinstance(self.model, Module):
            raise SaveError("ModelSaveInfo.model must be a repro.nn Module")
        if not isinstance(self.architecture, ArchitectureRef):
            raise SaveError("ModelSaveInfo.architecture must be an ArchitectureRef")


@dataclass(frozen=True)
class TrainRunSpec:
    """The hyper-parameters of one recorded training run.

    ``number_epochs``/``number_batches`` bound the replay (the paper's MPA
    evaluation replays 2 epochs x 2 batches); ``seed`` and
    ``deterministic`` pin the PRNG and kernel behaviour so the replay is
    exact.
    """

    number_epochs: int
    number_batches: int | None
    seed: int
    deterministic: bool = True

    def to_dict(self) -> dict:
        return {
            "number_epochs": self.number_epochs,
            "number_batches": self.number_batches,
            "seed": self.seed,
            "deterministic": self.deterministic,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainRunSpec":
        return cls(
            number_epochs=payload["number_epochs"],
            number_batches=payload.get("number_batches"),
            seed=payload["seed"],
            deterministic=payload.get("deterministic", True),
        )


@dataclass
class ProvenanceSaveInfo:
    """Input to the MPA's save: provenance instead of parameters.

    Consists of the four parts from Section 3.3: (1) the training process
    (``train_service`` + ``train_spec`` + pre-training RNG state), (2) the
    environment (collected by the service), (3) the training data (either a
    directory to compress or an external-system reference), and (4) the
    base model reference.
    """

    base_model_id: str
    train_service: "TrainService"
    train_spec: TrainRunSpec
    rng_state: dict
    dataset_dir: Path | None = None
    dataset_reference: str | None = None
    use_case: str | None = None
    store_checksums: bool = True
    expected_model: Module | None = None

    def validate(self) -> None:
        if not self.base_model_id:
            raise SaveError("provenance saves require a base model reference")
        if (self.dataset_dir is None) == (self.dataset_reference is None):
            raise SaveError(
                "provide exactly one of dataset_dir (managed by MMlib) or "
                "dataset_reference (externally managed dataset)"
            )
