"""Training/inference environment capture and compatibility checking.

The paper represents the model architecture partly "by detailed environment
information ... the framework version, all third-party libraries, the
language interpreter, operating system kernel, as well as the driver
versions, and the hardware specification" (Section 3.1).  This module
collects the equivalents available on this substrate:

* substrate (``repro``) and numpy versions — the "framework version";
* every installed distribution via ``importlib.metadata`` — the
  "third-party libraries" (also the expensive part: the paper measures the
  environment check at over a second, and package enumeration is likewise
  the dominant cost here);
* interpreter, kernel, and CPU details — interpreter / OS / hardware.
"""

from __future__ import annotations

import importlib.metadata
import os
import platform
import time
from dataclasses import dataclass, field

import numpy as np

from .errors import EnvironmentMismatchError

__all__ = [
    "EnvironmentInfo",
    "collect_environment",
    "check_environment",
    "STRICT_FIELDS",
    "write_lockfile",
    "read_lockfile",
    "check_lockfile",
]

#: Fields that must match exactly for a recovered model to be trusted as an
#: exact reproduction.  Hostname and CPU count are informational only.
STRICT_FIELDS = (
    "framework_version",
    "numpy_version",
    "python_version",
    "libraries",
    "os_kernel",
    "architecture",
)


@dataclass
class EnvironmentInfo:
    """A snapshot of the software/hardware stack."""

    framework_version: str
    numpy_version: str
    python_version: str
    python_implementation: str
    libraries: dict[str, str]
    os_system: str
    os_kernel: str
    architecture: str
    processor: str
    cpu_count: int
    hostname: str
    collected_at: float = field(default=0.0)

    def to_dict(self) -> dict:
        return {
            "framework_version": self.framework_version,
            "numpy_version": self.numpy_version,
            "python_version": self.python_version,
            "python_implementation": self.python_implementation,
            "libraries": dict(self.libraries),
            "os_system": self.os_system,
            "os_kernel": self.os_kernel,
            "architecture": self.architecture,
            "processor": self.processor,
            "cpu_count": self.cpu_count,
            "hostname": self.hostname,
            "collected_at": self.collected_at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EnvironmentInfo":
        """Rebuild a snapshot from a stored document (extra keys ignored)."""
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in field_names})

    def differences(self, other: "EnvironmentInfo", fields=STRICT_FIELDS) -> dict:
        """Map of field name -> (self value, other value) for mismatches."""
        mismatches = {}
        for name in fields:
            mine, theirs = getattr(self, name), getattr(other, name)
            if mine != theirs:
                mismatches[name] = (mine, theirs)
        return mismatches


def _installed_libraries() -> dict[str, str]:
    libraries = {}
    for distribution in importlib.metadata.distributions():
        name = distribution.metadata.get("Name")
        if name:
            libraries[name.lower()] = distribution.version
    return dict(sorted(libraries.items()))


def collect_environment() -> EnvironmentInfo:
    """Collect the current environment snapshot.

    Deliberately thorough — enumerating every installed distribution is
    what makes the paper's environment check cost a constant >1 s per
    recovery (Section 4.4); the same enumeration dominates here.
    """
    try:
        framework_version = importlib.metadata.version("repro")
    except importlib.metadata.PackageNotFoundError:
        framework_version = "unknown"
    uname = platform.uname()
    return EnvironmentInfo(
        framework_version=framework_version,
        numpy_version=np.__version__,
        python_version=platform.python_version(),
        python_implementation=platform.python_implementation(),
        libraries=_installed_libraries(),
        os_system=uname.system,
        os_kernel=uname.release,
        architecture=uname.machine,
        processor=uname.processor or platform.processor(),
        cpu_count=os.cpu_count() or 1,
        hostname=uname.node,
        collected_at=time.time(),
    )


def check_environment(
    saved: EnvironmentInfo,
    current: EnvironmentInfo | None = None,
    fields=STRICT_FIELDS,
) -> None:
    """Raise :class:`EnvironmentMismatchError` if strict fields differ."""
    if current is None:
        current = collect_environment()
    mismatches = saved.differences(current, fields)
    if mismatches:
        summary = ", ".join(
            f"{name}: saved={mine!r} current={theirs!r}"
            for name, (mine, theirs) in list(mismatches.items())[:3]
        )
        raise EnvironmentMismatchError(
            f"environment differs in {len(mismatches)} field(s): {summary}"
        )


# ---------------------------------------------------------------------------
# environment lockfiles
# ---------------------------------------------------------------------------
#
# The paper's future work proposes integrating a ReproZip-style tool so the
# full software environment can be pinned alongside provenance.  Lockfiles
# provide that workflow: snapshot the environment of the machine that
# trained a model, ship the file with the model (or commit it), and check
# any machine that wants to reproduce the training against it.

import json as _json


def write_lockfile(path, info: EnvironmentInfo | None = None) -> EnvironmentInfo:
    """Write the (given or current) environment snapshot as a JSON lockfile."""
    from pathlib import Path

    info = info or collect_environment()
    Path(path).write_text(_json.dumps(info.to_dict(), indent=2, sort_keys=True))
    return info


def read_lockfile(path) -> EnvironmentInfo:
    """Load an environment snapshot from a lockfile."""
    from pathlib import Path

    return EnvironmentInfo.from_dict(_json.loads(Path(path).read_text()))


def check_lockfile(path, fields=STRICT_FIELDS) -> None:
    """Verify the current environment against a lockfile (raises on drift)."""
    check_environment(read_lockfile(path), fields=fields)
