"""Exception hierarchy for MMlib.

The root :class:`MMLibError` and the storage-level errors live in the
package-leaf :mod:`repro.errors` (the file store cannot import this
module without a cycle); they are re-exported here so MMlib callers keep
one import site for the whole hierarchy.
"""

from __future__ import annotations

from ..errors import (
    MMLibError,
    QuorumWriteError,
    StoreCorruptionError,
    TransientStoreError,
)

__all__ = [
    "MMLibError",
    "TransientStoreError",
    "StoreCorruptionError",
    "QuorumWriteError",
    "ModelNotFoundError",
    "EnvironmentMismatchError",
    "VerificationError",
    "RecoveryError",
    "SaveError",
]


class ModelNotFoundError(MMLibError):
    """Raised when a requested model id is unknown to the save service."""


class EnvironmentMismatchError(MMLibError):
    """Raised when the current environment differs from the saved one.

    Recovering a model in a different environment cannot guarantee exact
    reproduction (paper Section 2.3: floating-point behaviour may differ
    across software/hardware stacks).
    """


class VerificationError(MMLibError):
    """Raised when a recovered model fails its checksum verification."""


class RecoveryError(MMLibError):
    """Raised when model recovery fails structurally (bad refs, cycles)."""


class SaveError(MMLibError):
    """Raised when a model cannot be saved (bad save info, missing base)."""
