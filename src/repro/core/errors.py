"""Exception hierarchy for MMlib."""

from __future__ import annotations

__all__ = [
    "MMLibError",
    "ModelNotFoundError",
    "EnvironmentMismatchError",
    "VerificationError",
    "RecoveryError",
    "SaveError",
]


class MMLibError(Exception):
    """Base class for all MMlib errors."""


class ModelNotFoundError(MMLibError):
    """Raised when a requested model id is unknown to the save service."""


class EnvironmentMismatchError(MMLibError):
    """Raised when the current environment differs from the saved one.

    Recovering a model in a different environment cannot guarantee exact
    reproduction (paper Section 2.3: floating-point behaviour may differ
    across software/hardware stacks).
    """


class VerificationError(MMLibError):
    """Raised when a recovered model fails its checksum verification."""


class RecoveryError(MMLibError):
    """Raised when model recovery fails structurally (bad refs, cycles)."""


class SaveError(MMLibError):
    """Raised when a model cannot be saved (bad save info, missing base)."""
