"""Model reproducibility probing tool (paper Section 2.4).

Executes a model on fixed data and records, layer by layer, hashes and
summary statistics of the forward outputs and (optionally) the parameter
gradients of a backward pass.  Running the probe twice — on one machine or
on two — and comparing the summaries tells you whether inference and
training of the model are reproducible, and if not, at which layer the
executions first diverge.

Summaries contain only hashes and floats, so they serialize to small JSON
files that can be moved across machines (the paper's cross-machine
verification workflow).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn import functional as F
from ..nn import rng
from ..nn.modules import Module
from ..nn.tensor import Tensor
from .hashing import tensor_hash

__all__ = ["LayerRecord", "ProbeSummary", "ProbeComparison", "probe_inference", "probe_training", "probe_reproducibility"]


@dataclass
class LayerRecord:
    """Hash + statistics for one tensor observed during a probe run."""

    name: str
    kind: str  # "forward" or "grad"
    tensor_hash: str
    shape: list[int]
    mean: float
    std: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "tensor_hash": self.tensor_hash,
            "shape": self.shape,
            "mean": self.mean,
            "std": self.std,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LayerRecord":
        return cls(**payload)

    @classmethod
    def of(cls, name: str, kind: str, array: np.ndarray) -> "LayerRecord":
        return cls(
            name=name,
            kind=kind,
            tensor_hash=tensor_hash(array),
            shape=list(array.shape),
            mean=float(array.mean()),
            std=float(array.std()),
        )


@dataclass
class ProbeSummary:
    """Ordered layer records for one probe execution."""

    records: list[LayerRecord] = field(default_factory=list)

    def save(self, path: str | Path) -> None:
        payload = [record.to_dict() for record in self.records]
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "ProbeSummary":
        payload = json.loads(Path(path).read_text())
        return cls(records=[LayerRecord.from_dict(entry) for entry in payload])

    def compare(self, other: "ProbeSummary") -> "ProbeComparison":
        """Layer-wise comparison; reproducible iff all hashes match.

        Records are matched by (name, kind, occurrence): modules that run
        several times per forward pass (e.g. a ReLU shared across a
        residual block) produce one record per invocation, and the i-th
        invocation is compared against the other run's i-th invocation.
        """
        mismatches: list[tuple[LayerRecord, LayerRecord | None]] = []
        other_by_key: dict[tuple[str, str], list[LayerRecord]] = {}
        for record in other.records:
            other_by_key.setdefault((record.name, record.kind), []).append(record)
        occurrence: dict[tuple[str, str], int] = {}
        matched = 0
        for record in self.records:
            key = (record.name, record.kind)
            index = occurrence.get(key, 0)
            occurrence[key] = index + 1
            counterparts = other_by_key.get(key, [])
            counterpart = counterparts[index] if index < len(counterparts) else None
            if counterpart is not None:
                matched += 1
            if counterpart is None or counterpart.tensor_hash != record.tensor_hash:
                mismatches.append((record, counterpart))
        extra_in_other = len(other.records) - matched
        return ProbeComparison(
            reproducible=not mismatches and extra_in_other == 0,
            mismatches=mismatches,
            record_count=len(self.records),
        )


@dataclass
class ProbeComparison:
    """Result of comparing two probe summaries."""

    reproducible: bool
    mismatches: list
    record_count: int

    @property
    def first_divergence(self) -> str | None:
        """Name of the first layer whose outputs differ, if any."""
        if not self.mismatches:
            return None
        record, _ = self.mismatches[0]
        return f"{record.name} ({record.kind})"


def _to_array(output) -> np.ndarray | None:
    if isinstance(output, Tensor):
        return output.data
    if isinstance(output, tuple) and output and isinstance(output[0], Tensor):
        return output[0].data
    return None


def probe_inference(model: Module, inputs: Tensor) -> ProbeSummary:
    """Run one forward pass capturing every module's output."""
    summary = ProbeSummary()
    handles = []
    for name, module in model.named_modules():
        if not name:  # skip the root; its output is the last record anyway
            continue

        def hook(module, args, output, name=name):
            array = _to_array(output)
            if array is not None:
                summary.records.append(LayerRecord.of(name, "forward", array))

        handles.append(module.register_forward_hook(hook))
    try:
        output = model(inputs)
        array = _to_array(output)
        if array is not None:
            summary.records.append(LayerRecord.of("<model>", "forward", array))
    finally:
        for handle in handles:
            handle.remove()
    return summary


def probe_training(model: Module, inputs: Tensor, labels) -> ProbeSummary:
    """Forward + backward pass, capturing outputs and parameter gradients."""
    summary = probe_inference(model, inputs)
    model.zero_grad()
    output = model(inputs)
    logits = output[0] if isinstance(output, tuple) else output
    loss = F.cross_entropy(logits, labels)
    loss.backward()
    for name, parameter in model.named_parameters():
        if parameter.grad is not None:
            summary.records.append(LayerRecord.of(name, "grad", parameter.grad))
    return summary


def probe_reproducibility(
    model: Module,
    inputs: Tensor,
    labels,
    seed: int = 0,
    training: bool = True,
) -> ProbeComparison:
    """Execute a model twice with identical data and compare layer-wise.

    Runs under deterministic kernels with a pinned seed, the setup under
    which the paper found most models reproducible; models using layers
    with no deterministic implementation (e.g.
    :class:`~repro.nn.LegacyDropout`) still diverge and are flagged.
    """
    probe = probe_training if training else probe_inference
    with rng.deterministic_mode(True):
        with rng.fork_rng(seed):
            first = probe(model, inputs, labels) if training else probe(model, inputs)
        with rng.fork_rng(seed):
            second = probe(model, inputs, labels) if training else probe(model, inputs)
    return first.compare(second)
