"""Hashing of tensors and state dicts.

The paper generates checksums "by hashing the tensor objects" (Section 3.1)
and, for the PUA, keeps one hash per layer so that changed layers can be
identified without recovering the base model's parameters (Section 3.2).

A *layer* is a state-dict entry; hashes cover dtype + shape + raw bytes so
that two tensors hash equal iff they are bitwise identical arrays of the
same type and shape.

Hot-path properties (the per-save hashing cost dominates BA/PUA
time-to-save, paper §4.3):

* :func:`tensor_hash` feeds SHA-256 straight from the array's buffer via
  ``memoryview`` — already-contiguous arrays are hashed without the full
  ``tobytes()`` copy;
* :func:`state_dict_hashes` hashes layers on a thread pool when there are
  enough payload bytes to amortize it — ``hashlib`` releases the GIL for
  large buffers, so SHA-256 over layers runs genuinely in parallel.

Digests are identical to the sequential single-buffer implementation.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping

import numpy as np

__all__ = ["tensor_hash", "state_dict_hashes", "combine_hashes", "state_dict_root_hash"]

#: Below this many total payload bytes a thread pool costs more than it buys.
_PARALLEL_THRESHOLD_BYTES = 1 << 20

_MAX_WORKERS = min(8, os.cpu_count() or 1)
_EXECUTOR: ThreadPoolExecutor | None = None


def _executor() -> ThreadPoolExecutor:
    global _EXECUTOR
    if _EXECUTOR is None:
        _EXECUTOR = ThreadPoolExecutor(
            max_workers=_MAX_WORKERS, thread_name_prefix="repro-hash"
        )
    return _EXECUTOR


def _reset_executor() -> None:
    global _EXECUTOR
    _EXECUTOR = None


if hasattr(os, "register_at_fork"):
    # a forked child inherits a dead pool; recreate it lazily there
    os.register_at_fork(after_in_child=_reset_executor)


def tensor_hash(array: np.ndarray) -> str:
    """SHA-256 hex digest of one tensor (dtype, shape, and contents)."""
    # ``ascontiguousarray`` (ndmin=1) is a no-op for contiguous ndim>=1
    # arrays; keeping it preserves historical digests (0-d arrays hash with
    # shape ``(1,)``) while letting the contiguous case stay zero-copy.
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(str(array.shape).encode())
    if array.nbytes:  # cast() rejects views with zeros in shape
        digest.update(memoryview(array).cast("B"))
    return digest.hexdigest()


def state_dict_hashes(state_dict: Mapping[str, np.ndarray]) -> "OrderedDict[str, str]":
    """Per-layer hashes for a state dict, preserving layer order."""
    items = list(state_dict.items())
    total_bytes = sum(
        array.nbytes for _, array in items if isinstance(array, np.ndarray)
    )
    if (
        len(items) > 1
        and _MAX_WORKERS > 1
        and total_bytes >= _PARALLEL_THRESHOLD_BYTES
    ):
        digests = _executor().map(tensor_hash, (array for _, array in items))
        return OrderedDict(
            (name, digest) for (name, _), digest in zip(items, digests)
        )
    return OrderedDict((name, tensor_hash(array)) for name, array in items)


def combine_hashes(left: str, right: str) -> str:
    """Parent hash of two child hashes (Merkle inner-node rule)."""
    return hashlib.sha256((left + right).encode()).hexdigest()


def state_dict_root_hash(state_dict: Mapping[str, np.ndarray]) -> str:
    """Single hash covering the whole model's parameters.

    Computed through the same Merkle construction the PUA uses, so a root
    stored at save time can later be compared against a recovered model.
    """
    from .merkle import MerkleTree

    return MerkleTree.from_state_dict(state_dict).root_hash
