"""Hashing of tensors and state dicts.

The paper generates checksums "by hashing the tensor objects" (Section 3.1)
and, for the PUA, keeps one hash per layer so that changed layers can be
identified without recovering the base model's parameters (Section 3.2).

A *layer* is a state-dict entry; hashes cover dtype + shape + raw bytes so
that two tensors hash equal iff they are bitwise identical arrays of the
same type and shape.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Mapping

import numpy as np

__all__ = ["tensor_hash", "state_dict_hashes", "combine_hashes", "state_dict_root_hash"]


def tensor_hash(array: np.ndarray) -> str:
    """SHA-256 hex digest of one tensor (dtype, shape, and contents)."""
    array = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(array.dtype.str.encode())
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def state_dict_hashes(state_dict: Mapping[str, np.ndarray]) -> "OrderedDict[str, str]":
    """Per-layer hashes for a state dict, preserving layer order."""
    return OrderedDict((name, tensor_hash(array)) for name, array in state_dict.items())


def combine_hashes(left: str, right: str) -> str:
    """Parent hash of two child hashes (Merkle inner-node rule)."""
    return hashlib.sha256((left + right).encode()).hexdigest()


def state_dict_root_hash(state_dict: Mapping[str, np.ndarray]) -> str:
    """Single hash covering the whole model's parameters.

    Computed through the same Merkle construction the PUA uses, so a root
    stored at save time can later be compared against a recovered model.
    """
    from .merkle import MerkleTree

    return MerkleTree.from_state_dict(state_dict).root_hash
