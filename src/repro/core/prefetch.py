"""Recovery-chain read-ahead: overlap chunk transfers with recovery work.

PUA/MPA recovery is recursive — a model at chain depth *d* recovers its
base first, then applies its own diff (or replays its training).  The
transfers for the different chain levels are independent, so while one
level's parameters are being applied the next level's manifest and chunks
can already be crossing the link.  :class:`ChainPrefetcher` runs that
read-ahead on a small worker pool, landing payloads in the file store's
shared hot-chunk cache (:class:`~repro.filestore.store.ChunkCache`) where
the recovery path — and any other reader — picks them up for free.

Prefetching is strictly an optimization: every fetch error is swallowed
(and counted), because the synchronous recovery path will re-fetch and
surface real failures with its own retry/verify machinery.  The store's
single-flight coalescing ensures a chunk raced by prefetcher and
recovery crosses the link once.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor, wait

from .. import obs
from ..filestore.store import layer_chunk_digests
from .schema import MODELS

__all__ = ["ChainPrefetcher"]

#: Model-document fields that may reference a chunked-state manifest.
_FILE_KEYS = ("parameters_file", "update_file")


class ChainPrefetcher:
    """Background read-ahead for recovery chains.

    ``workers`` bounds concurrent prefetch tasks; ``max_chain_depth``
    bounds how far up a base-model chain one request walks.  ``retry``
    (a :class:`~repro.retry.RetryPolicy`, typically the one shared with
    the stores) re-attempts a failed fetch before it lands in ``errors``
    — on a flaky link a transient drop would otherwise waste the whole
    read-ahead and leave the synchronous path cold.  Use as a context
    manager, or call :meth:`close` when done — in-flight work is drained
    either way.
    """

    def __init__(
        self,
        document_store,
        file_store,
        workers: int = 2,
        max_chain_depth: int = 64,
        retry=None,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.documents = document_store
        self.files = file_store
        self.retry = retry
        self.max_chain_depth = int(max_chain_depth)
        self._pool = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="mmlib-prefetch"
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, object] = {}
        self._closed = False
        self.files_prefetched = 0
        self.chunks_prefetched = 0
        self.errors = 0
        registry = obs.registry()
        self._obs_tracer = obs.tracer()
        self._obs_events = obs.events()
        self._obs_files = registry.counter(
            "mmlib_prefetch_files_total", "Manifests read ahead")
        self._obs_chunks = registry.counter(
            "mmlib_prefetch_chunks_total", "Chunks read ahead")
        self._obs_errors = registry.counter(
            "mmlib_prefetch_errors_total", "Prefetch tasks that failed")

    def usable(self) -> bool:
        """Prefetch pays off only when fetched chunks land somewhere shared.

        Without a hot-chunk cache on the file store, read-ahead would
        fetch payloads just to throw them away (and on a simulated link,
        charge for them twice).
        """
        return (
            getattr(self.files, "chunk_cache", None) is not None
            and hasattr(self.files, "get_chunks")
        )

    # -- scheduling --------------------------------------------------------

    def prefetch_file(self, file_id: str | None) -> None:
        """Read ahead one chunked-state manifest and its chunks."""
        if not file_id or not self.usable():
            return
        if not file_id.endswith(".manifest"):
            return  # only manifests fan out into chunk fetches
        self._submit(file_id, self._fetch_file, file_id)

    def prefetch_chain(self, model_id: str | None) -> None:
        """Read ahead every manifest along ``model_id``'s base chain.

        Levels are fetched deepest-first — the same order the recursive
        recovery consumes them — so the root snapshot streams in first
        and each diff is warm by the time its turn comes.
        """
        if not model_id or not self.usable():
            return
        self._submit(f"chain:{model_id}", self._fetch_chain, model_id)

    def _submit(self, key: str, fn, *args) -> None:
        # captured on the submitting thread so worker-thread spans join the
        # caller's trace tree (the recover_model span, typically)
        parent = self._obs_tracer.current_id()
        with self._lock:
            if self._closed or key in self._inflight:
                return
            self._inflight[key] = self._pool.submit(self._run, key, parent, fn, *args)

    def _run(self, key: str, parent, fn, *args) -> None:
        try:
            with self._obs_tracer.attach(parent):
                with self._obs_tracer.span(
                    "prefetch.chain" if key.startswith("chain:") else "prefetch.file",
                    key=key,
                ):
                    if self.retry is not None:
                        # retry transient drops under the shared policy; only a
                        # final failure counts as a lost prefetch
                        self.retry.call(lambda: fn(*args), op="prefetch.fetch")
                    else:
                        fn(*args)
        except Exception as exc:
            with self._lock:
                self.errors += 1
            self._obs_errors.inc()
            self._obs_events.emit(
                "prefetch_error", key=key, exception=type(exc).__name__)
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    # -- fetch bodies ------------------------------------------------------

    def _fetch_file(self, file_id: str) -> None:
        manifest = self.files.read_manifest(file_id)
        digests = [
            digest
            for _, meta in manifest["layers"]
            for digest in layer_chunk_digests(meta)
        ]
        self.files.get_chunks(digests)
        unique = len(set(digests))
        with self._lock:
            self.files_prefetched += 1
            self.chunks_prefetched += unique
        self._obs_files.inc()
        self._obs_chunks.inc(unique)

    def _fetch_chain(self, model_id: str) -> None:
        models = self.documents.collection(MODELS)
        chain_docs = []
        seen: set[str] = set()
        current: str | None = model_id
        while current and current not in seen and len(chain_docs) < self.max_chain_depth:
            seen.add(current)
            try:
                document = models.get(current)
            except Exception:  # missing doc: stop walking, keep what we have
                break
            chain_docs.append(document)
            if document.get("parameters_file"):
                # a recovery base (root snapshot or a compaction-
                # materialized delta): recursion stops here, so deeper
                # levels would be fetched for nothing
                break
            current = document.get("base_model")
        for document in reversed(chain_docs):  # deepest (root) level first
            for key in _FILE_KEYS:
                file_id = document.get(key)
                if file_id and file_id.endswith(".manifest"):
                    self._fetch_file(file_id)

    # -- lifecycle ---------------------------------------------------------

    def drain(self) -> None:
        """Block until every scheduled prefetch has finished."""
        while True:
            with self._lock:
                futures = list(self._inflight.values())
            if not futures:
                return
            wait(futures)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self.drain()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "ChainPrefetcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        with self._lock:
            return {
                "files_prefetched": self.files_prefetched,
                "chunks_prefetched": self.chunks_prefetched,
                "errors": self.errors,
                "inflight": len(self._inflight),
            }
