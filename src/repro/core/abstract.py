"""Save-service interface and the shared recovery engine.

The three approaches differ in *how they save* a model; recovery is driven
entirely by what a model document contains, so the logic lives here once:

* a document with a ``parameters_file`` is a full snapshot — rebuild the
  architecture and load the parameters (baseline logic);
* a ``param_update`` document recovers its base model first, then merges
  the saved parameter update layer-wise, prioritizing the update
  (Section 3.2);
* a ``provenance`` document recovers its base model first, then reproduces
  the recorded training (Section 3.3).

Recovery is therefore recursive for derived models, matching the paper's
description, while the baseline "explicitly excludes loading documents
holding base model information" — its documents simply never reference any
during recovery.
"""

from __future__ import annotations

import json
import tempfile
from contextlib import contextmanager
from pathlib import Path

from .. import obs
from ..nn import rng, serialization
from ..retry import RetryingDocumentStore
from ..nn.modules import Module
from .dataset_manager import DatasetManager
from .environment import EnvironmentInfo, check_environment, collect_environment
from .errors import ModelNotFoundError, RecoveryError, VerificationError
from .cache import RecoveryCache
from .hashing import state_dict_hashes
from .ids import new_model_id
from .merkle import MerkleTree
from .recover import RecoveredModelInfo, StorageBreakdown
from .save_info import ArchitectureRef, TrainRunSpec
from .schema import (
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
    ENVIRONMENTS,
    MODELS,
    TRAIN_INFO,
    WRAPPERS,
)
from .train_service import load_train_service

__all__ = ["AbstractSaveService"]


class AbstractSaveService:
    """Common persistence plumbing for all three approaches.

    ``document_store`` needs a ``collection(name)`` method (the embedded
    :class:`~repro.docstore.DocumentStore` and the TCP client both qualify);
    ``file_store`` is a :class:`~repro.filestore.FileStore` or compatible.
    ``retry`` (a :class:`~repro.retry.RetryPolicy`) makes document
    operations retry transient store failures; pass the same policy to the
    file store so both halves of a save share one backoff budget.
    ``prefetcher`` (a :class:`~repro.core.prefetch.ChainPrefetcher`)
    overlaps base-chain chunk transfers with recovery work.
    """

    #: Set by subclasses; stored in every model document they save.
    approach: str = "abstract"

    def __init__(
        self,
        document_store,
        file_store,
        scratch_dir: str | Path | None = None,
        dataset_codec: str | None = None,
        chunked: bool = True,
        retry=None,
        prefetcher=None,
        clock=None,
    ):
        if retry is not None:
            document_store = RetryingDocumentStore(document_store, retry)
        self.documents = document_store
        self.files = file_store
        self.retry = retry
        self.prefetcher = prefetcher
        # injectable time source: every save/recover timing reads through
        # it, so fake-clock tests assert exact ttr breakdowns
        self.clock = clock if clock is not None else obs.clock()
        registry = obs.registry()
        self._obs_tracer = obs.tracer()
        self._obs_saves = registry.counter(
            "mmlib_saves_total", "Models saved", approach=self.approach)
        self._obs_recovers = registry.counter(
            "mmlib_recovers_total", "Models recovered", approach=self.approach)
        self._obs_save_seconds = registry.histogram(
            "mmlib_save_seconds", "save_model wall time", approach=self.approach)
        self._obs_recover_seconds = registry.histogram(
            "mmlib_recover_seconds", "recover_model wall time", approach=self.approach)
        # high-water mark of replayed chain depth; the serving plane's
        # idle maintenance compacts when this crosses K, then resets it
        self._obs_recovery_depth = registry.gauge(
            "mmlib_recovery_depth_max",
            "Deepest delta chain replayed by a recover")
        # chunked saves write parameters as content-addressed per-layer
        # chunks keyed by the Merkle leaf hashes (dedup across models; no
        # whole-blob re-hash).  Falls back to the monolithic codec for
        # file stores without chunk support.
        self.chunked = bool(chunked) and hasattr(file_store, "save_state_chunks")
        # the MPA archives datasets to a single file; the codec is a policy
        # knob (see bench_ablation_compression: deflate buys <10% on image
        # data while costing CPU, so "stored" suits JPEG-like datasets)
        if dataset_codec is None:
            self.dataset_manager = DatasetManager(file_store)
        else:
            self.dataset_manager = DatasetManager(file_store, codec=dataset_codec)
        self._scratch_dir = Path(scratch_dir) if scratch_dir else None

    # ------------------------------------------------------------------
    # save
    # ------------------------------------------------------------------

    def save_model(self, save_info) -> str:
        """Persist a model crash-consistently; returns its new id.

        Template method: the approach-specific work happens in the
        subclass's ``_save_model``, wrapped in a save transaction that
        journals every store mutation.  A failed save rolls its steps
        back; a crashed save leaves its journal for ``fsck`` to undo.
        """
        with self._obs_tracer.span("service.save_model", approach=self.approach) as sp:
            started = self.clock.perf()
            with self._save_transaction():
                model_id = self._save_model(save_info)
            self._obs_save_seconds.observe(self.clock.perf() - started)
            self._obs_saves.inc()
            sp.set(model_id=model_id)
            return model_id

    def _save_model(self, save_info) -> str:
        raise NotImplementedError

    @contextmanager
    def _save_transaction(self):
        """Journal the enclosed save steps; roll back on failure.

        Reentrant: nested saves (the provenance service saving its base
        snapshot, the adaptive service delegating) join the outermost
        transaction, so one save is one journal — exactly the unit a
        crash must not tear.  :class:`BaseException` escapes (simulated
        process death, interrupts) skip the rollback and leave the
        journal on disk, which is what makes post-crash ``fsck`` honest.
        """
        journaled = hasattr(self.files, "begin_journal") and not getattr(
            self.files, "journal_active", lambda: False
        )()
        if journaled:
            self.files.begin_journal()
        try:
            yield
        except Exception:
            if journaled:
                rollback = self.files.abort_journal()
                self._delete_journaled_docs(rollback["docs"])
            raise
        except BaseException:
            if journaled:
                # a "dead" process runs no cleanup: detach, keep the file
                self.files.abandon_journal()
            raise
        else:
            if journaled:
                self.files.commit_journal()

    def _delete_journaled_docs(self, docs) -> None:
        """Best-effort deletion of documents a rolled-back save inserted."""
        for collection, doc_id in docs:
            try:
                self.documents.collection(collection).delete_one(doc_id)
            except Exception:  # the store may be the thing that failed
                pass

    def _journal(self, op: str, **fields) -> None:
        if hasattr(self.files, "journal_record"):
            self.files.journal_record(op, **fields)

    # -- shared save helpers ----------------------------------------------

    def _save_environment(self) -> str:
        info = collect_environment()
        env_id = self.documents.collection(ENVIRONMENTS).insert_one(info.to_dict())
        self._journal("doc", collection=ENVIRONMENTS, doc_id=env_id)
        return env_id

    def _save_architecture(self, architecture: ArchitectureRef) -> dict:
        code_file_id = self.files.save_bytes(architecture.source.encode(), suffix=".py")
        payload = architecture.to_dict()
        payload["code_file_id"] = code_file_id
        return payload

    def _save_parameters(self, model: Module) -> tuple[str, "OrderedDict[str, str]", str]:
        """Persist a full snapshot; returns (file id, layer hashes, root).

        Layers are hashed exactly once (in parallel for large models); on
        the chunked path those digests double as the chunk ids, so the
        payload is never hashed again downstream.
        """
        state = model.state_dict()
        hashes = state_dict_hashes(state)
        root = MerkleTree.from_layer_hashes(hashes).root_hash
        file_id = self._save_state(state, hashes, kind="params")
        return file_id, hashes, root

    def _save_state(self, state, layer_hashes, kind: str) -> str:
        """Persist a flat state dict, chunked when enabled.

        ``layer_hashes`` must hold a digest per entry of ``state`` (extra
        entries are fine) — the Merkle leaves already computed by the
        save path.
        """
        if self.chunked:
            return self.files.save_state_chunks(
                state, layer_hashes, suffix=f".{kind}.manifest"
            )
        return self.files.save_bytes(serialization.dumps(state), suffix=f".{kind}")

    def _load_state_file(self, file_id: str):
        """Inverse of :meth:`_save_state`: rebuild the state dict."""
        if file_id.endswith(".manifest") and hasattr(self.files, "recover_state_chunks"):
            return self.files.recover_state_chunks(file_id)
        return serialization.loads(self.files.recover_bytes(file_id))

    def _insert_model_document(self, document: dict) -> str:
        model_id = new_model_id()
        document = dict(document)
        document["_id"] = model_id
        document["approach"] = document.get("approach", self.approach)
        document["saved_at"] = self.clock.now()
        # journal the intent first: a crash between journal append and
        # insert rolls back a document that never landed, which is a no-op
        self._journal("doc", collection=MODELS, doc_id=model_id)
        self.documents.collection(MODELS).insert_one(document)
        return model_id

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def _get_model_document(self, model_id: str) -> dict:
        try:
            return self.documents.collection(MODELS).get(model_id)
        except KeyError as exc:
            raise ModelNotFoundError(f"no saved model with id {model_id!r}") from exc

    def model_exists(self, model_id: str) -> bool:
        try:
            self._get_model_document(model_id)
            return True
        except ModelNotFoundError:
            return False

    def saved_model_ids(self) -> list[str]:
        return sorted(d["_id"] for d in self.documents.collection(MODELS).find())

    def base_chain(self, model_id: str) -> list[str]:
        """Ids from ``model_id`` up to (and including) its root base model."""
        chain = []
        seen = set()
        current: str | None = model_id
        while current is not None:
            if current in seen:
                raise RecoveryError(f"cycle in base-model chain at {current!r}")
            seen.add(current)
            chain.append(current)
            current = self._get_model_document(current).get("base_model")
        return chain

    # ------------------------------------------------------------------
    # recover
    # ------------------------------------------------------------------

    def recover_model(
        self,
        model_id: str,
        check_env: bool = False,
        verify: bool = True,
        execution_env: dict | None = None,
        cache: RecoveryCache | None = None,
    ) -> RecoveredModelInfo:
        """Recover the exact model saved under ``model_id``.

        ``check_env`` compares the stored environment snapshot against the
        current one and raises on mismatch.  ``verify`` re-hashes the
        recovered parameters against the stored Merkle root.
        ``execution_env`` passes extra restore-time refs to train services
        (e.g. an externally managed dataset's location).  Passing a shared
        :class:`RecoveryCache` across calls memoizes chain prefixes, so
        recovering many models of one chain does O(n) instead of O(n²)
        base recoveries.
        """
        with self._obs_tracer.span(
            "service.recover_model", model_id=model_id, approach=self.approach
        ) as sp:
            recover_started = self.clock.perf()
            timings = {"load": 0.0, "recover": 0.0, "check_env": 0.0, "check_hash": 0.0}
            document = self._get_model_document(model_id)
            if self.prefetcher is not None and document.get("base_model"):
                # stream the whole base chain into the hot-chunk cache while
                # the recursion below applies it level by level
                self.prefetcher.prefetch_chain(model_id)
            # recovery rebuilds architectures and may replay training; none of
            # that must disturb the caller's RNG stream or determinism setting
            caller_rng = rng.get_rng_state()
            caller_det = rng.deterministic_algorithms_enabled()
            try:
                model, depth = self._recover_from_document(
                    document, timings, execution_env or {}, cache
                )
            finally:
                rng.set_rng_state(caller_rng)
                rng.use_deterministic_algorithms(caller_det)

            if check_env:
                started = self.clock.perf()
                saved_env = EnvironmentInfo.from_dict(
                    self.documents.collection(ENVIRONMENTS).get(document["environment_id"])
                )
                check_environment(saved_env)
                timings["check_env"] = self.clock.perf() - started

            verified: bool | None = None
            if verify:
                started = self.clock.perf()
                stored_root = document.get("merkle_root")
                if stored_root is not None:
                    actual_root = MerkleTree.from_state_dict(model.state_dict()).root_hash
                    if actual_root != stored_root:
                        raise VerificationError(
                            f"recovered model {model_id} fails checksum verification: "
                            f"{actual_root} != stored {stored_root}"
                        )
                    verified = True
                timings["check_hash"] = self.clock.perf() - started

            self._obs_recover_seconds.observe(self.clock.perf() - recover_started)
            self._obs_recovers.inc()
            if depth > self._obs_recovery_depth.value:
                self._obs_recovery_depth.set(depth)
            sp.set(depth=depth)
            return RecoveredModelInfo(
                model_id=model_id,
                model=model,
                approach=document.get("approach", "unknown"),
                base_model_id=document.get("base_model"),
                use_case=document.get("use_case"),
                timings=timings,
                verified=verified,
                recovery_depth=depth,
            )

    # -- per-document recovery ---------------------------------------------

    def _recover_from_document(
        self,
        document: dict,
        timings: dict,
        execution_env: dict,
        cache: RecoveryCache | None = None,
    ) -> tuple[Module, int]:
        doc_id = document.get("_id")
        if cache is not None and doc_id is not None:
            hit = cache.get(doc_id)
            if hit is not None:
                return hit

        with self._obs_tracer.span(
            "recover.document", doc_id=doc_id,
            approach=document.get("approach", "unknown"),
        ):
            architecture: ArchitectureRef | None = None
            if document.get("parameters_file"):
                architecture = self._load_architecture(document, timings)
                model, depth = self._recover_snapshot(document, timings, architecture), 0
            else:
                approach = document.get("approach")
                if approach == APPROACH_PARAM_UPDATE:
                    model, depth = self._recover_param_update(
                        document, timings, execution_env, cache
                    )
                elif approach == APPROACH_PROVENANCE:
                    model, depth = self._recover_provenance(
                        document, timings, execution_env, cache
                    )
                else:
                    raise RecoveryError(
                        f"model document {doc_id} has neither parameters nor a "
                        f"recoverable approach (approach={approach!r})"
                    )
                if cache is not None:
                    # derived models share their base's architecture (the
                    # relations the paper covers keep the architecture fixed)
                    architecture = cache.architecture_of(document.get("base_model"))

            if cache is not None and doc_id is not None and architecture is not None:
                cache.put(doc_id, model, architecture, depth)
            return model, depth

    def _load_architecture(self, document: dict, timings: dict) -> ArchitectureRef:
        started = self.clock.perf()
        payload = document["architecture"]
        source = self.files.recover_bytes(payload["code_file_id"]).decode()
        timings["load"] += self.clock.perf() - started
        return ArchitectureRef.from_dict(payload, source=source)

    def _recover_snapshot(
        self, document: dict, timings: dict, architecture: ArchitectureRef | None = None
    ) -> Module:
        if architecture is None:
            architecture = self._load_architecture(document, timings)
        started = self.clock.perf()
        state = self._load_state_file(document["parameters_file"])
        timings["load"] += self.clock.perf() - started

        started = self.clock.perf()
        model = architecture.build()
        model.load_state_dict(state)
        timings["recover"] += self.clock.perf() - started
        return model

    def _recover_base(
        self,
        document: dict,
        timings: dict,
        execution_env: dict,
        cache: RecoveryCache | None = None,
    ) -> tuple[Module, int]:
        base_id = document.get("base_model")
        if not base_id:
            raise RecoveryError(
                f"derived model document {document.get('_id')} lacks a base model ref"
            )
        base_document = self._get_model_document(base_id)
        return self._recover_from_document(base_document, timings, execution_env, cache)

    def _recover_param_update(
        self,
        document: dict,
        timings: dict,
        execution_env: dict,
        cache: RecoveryCache | None = None,
    ) -> tuple[Module, int]:
        if self.prefetcher is not None:
            # this layer's diff is needed only after the (recursive) base
            # recovery below — read it ahead so it overlaps that work
            self.prefetcher.prefetch_file(document.get("update_file"))
        model, depth = self._recover_base(document, timings, execution_env, cache)

        started = self.clock.perf()
        update_state = self._load_state_file(document["update_file"])
        timings["load"] += self.clock.perf() - started

        started = self.clock.perf()
        # merge layer-wise, prioritizing the derived model's parameters
        merged = model.state_dict()
        merged.update(update_state)
        model.load_state_dict(merged)
        timings["recover"] += self.clock.perf() - started
        return model, depth + 1

    def _recover_provenance(
        self,
        document: dict,
        timings: dict,
        execution_env: dict,
        cache: RecoveryCache | None = None,
    ) -> tuple[Module, int]:
        model, depth = self._recover_base(document, timings, execution_env, cache)

        started = self.clock.perf()
        train_info_id = document["train_info_id"]
        train_document = self.documents.collection(TRAIN_INFO).get(train_info_id)
        provenance = document["provenance"]
        refs = dict(execution_env)
        refs["model"] = model
        if provenance.get("dataset_file_id"):
            scratch = self._scratch_dir or Path(tempfile.gettempdir()) / "mmlib-scratch"
            target = Path(tempfile.mkdtemp(prefix="dataset-", dir=_ensure_dir(scratch)))
            self.dataset_manager.recover_dataset(provenance["dataset_file_id"], target)
            refs["dataset_root"] = str(target)
        elif provenance.get("dataset_reference"):
            if "dataset_root" not in refs:
                raise RecoveryError(
                    "model was saved against externally managed dataset "
                    f"{provenance['dataset_reference']!r}; pass its location via "
                    "execution_env={'dataset_root': ...}"
                )
        timings["load"] += self.clock.perf() - started

        started = self.clock.perf()
        spec = TrainRunSpec.from_dict(provenance["train_spec"])
        service = load_train_service(train_info_id, self.documents, self.files, refs)
        previous_rng = rng.get_rng_state()
        previous_det = rng.deterministic_algorithms_enabled()
        try:
            rng.set_rng_state(provenance["rng_state"])
            rng.use_deterministic_algorithms(spec.deterministic)
            service.train(
                model,
                number_epochs=spec.number_epochs,
                number_batches=spec.number_batches,
            )
        finally:
            rng.set_rng_state(previous_rng)
            rng.use_deterministic_algorithms(previous_det)
        timings["recover"] += self.clock.perf() - started
        return model, depth + 1

    # ------------------------------------------------------------------
    # storage accounting
    # ------------------------------------------------------------------

    def model_save_size(self, model_id: str) -> StorageBreakdown:
        """Bytes consumed by ``model_id`` itself (base models excluded)."""
        document = self._get_model_document(model_id)
        doc_bytes = _json_size(document)
        files: dict[str, int] = {}

        if document.get("environment_id"):
            env_doc = self.documents.collection(ENVIRONMENTS).get(document["environment_id"])
            doc_bytes += _json_size(env_doc)
        architecture = document.get("architecture")
        if architecture and architecture.get("code_file_id"):
            files["code"] = self.files.size(architecture["code_file_id"])
        if document.get("parameters_file"):
            files["parameters"] = self.files.size(document["parameters_file"])
        if document.get("update_file"):
            files["parameters"] = self.files.size(document["update_file"])

        if document.get("train_info_id"):
            train_document = self.documents.collection(TRAIN_INFO).get(
                document["train_info_id"]
            )
            doc_bytes += _json_size(train_document)
            for key in ("dataset_wrapper", "optimizer_wrapper"):
                wrapper_id = train_document.get(key)
                if wrapper_id:
                    wrapper_doc = self.documents.collection(WRAPPERS).get(wrapper_id)
                    doc_bytes += _json_size(wrapper_doc)
                    if wrapper_doc.get("state_file_id"):
                        files["state"] = files.get("state", 0) + self.files.size(
                            wrapper_doc["state_file_id"]
                        )
            provenance = document.get("provenance", {})
            if provenance.get("dataset_file_id"):
                files["dataset"] = self.files.size(provenance["dataset_file_id"])

        return StorageBreakdown(
            model_id=model_id,
            approach=document.get("approach", "unknown"),
            documents=doc_bytes,
            files=files,
        )


def _json_size(document: dict) -> int:
    return len(json.dumps(document, sort_keys=True))


def _ensure_dir(path: Path) -> Path:
    path.mkdir(parents=True, exist_ok=True)
    return path
