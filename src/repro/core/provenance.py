"""Model provenance approach (MPA): save the recipe, not the weights (§3.3).

The first model in a chain is saved with the baseline's logic.  Every
derived model is represented by its provenance: (1) the training process
(train service + wrapped objects + pre-training RNG state), (2) the
environment, (3) the training data (compressed archive or external
reference), and (4) the base-model reference.  Recovery reproduces the
training deterministically.

:class:`ProvenanceRecorder` is the node-side helper that pins everything
that must be captured *before* training starts (seed, RNG state, stateful
object snapshots), so that replaying later walks through the exact same
pseudorandom choices and optimizer trajectories.
"""

from __future__ import annotations

from pathlib import Path

from ..nn import rng
from ..nn.modules import Module
from .abstract import AbstractSaveService
from .errors import SaveError
from .hashing import state_dict_hashes
from .merkle import MerkleTree
from .save_info import ModelSaveInfo, ProvenanceSaveInfo, TrainRunSpec
from .schema import APPROACH_PROVENANCE, TRAIN_INFO
from .train_service import TrainService
from .wrappers import StateFileRestorableObjectWrapper

__all__ = ["ProvenanceSaveService", "ProvenanceRecorder"]


class ProvenanceSaveService(AbstractSaveService):
    """Save/recover service implementing the model provenance approach."""

    approach = APPROACH_PROVENANCE

    def _save_model(self, save_info) -> str:
        """Save either an initial snapshot or a provenance record."""
        if isinstance(save_info, ProvenanceSaveInfo):
            return self._save_provenance(save_info)
        if isinstance(save_info, ModelSaveInfo):
            return self._save_initial(save_info)
        raise SaveError(
            f"expected ModelSaveInfo or ProvenanceSaveInfo, got {type(save_info).__name__}"
        )

    def _save_initial(self, save_info: ModelSaveInfo) -> str:
        save_info.validate()
        environment_id = self._save_environment()
        architecture = self._save_architecture(save_info.architecture)
        parameters_file, layer_hashes, root = self._save_parameters(save_info.model)
        document = {
            "base_model": save_info.base_model_id,
            "use_case": save_info.use_case,
            "environment_id": environment_id,
            "architecture": architecture,
            "parameters_file": parameters_file,
        }
        if save_info.store_checksums:
            document["layer_hashes"] = [[k, v] for k, v in layer_hashes.items()]
            document["merkle_root"] = root
        return self._insert_model_document(document)

    def save_provenance(self, save_info: ProvenanceSaveInfo) -> str:
        """Persist a derived model as provenance data; returns the model id."""
        with self._save_transaction():
            return self._save_provenance(save_info)

    def _save_provenance(self, save_info: ProvenanceSaveInfo) -> str:
        save_info.validate()
        if not self.model_exists(save_info.base_model_id):
            raise SaveError(f"base model {save_info.base_model_id!r} is not saved")

        environment_id = self._save_environment()
        train_info_id = save_info.train_service.save(self.documents, self.files)
        self._journal("doc", collection=TRAIN_INFO, doc_id=train_info_id)

        provenance = {
            "train_spec": save_info.train_spec.to_dict(),
            "rng_state": save_info.rng_state,
            "dataset_file_id": None,
            "dataset_reference": None,
        }
        if save_info.dataset_dir is not None:
            provenance["dataset_file_id"] = self.dataset_manager.save_dataset(
                save_info.dataset_dir
            )
        else:
            provenance["dataset_reference"] = save_info.dataset_reference

        document = {
            "base_model": save_info.base_model_id,
            "use_case": save_info.use_case,
            "environment_id": environment_id,
            "train_info_id": train_info_id,
            "provenance": provenance,
        }
        if save_info.store_checksums and save_info.expected_model is not None:
            hashes = state_dict_hashes(save_info.expected_model.state_dict())
            document["layer_hashes"] = [[k, v] for k, v in hashes.items()]
            document["merkle_root"] = MerkleTree.from_layer_hashes(hashes).root_hash
        return self._insert_model_document(document)


class ProvenanceRecorder:
    """Capture provenance around a node-side training run.

    Usage::

        recorder = ProvenanceRecorder(base_model_id, train_service,
                                      dataset_dir=..., seed=...)
        recorder.start()                       # pins RNG + object state
        train_service.train(model, epochs)     # the actual training
        info = recorder.finish(model, use_case="U_3-1-1")
        model_id = provenance_service.save_model(info)
    """

    def __init__(
        self,
        base_model_id: str,
        train_service: TrainService,
        *,
        number_epochs: int,
        number_batches: int | None = None,
        seed: int | None = None,
        deterministic: bool = True,
        dataset_dir: str | Path | None = None,
        dataset_reference: str | None = None,
    ):
        self.base_model_id = base_model_id
        self.train_service = train_service
        self.number_epochs = number_epochs
        self.number_batches = number_batches
        self.seed = seed
        self.deterministic = deterministic
        self.dataset_dir = Path(dataset_dir) if dataset_dir else None
        self.dataset_reference = dataset_reference
        self._rng_state: dict | None = None

    def start(self) -> None:
        """Pin the RNG and snapshot stateful objects; call before training."""
        if self.seed is not None:
            rng.manual_seed(self.seed)
        else:
            self.seed = rng.initial_seed()
        rng.use_deterministic_algorithms(self.deterministic)
        self._rng_state = rng.get_rng_state()
        for wrapper in self._stateful_wrappers():
            wrapper.snapshot_state()

    def _stateful_wrappers(self) -> list[StateFileRestorableObjectWrapper]:
        wrappers = []
        for value in vars(self.train_service).values():
            if isinstance(value, StateFileRestorableObjectWrapper):
                wrappers.append(value)
        return wrappers

    def finish(self, trained_model: Module | None = None, use_case: str | None = None) -> ProvenanceSaveInfo:
        """Build the save info after training completed."""
        if self._rng_state is None:
            raise SaveError("ProvenanceRecorder.finish called before start")
        spec = TrainRunSpec(
            number_epochs=self.number_epochs,
            number_batches=self.number_batches,
            seed=self.seed,
            deterministic=self.deterministic,
        )
        return ProvenanceSaveInfo(
            base_model_id=self.base_model_id,
            train_service=self.train_service,
            train_spec=spec,
            rng_state=self._rng_state,
            dataset_dir=self.dataset_dir,
            dataset_reference=self.dataset_reference,
            use_case=use_case,
            expected_model=trained_model,
        )
