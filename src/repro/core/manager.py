"""High-level model management: catalog, lineage, retention, repair.

The paper's server "has to monitor every model that exists and has to be
able to losslessly recover it when requested" (use case U_4).
:class:`ModelManager` is that server-side façade over the shared stores:
it lists and queries the model catalog, walks lineage in both directions,
reports storage, and deletes models safely (refusing to orphan derived
models, cleaning up every referenced document and file).

:meth:`ModelManager.fsck` is the post-crash consistency check: it rolls
back saves that died mid-flight (via their intent journals), cross-checks
documents against files, manifests against chunks, and refcounts against
what the live manifests actually reference, repairing what it safely can.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .. import obs
from ..filestore.store import layer_chunk_digests
from .abstract import AbstractSaveService
from .errors import MMLibError, ModelNotFoundError
from .hashing import tensor_hash
from .recover import RecoveredModelInfo, StorageBreakdown
from .schema import ENVIRONMENTS, MODELS, TRAIN_INFO, WRAPPERS

__all__ = [
    "ModelRecord",
    "ModelManager",
    "DependentModelsError",
    "FsckIssue",
    "FsckReport",
]


class DependentModelsError(MMLibError):
    """Raised when deleting a model that other models are derived from."""


@dataclass
class ModelRecord:
    """Catalog view of one saved model."""

    model_id: str
    approach: str
    base_model_id: str | None
    use_case: str | None
    saved_at: float
    derived_model_ids: list[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        return self.base_model_id is None


@dataclass
class FsckIssue:
    """One consistency violation found by :meth:`ModelManager.fsck`.

    ``kind`` is a stable machine-readable tag (``incomplete_save``,
    ``incomplete_compaction``, ``missing_file``, ``missing_chunk``,
    ``corrupt_chunk``, ``corrupt_manifest``, ``refcount_mismatch``,
    ``orphan_file``, ``orphan_chunk``, ``orphan_document``,
    ``missing_base``, ``missing_document``, ``under_replicated``,
    ``torn_segment``, ``segment_index``, ``segment_crc``,
    ``segment_compaction``).
    """

    kind: str
    detail: str
    repaired: bool = False


@dataclass
class FsckReport:
    """Outcome of one verify-and-repair pass over the shared stores."""

    issues: list[FsckIssue] = field(default_factory=list)
    checked_models: int = 0
    checked_files: int = 0
    checked_chunks: int = 0
    step_seconds: dict = field(default_factory=dict)
    segments: dict | None = None

    @property
    def clean(self) -> bool:
        return not self.issues

    @property
    def repaired(self) -> list[FsckIssue]:
        return [issue for issue in self.issues if issue.repaired]

    @property
    def unrepaired(self) -> list[FsckIssue]:
        return [issue for issue in self.issues if not issue.repaired]

    def add(self, kind: str, detail: str, repaired: bool = False) -> None:
        self.issues.append(FsckIssue(kind, detail, repaired))

    def to_dict(self) -> dict:
        """JSON-serializable view (``mmlib fsck --json``, dashboards)."""
        return {
            "clean": self.clean,
            "checked_models": self.checked_models,
            "checked_files": self.checked_files,
            "checked_chunks": self.checked_chunks,
            "repaired": len(self.repaired),
            "unrepaired": len(self.unrepaired),
            "step_seconds": dict(self.step_seconds),
            "segments": self.segments,
            "issues": [
                {"kind": issue.kind, "detail": issue.detail, "repaired": issue.repaired}
                for issue in self.issues
            ],
            "summary": self.summary(),
        }

    def summary(self) -> str:
        counts = Counter(issue.kind for issue in self.issues)
        breakdown = (
            ", ".join(f"{kind}: {n}" for kind, n in sorted(counts.items()))
            or "no issues"
        )
        return (
            f"fsck: {self.checked_models} models, {self.checked_files} files, "
            f"{self.checked_chunks} chunks checked; {breakdown} "
            f"({len(self.repaired)} repaired, {len(self.unrepaired)} unrepaired)"
        )


class _FsckSteps:
    """Times fsck's sequential passes, one trace span per step.

    fsck is one long linear function; rather than re-nest each numbered
    section, ``start`` closes the previous step (recording its duration
    into the report) and opens the next.  Call ``finish`` after the last
    section.
    """

    def __init__(self, report: FsckReport):
        self._report = report
        self._tracer = obs.tracer()
        self._clock = obs.clock()
        self._name: str | None = None
        self._ctx = None
        self._started = 0.0

    def start(self, name: str) -> None:
        self.finish()
        self._ctx = self._tracer.span(f"fsck.{name}")
        self._ctx.__enter__()
        self._name = name
        self._started = self._clock.perf()

    def finish(self) -> None:
        if self._name is None:
            return
        self._report.step_seconds[self._name] = self._clock.perf() - self._started
        self._ctx.__exit__(None, None, None)
        self._name = None
        self._ctx = None


class ModelManager:
    """Catalog and retention operations over a save service's stores."""

    def __init__(self, service: AbstractSaveService):
        self.service = service
        self.documents = service.documents
        self.files = service.files

    # -- catalog -------------------------------------------------------------

    def _record(self, document: dict, derived_index: dict | None = None) -> ModelRecord:
        model_id = document["_id"]
        if derived_index is None:
            derived_index = self._derived_index()
        return ModelRecord(
            model_id=model_id,
            approach=document.get("approach", "unknown"),
            base_model_id=document.get("base_model"),
            use_case=document.get("use_case"),
            saved_at=document.get("saved_at", 0.0),
            derived_model_ids=sorted(derived_index.get(model_id, [])),
        )

    def _derived_index(self) -> dict[str, list[str]]:
        index: dict[str, list[str]] = {}
        for document in self.documents.collection(MODELS).find():
            base = document.get("base_model")
            if base:
                index.setdefault(base, []).append(document["_id"])
        return index

    def list_models(self, query: dict | None = None) -> list[ModelRecord]:
        """All saved models (optionally filtered by a document query)."""
        derived_index = self._derived_index()
        documents = self.documents.collection(MODELS).find(query)
        records = [self._record(d, derived_index) for d in documents]
        return sorted(records, key=lambda r: r.saved_at)

    def get(self, model_id: str) -> ModelRecord:
        try:
            document = self.documents.collection(MODELS).get(model_id)
        except KeyError as exc:
            raise ModelNotFoundError(f"no saved model with id {model_id!r}") from exc
        return self._record(document)

    def find_by_use_case(self, use_case: str) -> list[ModelRecord]:
        return self.list_models({"use_case": use_case})

    # -- lineage ---------------------------------------------------------------------

    def lineage(self, model_id: str) -> list[ModelRecord]:
        """Records from ``model_id`` up to its chain root (inclusive)."""
        chain = self.service.base_chain(model_id)
        models = self.documents.collection(MODELS)
        if hasattr(models, "get_many"):
            # one round-trip for the whole chain instead of one per level;
            # base_chain() just confirmed every id exists
            derived_index = self._derived_index()
            documents = models.get_many(chain)
            if len(documents) == len(chain):
                return [self._record(d, derived_index) for d in documents]
        return [self.get(mid) for mid in chain]

    def descendants(self, model_id: str) -> list[ModelRecord]:
        """Every model transitively derived from ``model_id``."""
        derived_index = self._derived_index()
        found: list[str] = []
        frontier = list(derived_index.get(model_id, []))
        while frontier:
            current = frontier.pop()
            found.append(current)
            frontier.extend(derived_index.get(current, []))
        return [self.get(mid) for mid in sorted(found)]

    def lineage_tree(self, model_id: str) -> str:
        """Human-readable derivation tree rooted at ``model_id``."""
        derived_index = self._derived_index()
        lines: list[str] = []

        def walk(current: str, depth: int) -> None:
            record = self.get(current)
            label = record.use_case or "-"
            lines.append(f"{'  ' * depth}{current}  [{record.approach}] {label}")
            for child in sorted(derived_index.get(current, [])):
                walk(child, depth + 1)

        walk(model_id, 0)
        return "\n".join(lines)

    # -- storage ------------------------------------------------------------------------

    def storage_report(self) -> dict[str, StorageBreakdown]:
        """Per-model storage breakdowns for the whole catalog."""
        return {
            record.model_id: self.service.model_save_size(record.model_id)
            for record in self.list_models()
        }

    def total_storage_bytes(self) -> int:
        return sum(b.total for b in self.storage_report().values())

    # -- observability ------------------------------------------------------------------

    def stats(self) -> dict:
        """One JSON-able snapshot of everything this deployment measures.

        ``metrics`` is the process-wide registry snapshot (every counter,
        gauge, and histogram family); the remaining keys are per-component
        views taken from whichever optional layers this service was
        actually assembled with — a plain local FileStore contributes no
        cluster or network section.
        """
        out: dict = {"metrics": obs.registry().snapshot()}
        files = self.files
        cache = getattr(files, "chunk_cache", None)
        if cache is not None:
            out["chunk_cache"] = cache.stats()
        if hasattr(files, "cluster_stats"):
            out["cluster_files"] = dict(files.cluster_stats)
        if hasattr(files, "round_trips"):
            out["network"] = {
                "round_trips": files.round_trips,
                "round_trips_saved": files.round_trips_saved,
                "bytes_sent": getattr(files, "bytes_sent", 0),
                "bytes_received": getattr(files, "bytes_received", 0),
            }
        chunk_store = getattr(files, "chunks", None)
        segment_stats = getattr(chunk_store, "segment_stats", None)
        if callable(segment_stats):
            snapshot = segment_stats()
            if snapshot is not None:
                out["segments"] = snapshot
        dedup_stats = getattr(chunk_store, "dedup_stats", None)
        if callable(dedup_stats):
            out["dedup"] = dedup_stats()
        documents = self.documents
        if hasattr(documents, "cluster_stats"):
            out["cluster_docs"] = dict(documents.cluster_stats)
        tenant_counts = getattr(documents, "tenant_model_counts", None)
        if callable(tenant_counts):
            # multi-tenant admin view (gateway deployments): models per tenant
            out["tenants"] = tenant_counts()
        detector = getattr(files, "detector", None) or getattr(
            documents, "detector", None)
        if detector is not None:
            out["health"] = detector.snapshot()
        hint_log = getattr(files, "hints", None) or getattr(
            documents, "hints", None)
        if hint_log is not None:
            out["hints"] = {
                "pending": hint_log.pending_counts(),
                "total_pending": hint_log.total_pending(),
                "pending_bytes": hint_log.pending_bytes(),
                **hint_log.stats,
            }
        prefetcher = getattr(self.service, "prefetcher", None)
        if prefetcher is not None:
            out["prefetcher"] = prefetcher.stats()
        return out

    # -- recovery (delegation) ------------------------------------------------------------

    def recover(self, model_id: str, **kwargs) -> RecoveredModelInfo:
        return self.service.recover_model(model_id, **kwargs)

    def verify_catalog(
        self, use_cache: bool = True, cache=None
    ) -> dict[str, bool | None]:
        """Integrity sweep: recover and checksum-verify every model.

        With ``use_cache`` (default) a shared :class:`RecoveryCache` makes
        the sweep O(n) base recoveries instead of O(n²) — chain prefixes
        are recovered once and reused.  Pass ``cache`` to reuse one
        :class:`RecoveryCache` across sweeps (periodic monitoring then
        pays the recovery cost only for models that changed) instead of
        warming a fresh one every call.  Returns model id -> verified flag
        (``None`` when a model was saved without checksums).
        """
        from .cache import RecoveryCache

        if cache is None and use_cache:
            # chain sweeps recover bases first: protect that prefix instead
            # of evicting it (and skip the deep copy for churn inserts)
            cache = RecoveryCache(max_entries=256, protect_prefix=True)
        results: dict[str, bool | None] = {}
        for record in self.list_models():
            recovered = self.service.recover_model(record.model_id, cache=cache)
            results[record.model_id] = recovered.verified
        return results

    # -- retention: squashing chains ---------------------------------------------------------

    def promote_to_snapshot(self, model_id: str) -> None:
        """Convert a derived model into a self-contained snapshot in place.

        Recovers the model, persists its full parameters, and rewrites its
        document to the baseline layout (keeping its id, use case, and
        derived references intact).  Afterwards the model no longer depends
        on its ancestors — the standard retention move before deleting old
        chain prefixes: promote the oldest model you must keep, then delete
        everything above it.
        """
        document = self.documents.collection(MODELS).get(model_id)
        if document.get("parameters_file"):
            return  # already a snapshot
        recovered = self.service.recover_model(model_id, verify=True)

        # the architecture lives at the chain root; copy it — including its
        # code file's bytes, so deleting the ancestors later cannot orphan
        # the promoted document's architecture
        architecture = None
        for ancestor in self.service.base_chain(model_id):
            ancestor_document = self.documents.collection(MODELS).get(ancestor)
            if ancestor_document.get("architecture"):
                architecture = dict(ancestor_document["architecture"])
                break
        if architecture is None:
            raise MMLibError(
                f"no architecture found along the chain of {model_id!r}; "
                "cannot promote to a snapshot"
            )
        code_bytes = self.files.recover_bytes(architecture["code_file_id"])
        architecture["code_file_id"] = self.files.save_bytes(code_bytes, suffix=".py")

        parameters_file, layer_hashes, root = self.service._save_parameters(
            recovered.model
        )
        # drop the old derived-representation payloads
        for key in ("update_file",):
            if document.get(key):
                self.files.delete(document[key])
        document.pop("update_file", None)
        document.pop("updated_layers", None)
        if document.get("train_info_id"):
            train_document = self.documents.collection(TRAIN_INFO).get(
                document["train_info_id"]
            )
            self._delete_wrappers(train_document)
            self.documents.collection(TRAIN_INFO).delete_one(document["train_info_id"])
            provenance = document.get("provenance") or {}
            if provenance.get("dataset_file_id"):
                self.files.delete(provenance["dataset_file_id"])
        document.pop("train_info_id", None)
        document.pop("provenance", None)

        document["parameters_file"] = parameters_file
        document["architecture"] = architecture
        document["layer_hashes"] = [[k, v] for k, v in layer_hashes.items()]
        document["merkle_root"] = root
        document["base_model"] = None
        document["promoted_from"] = recovered.base_model_id
        self.documents.collection(MODELS).replace_one(model_id, document)

    def squash_chain(self, model_id: str) -> int:
        """Promote ``model_id`` to a snapshot and delete its exclusive
        ancestors; returns how many ancestor models were deleted.

        Ancestors still referenced by *other* chains (e.g. U_1 under both
        branches of the evaluation flow) are kept.
        """
        ancestors = self.service.base_chain(model_id)[1:]
        self.promote_to_snapshot(model_id)
        deleted = 0
        for ancestor in ancestors:  # walk from the model towards the root
            record = self.get(ancestor)
            if record.derived_model_ids:
                break  # still needed by another chain
            self.delete_model(ancestor)
            deleted += 1
        return deleted

    # -- retention: bounding chain depth -----------------------------------------------------

    def compact(self, max_depth: int | None = None, dry_run: bool = False) -> dict:
        """Bound every delta chain's recovery depth at ``max_depth``.

        Finishes any swap a previous run left half-done, then
        materializes a recovery base for every model ``max_depth`` levels
        above its nearest one (see
        :class:`~repro.core.compaction.ChainCompactor`).  Model ids and
        lineage are untouched — only recovery cost changes.  ``dry_run``
        returns the plan without rewriting anything.
        """
        from .compaction import DEFAULT_MAX_DEPTH, ChainCompactor

        compactor = ChainCompactor(
            self.service, max_depth=max_depth or DEFAULT_MAX_DEPTH
        )
        return compactor.run(dry_run=dry_run)

    # -- deletion & garbage collection ------------------------------------------------------

    def _referenced_files(self, document: dict) -> set[str]:
        files: set[str] = set()
        architecture = document.get("architecture")
        if architecture and architecture.get("code_file_id"):
            files.add(architecture["code_file_id"])
        for key in ("parameters_file", "update_file"):
            if document.get(key):
                files.add(document[key])
        provenance = document.get("provenance")
        if provenance and provenance.get("dataset_file_id"):
            files.add(provenance["dataset_file_id"])
        return files

    def _referenced_documents(self, document: dict) -> dict[str, set[str]]:
        refs: dict[str, set[str]] = {ENVIRONMENTS: set(), TRAIN_INFO: set(), WRAPPERS: set()}
        if document.get("environment_id"):
            refs[ENVIRONMENTS].add(document["environment_id"])
        train_info_id = document.get("train_info_id")
        if train_info_id:
            refs[TRAIN_INFO].add(train_info_id)
        return refs

    def delete_model(self, model_id: str, force: bool = False) -> None:
        """Delete one model and everything only it references.

        Refuses to delete a model that derived models still depend on
        unless ``force`` is given — deleting such a model would make its
        descendants unrecoverable.
        """
        record = self.get(model_id)
        if record.derived_model_ids and not force:
            raise DependentModelsError(
                f"model {model_id} has {len(record.derived_model_ids)} derived "
                f"model(s) ({record.derived_model_ids[:3]}…); deleting it would "
                "break their recovery — pass force=True to delete anyway"
            )
        document = self.documents.collection(MODELS).get(model_id)

        for file_id in self._referenced_files(document):
            self.files.delete(file_id)
        for collection_name, doc_ids in self._referenced_documents(document).items():
            collection = self.documents.collection(collection_name)
            for doc_id in doc_ids:
                if collection_name == TRAIN_INFO:
                    train_document = collection.get(doc_id)
                    self._delete_wrappers(train_document)
                collection.delete_one(doc_id)
        self.documents.collection(MODELS).delete_one(model_id)

    def _delete_wrappers(self, train_document: dict) -> None:
        wrappers = self.documents.collection(WRAPPERS)
        for key, value in train_document.items():
            if not (isinstance(value, str) and key.endswith("_wrapper")):
                continue
            try:
                wrapper_document = wrappers.get(value)
            except KeyError:
                continue
            state_file = wrapper_document.get("state_file_id")
            if state_file:
                self.files.delete(state_file)
            wrappers.delete_one(value)

    def garbage_collect(self) -> dict[str, int]:
        """Remove stored files no document references; returns statistics.

        Deleting an unreferenced chunk manifest releases its chunk refs;
        a final sweep then drops any chunks left without references (e.g.
        from saves that crashed before writing their manifest).
        ``bytes_freed`` reports the physical bytes reclaimed, chunk
        deduplication included.
        """
        referenced: set[str] = set()
        for document in self.documents.collection(MODELS).find():
            referenced |= self._referenced_files(document)
        for wrapper in self.documents.collection(WRAPPERS).find():
            if wrapper.get("state_file_id"):
                referenced.add(wrapper["state_file_id"])
        before = self.files.total_bytes()
        removed = 0
        for file_id in self.files.file_ids():
            if file_id not in referenced:
                self.files.delete(file_id)
                removed += 1
        if hasattr(self.files, "gc_chunks"):
            self.files.gc_chunks()
        return {"files_removed": removed, "bytes_freed": before - self.files.total_bytes()}

    # -- self-healing (sharded deployments) ---------------------------------

    def _hint_deliverer(self, hint_log):
        """A foreground deliverer over every hint kind this deployment has."""
        from ..cluster.hints import HintDeliverer

        appliers: dict = {}
        for store in (self.files, self.documents):
            factory = getattr(store, "hint_appliers", None)
            if callable(factory):
                appliers.update(factory())
        return HintDeliverer(
            hint_log, getattr(self.files, "detector", None), appliers
        )

    def _probe_down_members(self) -> None:
        """Give members the detector holds DOWN a chance to recover *now*.

        Explicit repair entry points (``heal``, ``fsck``) should not wait
        out breaker cooldowns: each down member is pinged directly,
        enough consecutive successes to clear the recovery threshold, so
        a member that actually returned is re-admitted before the hint
        drain is gated on it.
        """
        detector = getattr(self.files, "detector", None)
        if detector is None:
            return
        members = getattr(self.files, "members", {})
        for name in detector.down_members():
            ping = getattr(members.get(name), "ping", None)
            if not callable(ping):
                continue
            for _ in range(detector.recovery_threshold):
                try:
                    ping()
                except (OSError, KeyError):
                    detector.record_failure(name)
                    break
                else:
                    detector.record_success(name)

    def heal(self, repair: bool = True, deep: bool = True) -> dict:
        """One foreground self-heal pass over a sharded deployment.

        Drains the hinted-handoff log (replaying quorum-write IOUs into
        members that are back), then runs a full anti-entropy sweep —
        with ``deep``, every reachable replica is read and
        digest-verified, not just counted.  ``repair=False`` audits both
        without writing.  On a non-clustered deployment this is a no-op
        report (``{"cluster": False}``); steady-state deployments run
        the same machinery continuously via the background
        :class:`~repro.cluster.HintDeliverer` and
        :class:`~repro.cluster.AntiEntropyScanner` threads — this method
        is the operator's "converge now and tell me" button
        (``mmlib heal``).
        """
        files = self.files
        if not hasattr(files, "replication_fsck"):
            return {"cluster": False}
        from ..cluster import AntiEntropyScanner

        report: dict = {"cluster": True}
        detector = getattr(files, "detector", None)
        self._probe_down_members()
        if detector is not None:
            report["health"] = detector.snapshot()
        hint_log = getattr(files, "hints", None)
        if hint_log is not None:
            pending_before = hint_log.total_pending()
            deliverer = self._hint_deliverer(hint_log)
            drained = deliverer.drain() if repair else False
            report["hints"] = {
                "pending_before": pending_before,
                "pending_after": hint_log.total_pending(),
                "drained": drained,
                "delivered": deliverer.stats["delivered"],
                "stale": deliverer.stats["stale"],
                "failures": deliverer.stats["failures"],
            }
        scanner = AntiEntropyScanner(files, detector=detector, deep=deep)
        report["anti_entropy"] = scanner.full_sweep(repair=repair)
        report["converged"] = (
            report.get("hints", {}).get("pending_after", 0) == 0
            and report["anti_entropy"]["backlog"] == 0
        )
        obs.events().emit(
            "heal_pass", repair=repair, converged=report["converged"],
            backlog=report["anti_entropy"]["backlog"])
        return report

    # -- fsck: verify and repair --------------------------------------------

    def fsck(self, repair: bool = True, verify_chunks: bool = True) -> FsckReport:
        """Cross-check documents ↔ files ↔ chunks ↔ refcounts; repair.

        Invariants checked, in order:

        1. every intent journal belongs to a finished save — crashed
           saves are rolled back (stores and documents), committed ones
           merely discarded;
        1b. on a segment-layout chunk store, every segment's footer and
           record framing is intact — torn tails are truncated, the
           chunk index is rebuilt from disk, and an interrupted
           compaction is rolled forward or back;
        1c. every chain-compaction journal belongs to a finished swap —
           a swap whose document update committed rolls forward (the
           superseded delta payload is dropped), an uncommitted one
           rolls back (the never-published snapshot artifacts are
           dropped);
        2. every model document's base model, environment/train documents,
           and referenced files exist;
        3. every manifest's chunks exist and (with ``verify_chunks``)
           hash back to their content digests;
        4. no blob exists that no document references (orphans from
           crashes predating the journal, deleted);
        5. chunk refcounts equal what the live manifests reference, and
           no unreferenced chunk file remains;
        6. on a sharded store, every chunk and blob holds its full R
           replicas — under-replicated keys are restored from a surviving
           copy (digest-verified, never propagating corruption);
        6b. no hinted-handoff IOUs remain pending — after the replica
           repair above, leftover hints are drained (delivered or
           resolved as stale); hints still owed to an unreachable member
           are reported unrepaired.

        With ``repair=False`` everything is reported but nothing is
        touched.  Losses fsck cannot undo (a missing or corrupt chunk of
        a live model) are reported as unrepaired issues.
        """
        report = FsckReport()
        files = self.files
        steps = _FsckSteps(report)

        # 1. crashed saves: roll back their journaled steps, newest first
        steps.start("journals")
        if hasattr(files, "incomplete_journals"):
            for journal in files.incomplete_journals():
                if journal.committed:
                    if repair:
                        journal.discard()
                    report.add(
                        "incomplete_save",
                        f"committed journal {journal.save_id} was never removed",
                        repaired=repair,
                    )
                    continue
                if repair:
                    stats = files.rollback_journal(journal)
                    for collection, doc_id in stats["docs"]:
                        try:
                            self.documents.collection(collection).delete_one(doc_id)
                        except Exception:
                            pass  # the document may never have landed
                    detail = (
                        f"rolled back crashed save {journal.save_id}: "
                        f"{stats['blobs_removed']} blobs, "
                        f"{stats['chunks_removed']} chunks, "
                        f"{stats['refs_released']} refs, "
                        f"{len(stats['docs'])} documents"
                    )
                else:
                    detail = (
                        f"crashed save {journal.save_id} left "
                        f"{len(journal.entries)} journaled steps behind"
                    )
                report.add("incomplete_save", detail, repaired=repair)

        # 1b. segment-layout stores: audit footers/record framing, rebuild
        # the chunk index from disk, finish interrupted compactions
        steps.start("segments")
        chunk_store = getattr(files, "chunks", None)
        audit = getattr(chunk_store, "audit", None)
        if callable(audit):
            outcome = audit(repair=repair, verify=verify_chunks)
            if outcome is not None:
                report.segments = outcome
                for name in outcome.get("torn_segments", ()):
                    report.add(
                        "torn_segment",
                        f"segment {name} had a torn tail"
                        + (" (truncated)" if repair else ""),
                        repaired=repair,
                    )
                for digest in outcome.get("entries_dropped", ()):
                    report.add(
                        "segment_index",
                        f"index entry {digest[:24]}… pointed at missing "
                        "segment bytes" + (" (dropped)" if repair else ""),
                        repaired=repair,
                    )
                if outcome.get("entries_added"):
                    report.add(
                        "segment_index",
                        f"rebuilt {outcome['entries_added']} index "
                        "entr(y/ies) from segment scans",
                        repaired=True,
                    )
                for digest in outcome.get("crc_failures", ()):
                    report.add(
                        "segment_crc",
                        f"segment record for chunk {digest[:24]}… fails "
                        "its CRC check",
                    )
                compaction = outcome.get("compaction")
                if compaction:
                    actions = (
                        compaction
                        if isinstance(compaction, list)
                        else [compaction]
                    )
                    for action in actions:
                        report.add(
                            "segment_compaction",
                            f"interrupted compaction: {action}",
                            repaired=repair and "pending" not in str(action),
                        )

        # 1c. chain compaction: a crash between journal and cleanup leaves
        # a half-swapped model — finish the swap in whichever direction
        # the document (the commit point) already shows
        steps.start("compaction")
        if hasattr(files, "root"):
            from .compaction import ChainCompactor

            for action in ChainCompactor.resume_pending(
                self.documents, files, repair=repair
            ):
                report.add(
                    "incomplete_compaction",
                    f"model {action['model_id']}: interrupted chain "
                    f"compaction {action['action'].replace('_', ' ')}",
                    repaired=repair,
                )

        # 2. documents -> documents/files cross-checks
        steps.start("documents")
        model_docs = {d["_id"]: d for d in self.documents.collection(MODELS).find()}
        report.checked_models = len(model_docs)
        referenced_files: set[str] = set()
        live_envs: set[str] = set()
        live_trains: set[str] = set()
        for model_id, document in model_docs.items():
            base = document.get("base_model")
            if base and base not in model_docs:
                report.add(
                    "missing_base",
                    f"model {model_id} derives from missing base model {base}",
                )
            for collection_name, doc_id, live in (
                (ENVIRONMENTS, document.get("environment_id"), live_envs),
                (TRAIN_INFO, document.get("train_info_id"), live_trains),
            ):
                if not doc_id:
                    continue
                live.add(doc_id)
                try:
                    self.documents.collection(collection_name).get(doc_id)
                except KeyError:
                    report.add(
                        "missing_document",
                        f"model {model_id} references missing "
                        f"{collection_name} document {doc_id}",
                    )
            for file_id in self._referenced_files(document):
                referenced_files.add(file_id)
                if not files.exists(file_id):
                    report.add(
                        "missing_file",
                        f"model {model_id} references missing file {file_id}",
                    )
        live_wrappers: set[str] = set()
        for train_id in live_trains:
            try:
                train_document = self.documents.collection(TRAIN_INFO).get(train_id)
            except KeyError:
                continue  # already reported above
            for key, value in train_document.items():
                if isinstance(value, str) and key.endswith("_wrapper"):
                    live_wrappers.add(value)
        for wrapper_id in live_wrappers:
            try:
                wrapper_document = self.documents.collection(WRAPPERS).get(wrapper_id)
            except KeyError:
                report.add(
                    "missing_document",
                    f"train document references missing wrapper {wrapper_id}",
                )
                continue
            state_file = wrapper_document.get("state_file_id")
            if state_file:
                referenced_files.add(state_file)
                if not files.exists(state_file):
                    report.add(
                        "missing_file",
                        f"wrapper {wrapper_id} references missing file {state_file}",
                    )

        # 3. manifests -> chunk existence and content digests
        steps.start("chunks")
        expected_refs: Counter = Counter()
        verified: set[str] = set()
        for file_id in sorted(referenced_files):
            if not (
                hasattr(files, "is_manifest_id")
                and files.is_manifest_id(file_id)
                and files.exists(file_id)
            ):
                continue
            try:
                manifest = files.read_manifest(file_id)
            except (IOError, ValueError) as exc:
                report.add("corrupt_manifest", f"manifest {file_id}: {exc}")
                continue
            for name, meta in manifest["layers"]:
                for digest in layer_chunk_digests(meta):
                    expected_refs[digest] += 1
                    if not files.has_chunk(digest):
                        report.add(
                            "missing_chunk",
                            f"manifest {file_id} layer {name!r} references "
                            f"missing chunk {digest[:12]}…",
                        )
                        continue
                    if not verify_chunks or digest in verified:
                        continue
                    verified.add(digest)
                    # read straight from disk: fsck audits what is stored,
                    # not what a faulty link would deliver; a segment store
                    # raises on CRC failure where file-per-chunk would hand
                    # back the rotten bytes — both count as corruption here
                    try:
                        raw = files.chunks.get(digest)
                        if "chunk" in meta:
                            # v1: the digest is the layer's tensor hash
                            array = np.frombuffer(
                                raw, dtype=np.dtype(meta["dtype"])
                            ).reshape(meta["shape"])
                            intact = tensor_hash(array) == digest
                        else:
                            # v2 (content-defined chunks): the digest is the
                            # sha256 of the raw sub-layer bytes
                            intact = hashlib.sha256(raw).hexdigest() == digest
                    except (OSError, KeyError, ValueError, TypeError):
                        intact = False
                    if not intact:
                        report.add(
                            "corrupt_chunk",
                            f"chunk {digest[:12]}… (layer {name!r} of {file_id}) "
                            "does not hash back to its digest",
                        )
        report.checked_chunks = len(set(expected_refs))

        # 4. orphan blobs nothing references
        steps.start("orphan_files")
        if hasattr(files, "file_ids"):
            file_ids = files.file_ids()
            report.checked_files = len(file_ids)
            for file_id in file_ids:
                if file_id in referenced_files:
                    continue
                if repair:
                    files.delete(file_id)
                report.add(
                    "orphan_file",
                    f"unreferenced file {file_id}"
                    + (" (removed)" if repair else ""),
                    repaired=repair,
                )

        # 5. refcounts vs. the live manifests; orphan chunk files
        steps.start("refcounts")
        if hasattr(files, "chunks"):
            outcome = files.chunks.reconcile(expected_refs, repair=repair)
            for digest, (actual, wanted) in sorted(outcome["ref_fixes"].items()):
                report.add(
                    "refcount_mismatch",
                    f"chunk {digest[:12]}…: stored refcount {actual}, "
                    f"manifests reference it {wanted} time(s)",
                    repaired=repair,
                )
            for name in outcome["orphan_chunks_removed"]:
                report.add(
                    "orphan_chunk",
                    f"unreferenced chunk {name[:12]}…"
                    + (" (removed)" if repair else ""),
                    repaired=repair,
                )

        # 6. replica counts vs. the placement ring (sharded stores only):
        # quorum writes that landed degraded, or members that lost disks,
        # leave keys below R copies — restore them from a surviving replica
        steps.start("replication")
        if hasattr(files, "replication_fsck"):
            outcome = files.replication_fsck(repair=repair)
            unrepairable = {
                (entry["kind"], entry["key"]) for entry in outcome["unrepairable"]
            }
            repaired_keys = {
                (entry["kind"], entry["key"]) for entry in outcome["repaired"]
            }
            for entry in outcome["under_replicated"]:
                key = (entry["kind"], entry["key"])
                fixed = key in repaired_keys and key not in unrepairable
                report.add(
                    "under_replicated",
                    f"{entry['kind']} {entry['key'][:24]}…: {entry['have']}/"
                    f"{entry['want']} replicas (missing on "
                    f"{', '.join(entry['missing'])})"
                    + (" (restored)" if fixed else ""),
                    repaired=fixed,
                )

        # 6b. hinted-handoff backlog: a healthy cluster owes nothing.
        # Step 6 restored the replicas themselves, so pending hints are
        # now satisfied (or still undeliverable) — drain resolves them as
        # stale/delivered; whatever stays pending targets a member that
        # is still unreachable.
        steps.start("hints")
        hint_log = getattr(files, "hints", None)
        if hint_log is not None and hint_log.total_pending():
            pending_before = hint_log.total_pending()
            if repair:
                self._probe_down_members()
                self._hint_deliverer(hint_log).drain()
            remaining = hint_log.total_pending()
            detail = f"{pending_before} handoff hint(s) pending"
            if repair:
                detail += (
                    f" ({pending_before - remaining} drained, "
                    f"{remaining} still owed)"
                )
            report.add(
                "pending_hints", detail, repaired=repair and remaining == 0
            )

        # 7. orphan documents (saves that crashed outside a journal)
        steps.start("orphan_documents")
        for collection_name, live in (
            (ENVIRONMENTS, live_envs),
            (TRAIN_INFO, live_trains),
            (WRAPPERS, live_wrappers),
        ):
            collection = self.documents.collection(collection_name)
            for document in collection.find():
                doc_id = document["_id"]
                if doc_id in live:
                    continue
                if repair:
                    collection.delete_one(doc_id)
                report.add(
                    "orphan_document",
                    f"unreferenced {collection_name} document {doc_id}"
                    + (" (removed)" if repair else ""),
                    repaired=repair,
                )
        steps.finish()

        registry = obs.registry()
        events = obs.events()
        for kind, n in Counter(issue.kind for issue in report.issues).items():
            registry.counter(
                "mmlib_fsck_issues_total", "Fsck issues found by kind", kind=kind
            ).inc(n)
        for issue in report.repaired:
            registry.counter(
                "mmlib_fsck_repairs_total", "Fsck issues repaired").inc()
            events.emit("fsck_repair", issue=issue.kind, detail=issue.detail)
        return report
