"""Identifier helpers for models and related documents."""

from __future__ import annotations

import uuid

__all__ = ["new_model_id", "is_model_id", "MODEL_ID_PREFIX"]

MODEL_ID_PREFIX = "model-"


def new_model_id() -> str:
    """Generate a fresh model identifier (``model-<32 hex chars>``)."""
    return MODEL_ID_PREFIX + uuid.uuid4().hex


def is_model_id(value: str) -> bool:
    """Check whether a string is syntactically a model identifier."""
    if not isinstance(value, str) or not value.startswith(MODEL_ID_PREFIX):
        return False
    suffix = value[len(MODEL_ID_PREFIX) :]
    return len(suffix) == 32 and all(c in "0123456789abcdef" for c in suffix)
