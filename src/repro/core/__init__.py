"""``repro.core`` — MMlib: the paper's model-management library.

Three approaches for saving and recovering exact deep-learning model
representations (baseline snapshots, parameter updates, model provenance),
plus the reproducibility probing tool and an adaptive approach selector.
"""

from .abstract import AbstractSaveService
from .adaptive import AdaptiveSaveService
from .baseline import BaselineSaveService
from .cache import RecoveryCache
from .compaction import ChainCompactor, CompactionJournal
from .dataset_manager import CODEC_DEFLATE, CODEC_STORED, DatasetManager
from .environment import (
    EnvironmentInfo,
    check_environment,
    check_lockfile,
    collect_environment,
    read_lockfile,
    write_lockfile,
)
from .export import (
    NEUTRAL_FORMAT,
    InsufficientProvenanceError,
    NeutralModel,
    assert_sufficient_for_training,
    export_neutral,
    load_neutral,
)
from .errors import (
    EnvironmentMismatchError,
    MMLibError,
    ModelNotFoundError,
    RecoveryError,
    SaveError,
    StoreCorruptionError,
    TransientStoreError,
    VerificationError,
)
from .hashing import state_dict_hashes, state_dict_root_hash, tensor_hash
from .heuristics import (
    CostEstimate,
    CostModel,
    ScenarioProfile,
    recommend_approach,
    select_approach,
)
from .ids import is_model_id, new_model_id
from .manager import (
    DependentModelsError,
    FsckIssue,
    FsckReport,
    ModelManager,
    ModelRecord,
)
from .merkle import DiffResult, MerkleNode, MerkleTree
from .param_update import ParameterUpdateSaveService, extract_parameter_update
from .prefetch import ChainPrefetcher
from .probe import (
    LayerRecord,
    ProbeComparison,
    ProbeSummary,
    probe_inference,
    probe_reproducibility,
    probe_training,
)
from .provenance import ProvenanceRecorder, ProvenanceSaveService
from .recover import RecoveredModelInfo, StorageBreakdown
from .save_info import ArchitectureRef, ModelSaveInfo, ProvenanceSaveInfo, TrainRunSpec
from .schema import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
    APPROACHES,
)
from .train_service import ImageClassificationTrainService, TrainService
from .wrappers import RestorableObjectWrapper, StateFileRestorableObjectWrapper

__all__ = [
    "AbstractSaveService",
    "AdaptiveSaveService",
    "DependentModelsError",
    "FsckIssue",
    "ChainCompactor",
    "CompactionJournal",
    "FsckReport",
    "ModelManager",
    "ModelRecord",
    "NEUTRAL_FORMAT",
    "InsufficientProvenanceError",
    "NeutralModel",
    "assert_sufficient_for_training",
    "export_neutral",
    "load_neutral",
    "BaselineSaveService",
    "RecoveryCache",
    "CODEC_DEFLATE",
    "CODEC_STORED",
    "DatasetManager",
    "EnvironmentInfo",
    "check_environment",
    "check_lockfile",
    "collect_environment",
    "read_lockfile",
    "write_lockfile",
    "EnvironmentMismatchError",
    "MMLibError",
    "ModelNotFoundError",
    "RecoveryError",
    "SaveError",
    "StoreCorruptionError",
    "TransientStoreError",
    "VerificationError",
    "state_dict_hashes",
    "state_dict_root_hash",
    "tensor_hash",
    "CostEstimate",
    "CostModel",
    "ScenarioProfile",
    "recommend_approach",
    "select_approach",
    "is_model_id",
    "new_model_id",
    "DiffResult",
    "MerkleNode",
    "MerkleTree",
    "ParameterUpdateSaveService",
    "extract_parameter_update",
    "ChainPrefetcher",
    "LayerRecord",
    "ProbeComparison",
    "ProbeSummary",
    "probe_inference",
    "probe_reproducibility",
    "probe_training",
    "ProvenanceRecorder",
    "ProvenanceSaveService",
    "RecoveredModelInfo",
    "StorageBreakdown",
    "ArchitectureRef",
    "ModelSaveInfo",
    "ProvenanceSaveInfo",
    "TrainRunSpec",
    "APPROACH_BASELINE",
    "APPROACH_PARAM_UPDATE",
    "APPROACH_PROVENANCE",
    "APPROACHES",
    "ImageClassificationTrainService",
    "TrainService",
    "RestorableObjectWrapper",
    "StateFileRestorableObjectWrapper",
]
