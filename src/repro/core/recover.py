"""Recovery results: the model plus how it was recovered and verified."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nn.modules import Module

__all__ = ["RecoveredModelInfo", "StorageBreakdown"]


@dataclass
class RecoveredModelInfo:
    """Result of :meth:`AbstractSaveService.recover_model`.

    ``timings`` records the recovery phases measured by the paper's
    Figure 12: ``load`` (documents + files), ``recover`` (rebuild model and
    apply parameters/updates/training), ``check_env``, and ``check_hash``.
    ``verified`` is ``None`` when checksum verification was skipped.
    """

    model_id: str
    model: Module
    approach: str
    base_model_id: str | None
    use_case: str | None
    timings: dict[str, float] = field(default_factory=dict)
    verified: bool | None = None
    recovery_depth: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


@dataclass
class StorageBreakdown:
    """Bytes consumed to save one model (excluding its base models).

    ``documents`` covers the model/environment/train-info/wrapper JSON
    documents; ``files`` maps file role (``parameters``, ``code``,
    ``dataset``, ``state``) to stored bytes.
    """

    model_id: str
    approach: str
    documents: int
    files: dict[str, int] = field(default_factory=dict)

    @property
    def file_bytes(self) -> int:
        return sum(self.files.values())

    @property
    def total(self) -> int:
        return self.documents + self.file_bytes
