"""Document schema: collection names and document layout constants.

MMlib persists metadata as JSON documents organized hierarchically
(Section 3.1): a *model* document references an *environment* document, a
*train-info* document (MPA), and *wrapper* documents, plus file ids into
the shared file store.
"""

from __future__ import annotations

__all__ = [
    "MODELS",
    "ENVIRONMENTS",
    "TRAIN_INFO",
    "WRAPPERS",
    "APPROACH_BASELINE",
    "APPROACH_PARAM_UPDATE",
    "APPROACH_PROVENANCE",
    "APPROACHES",
]

# collection names
MODELS = "models"
ENVIRONMENTS = "environments"
TRAIN_INFO = "train_info"
WRAPPERS = "wrappers"

# approach identifiers stored in model documents
APPROACH_BASELINE = "baseline"
APPROACH_PARAM_UPDATE = "param_update"
APPROACH_PROVENANCE = "provenance"
APPROACHES = (APPROACH_BASELINE, APPROACH_PARAM_UPDATE, APPROACH_PROVENANCE)
