"""Framework-independent model exchange (paper §2.2 context).

The paper notes that "framework independent formats like PMML, PFA, or
ONNX do not capture the model in a level of detail needed to reproduce
model training".  This module provides exactly such a neutral format —
useful for *inference interchange* — and makes its limitation explicit:

* :func:`export_neutral` captures the architecture outline (layer names,
  types, shapes) and the parameter values;
* it deliberately has no slot for training code, optimizer state, RNG
  state, or dataset references, so a neutral export can never serve as MPA
  provenance — :func:`assert_sufficient_for_training` raises for any
  neutral payload, and the tests pin that behaviour down.

Format: the substrate's deterministic binary serialization of
``{"format", "version", "layers": [...], "parameters": {...}}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..nn import serialization
from ..nn.modules import Module
from .errors import MMLibError

__all__ = [
    "NEUTRAL_FORMAT",
    "NeutralModel",
    "export_neutral",
    "load_neutral",
    "assert_sufficient_for_training",
    "InsufficientProvenanceError",
]

NEUTRAL_FORMAT = "repro-neutral"
_VERSION = 1


class InsufficientProvenanceError(MMLibError):
    """Raised when data cannot support exact training reproduction."""


@dataclass
class NeutralModel:
    """A loaded neutral-format model: structure outline + parameters."""

    layers: list[dict]
    parameters: dict

    def apply_to(self, model: Module) -> Module:
        """Load the exported parameters into a compatible module."""
        model.load_state_dict(self.parameters)
        return model

    def summary(self) -> str:
        """Human-readable outline of the exported structure."""
        lines = [f"{len(self.layers)} modules, {len(self.parameters)} tensors"]
        for layer in self.layers:
            lines.append(f"  {layer['name'] or '<root>'}: {layer['type']}")
        return "\n".join(lines)


def export_neutral(model: Module, path: str | Path) -> int:
    """Write a model in the neutral exchange format; returns bytes written.

    Captures what PMML/PFA/ONNX-style formats capture — computational
    structure and weights — and nothing else.
    """
    layers = [
        {"name": name, "type": type(module).__name__}
        for name, module in model.named_modules()
    ]
    payload = {
        "format": NEUTRAL_FORMAT,
        "version": _VERSION,
        "layers": layers,
        "parameters": model.state_dict(),
    }
    return serialization.save(payload, path)


def load_neutral(path: str | Path) -> NeutralModel:
    """Load a neutral-format export."""
    payload = serialization.load(path)
    if not isinstance(payload, dict) or payload.get("format") != NEUTRAL_FORMAT:
        raise MMLibError(f"{path} is not a {NEUTRAL_FORMAT} export")
    if payload.get("version") != _VERSION:
        raise MMLibError(
            f"unsupported {NEUTRAL_FORMAT} version {payload.get('version')}"
        )
    return NeutralModel(layers=list(payload["layers"]), parameters=payload["parameters"])


#: Everything an exact training reproduction needs (paper §2.3/§3.3) that a
#: neutral inference format has no representation for.
_TRAINING_REQUIREMENTS = (
    "training source code / train service",
    "optimizer type and internal state",
    "loss function",
    "hyper-parameters (epochs, batch size, learning rate)",
    "PRNG seeds and generator state",
    "training dataset (or a managed reference)",
    "environment specification",
)


def assert_sufficient_for_training(payload) -> None:
    """Check whether data could drive an exact training reproduction.

    Neutral exports never can (by construction); this function exists so
    callers hit a clear, documented error instead of silently recovering
    an *approximate* model — the distinction the paper draws between
    recoverability from snapshots/provenance and interchange formats.
    """
    if isinstance(payload, NeutralModel) or (
        isinstance(payload, dict) and payload.get("format") == NEUTRAL_FORMAT
    ):
        missing = "; ".join(_TRAINING_REQUIREMENTS)
        raise InsufficientProvenanceError(
            "neutral exchange formats capture architecture and weights only "
            f"and cannot reproduce model training — missing: {missing}. "
            "Use the model provenance approach (ProvenanceSaveService) for "
            "training reproduction."
        )
    raise InsufficientProvenanceError(
        f"cannot assess training sufficiency of {type(payload).__name__}; "
        "only MMlib provenance records support exact training reproduction"
    )
