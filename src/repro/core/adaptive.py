"""Adaptive save service: pick the best approach per model (paper §4.7).

The paper's discussion proposes "a heuristic that decides which is the most
suitable approach (BA, PUA, or the MPA) for every model", driven by the
fact that BA/PUA costs scale with the model parameters while MPA costs
scale with the dataset — optionally combined with hard constraints such as
a maximum storage consumption or TTR.

:class:`AdaptiveSaveService` implements that: each ``save_model`` call
profiles the concrete save (model bytes, changed-parameter fraction
estimated from the base model's stored layer hashes, dataset bytes) and
delegates to the cheapest feasible approach.  Recovery is inherited — the
shared engine dispatches on what each document contains, so mixed-approach
chains recover transparently.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

from .abstract import AbstractSaveService
from .baseline import BaselineSaveService
from .errors import SaveError
from .hashing import state_dict_hashes
from .heuristics import CostEstimate, CostModel, ScenarioProfile
from .merkle import MerkleTree
from .param_update import ParameterUpdateSaveService
from .provenance import ProvenanceSaveService
from .save_info import ModelSaveInfo, ProvenanceSaveInfo
from .schema import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
)

__all__ = ["AdaptiveSaveService"]


def _directory_bytes(path: Path) -> int:
    return sum(p.stat().st_size for p in Path(path).rglob("*") if p.is_file())


class AdaptiveSaveService(AbstractSaveService):
    """Routes each save to the BA, PUA, or MPA by predicted cost.

    ``max_storage_bytes`` / ``max_recover_seconds`` impose the paper's hard
    constraints; ``train_seconds_estimate`` is the expected cost of
    replaying one training run (used to price MPA recovery);
    ``recovers_per_save`` weights recovery cost by how often it happens
    (the paper assumes U_4 is rare).
    """

    approach = "adaptive"

    def __init__(
        self,
        document_store,
        file_store,
        scratch_dir: str | Path | None = None,
        dataset_codec: str | None = None,
        cost_model: CostModel | None = None,
        max_storage_bytes: float | None = None,
        max_recover_seconds: float | None = None,
        train_seconds_estimate: float = 60.0,
        recovers_per_save: float = 0.01,
        chunked: bool = True,
        retry=None,
        prefetcher=None,
    ):
        super().__init__(
            document_store, file_store, scratch_dir, dataset_codec,
            chunked=chunked, retry=retry, prefetcher=prefetcher,
        )
        self.cost_model = cost_model or CostModel()
        self.max_storage_bytes = max_storage_bytes
        self.max_recover_seconds = max_recover_seconds
        self.train_seconds_estimate = train_seconds_estimate
        self.recovers_per_save = recovers_per_save
        self._services = {
            APPROACH_BASELINE: BaselineSaveService(
                document_store, file_store, scratch_dir, dataset_codec,
                chunked=chunked, retry=retry, prefetcher=prefetcher,
            ),
            APPROACH_PARAM_UPDATE: ParameterUpdateSaveService(
                document_store, file_store, scratch_dir, dataset_codec,
                chunked=chunked, retry=retry, prefetcher=prefetcher,
            ),
            APPROACH_PROVENANCE: ProvenanceSaveService(
                document_store, file_store, scratch_dir, dataset_codec,
                chunked=chunked, retry=retry, prefetcher=prefetcher,
            ),
        }
        #: the estimate behind the most recent save (for inspection/benches)
        self.last_choice: CostEstimate | None = None

    # -- profiling ---------------------------------------------------------

    def _updated_fraction(self, save_info: ModelSaveInfo, state: "OrderedDict") -> float:
        """Fraction of parameter bytes changed vs. the base (1.0 if unknown)."""
        if save_info.base_model_id is None:
            return 1.0
        base_document = self._get_model_document(save_info.base_model_id)
        base_hashes = base_document.get("layer_hashes")
        if not base_hashes:
            return 1.0
        try:
            base_tree = MerkleTree.from_layer_hashes(OrderedDict(base_hashes))
            current_tree = MerkleTree.from_layer_hashes(state_dict_hashes(state))
            changed = set(current_tree.diff(base_tree).changed_layers)
        except ValueError:  # architecture changed: treat as fully updated
            return 1.0
        total = sum(array.nbytes for array in state.values())
        if total == 0:
            return 1.0
        changed_bytes = sum(
            array.nbytes for name, array in state.items() if name in changed
        )
        return changed_bytes / total

    def _profile(self, save_info) -> tuple[ScenarioProfile, int]:
        if isinstance(save_info, ProvenanceSaveInfo):
            if save_info.expected_model is None:
                raise SaveError(
                    "the adaptive service profiles saves against the trained "
                    "model; provide ProvenanceSaveInfo.expected_model"
                )
            state = save_info.expected_model.state_dict()
            dataset_bytes = (
                _directory_bytes(save_info.dataset_dir)
                if save_info.dataset_dir is not None
                else 0
            )
            externally_managed = save_info.dataset_reference is not None
            pseudo_info = ModelSaveInfo(
                model=save_info.expected_model,
                architecture=None,  # unused by _updated_fraction
                base_model_id=save_info.base_model_id,
            )
            updated_fraction = self._updated_fraction(pseudo_info, state)
        else:
            state = save_info.model.state_dict()
            dataset_bytes = 0
            externally_managed = False
            updated_fraction = self._updated_fraction(save_info, state)
        model_bytes = sum(array.nbytes for array in state.values())
        depth = (
            len(self.base_chain(save_info.base_model_id))
            if save_info.base_model_id
            else 0
        )
        profile = ScenarioProfile(
            model_bytes=model_bytes,
            dataset_bytes=dataset_bytes,
            updated_fraction=updated_fraction,
            train_seconds=self.train_seconds_estimate,
            recovers_per_save=self.recovers_per_save,
            dataset_externally_managed=externally_managed,
        )
        return profile, depth + 1

    def _feasible_approaches(self, save_info) -> set[str]:
        if isinstance(save_info, ProvenanceSaveInfo):
            # with a recorded training run everything is possible; a missing
            # base or snapshot handled in _profile validation
            return {APPROACH_BASELINE, APPROACH_PARAM_UPDATE, APPROACH_PROVENANCE}
        # plain snapshots cannot be saved as provenance (no training record)
        approaches = {APPROACH_BASELINE}
        if save_info.base_model_id is not None:
            base_document = self._get_model_document(save_info.base_model_id)
            if base_document.get("layer_hashes"):
                approaches.add(APPROACH_PARAM_UPDATE)
        return approaches

    # -- saving -----------------------------------------------------------------

    def _save_model(self, save_info) -> str:
        """Profile the save, pick the cheapest feasible approach, delegate."""
        profile, chain_depth = self._profile(save_info)
        feasible = self._feasible_approaches(save_info)

        candidates = [
            estimate
            for estimate in self.cost_model.estimate(profile, chain_depth=chain_depth)
            if estimate.approach in feasible
        ]
        feasible_candidates = [
            estimate
            for estimate in candidates
            if (
                self.max_storage_bytes is None
                or estimate.storage_bytes <= self.max_storage_bytes
            )
            and (
                self.max_recover_seconds is None
                or estimate.recover_seconds <= self.max_recover_seconds
            )
        ]
        if not feasible_candidates:
            raise SaveError(
                "no approach satisfies the configured storage/TTR constraints "
                f"for this save; candidates: "
                f"{[(c.approach, int(c.storage_bytes), round(c.recover_seconds, 1)) for c in candidates]}"
            )
        choice = min(
            feasible_candidates,
            key=lambda c: c.weighted(1.0, 0.0, self.recovers_per_save),
        )
        self.last_choice = choice
        return self._delegate(choice.approach, save_info)

    def _delegate(self, approach: str, save_info) -> str:
        service = self._services[approach]
        if approach == APPROACH_PROVENANCE:
            return service.save_model(save_info)
        if isinstance(save_info, ProvenanceSaveInfo):
            # snapshot route for a recorded run: persist the trained model
            snapshot = ModelSaveInfo(
                model=save_info.expected_model,
                architecture=self._architecture_of_chain_root(save_info.base_model_id),
                base_model_id=save_info.base_model_id,
                use_case=save_info.use_case,
                store_checksums=save_info.store_checksums,
            )
            return service.save_model(snapshot)
        return service.save_model(save_info)

    def _architecture_of_chain_root(self, model_id: str):
        """Reuse the chain root's architecture ref for snapshot fallbacks."""
        from .save_info import ArchitectureRef

        for candidate in reversed(self.base_chain(model_id)):
            document = self._get_model_document(candidate)
            if document.get("architecture"):
                payload = document["architecture"]
                source = self.files.recover_bytes(payload["code_file_id"]).decode()
                return ArchitectureRef.from_dict(payload, source=source)
        raise SaveError(f"no architecture found along the chain of {model_id!r}")
