"""Baseline approach (BA): complete, independent model snapshots (§3.1).

Every model is saved with its metadata (environment, base reference,
optional checksums), its architecture (code file + factory reference), and
a full serialization of its parameters.  Recovery never touches base-model
documents.
"""

from __future__ import annotations

from .abstract import AbstractSaveService
from .save_info import ModelSaveInfo
from .schema import APPROACH_BASELINE

__all__ = ["BaselineSaveService"]


class BaselineSaveService(AbstractSaveService):
    """Save/recover service implementing the baseline approach."""

    approach = APPROACH_BASELINE

    def _save_model(self, save_info: ModelSaveInfo) -> str:
        """Save a complete snapshot; returns the new model id."""
        save_info.validate()
        environment_id = self._save_environment()
        architecture = self._save_architecture(save_info.architecture)
        parameters_file, layer_hashes, root = self._save_parameters(save_info.model)

        document = {
            "base_model": save_info.base_model_id,
            "use_case": save_info.use_case,
            "environment_id": environment_id,
            "architecture": architecture,
            "parameters_file": parameters_file,
        }
        if save_info.store_checksums:
            document["layer_hashes"] = [[k, v] for k, v in layer_hashes.items()]
            document["merkle_root"] = root
        return self._insert_model_document(document)
