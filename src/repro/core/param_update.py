"""Parameter update approach (PUA): save only what changed (§3.2).

The first model in a chain is saved exactly like the baseline.  A derived
model is represented by a reference to its base plus the *parameter
update*: the layers whose parameters differ from the base.  Changed layers
are found by comparing per-layer hash Merkle trees — only the base model's
*document* (which always carries the layer hashes) is loaded, never its
parameters, so saving stays cheap regardless of chain depth.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

from .abstract import AbstractSaveService
from .errors import SaveError
from .hashing import state_dict_hashes
from .merkle import DiffResult, MerkleTree
from .save_info import ModelSaveInfo
from .schema import APPROACH_PARAM_UPDATE

__all__ = ["ParameterUpdateSaveService", "extract_parameter_update"]


def extract_parameter_update(
    state_dict: Mapping,
    current_tree: MerkleTree,
    base_tree: MerkleTree,
    use_merkle: bool = True,
) -> tuple["OrderedDict", DiffResult]:
    """Prune unchanged layers from ``state_dict``.

    Returns the parameter update (changed layers only, in state-dict order)
    and the diff result with its comparison count.  ``use_merkle=False``
    falls back to the flat per-layer scan (ablation baseline).
    """
    diff = current_tree.diff(base_tree) if use_merkle else current_tree.flat_diff(base_tree)
    changed = set(diff.changed_layers)
    update = OrderedDict(
        (name, array) for name, array in state_dict.items() if name in changed
    )
    return update, diff


class ParameterUpdateSaveService(AbstractSaveService):
    """Save/recover service implementing the parameter update approach."""

    approach = APPROACH_PARAM_UPDATE

    def __init__(
        self,
        document_store,
        file_store,
        scratch_dir=None,
        dataset_codec=None,
        use_merkle: bool = True,
        chunked: bool = True,
        retry=None,
        prefetcher=None,
    ):
        super().__init__(
            document_store, file_store, scratch_dir, dataset_codec,
            chunked=chunked, retry=retry, prefetcher=prefetcher,
        )
        self.use_merkle = use_merkle
        #: hash comparisons performed by the most recent save (ablation metric)
        self.last_diff: DiffResult | None = None

    def _save_model(self, save_info: ModelSaveInfo) -> str:
        """Save a model; full snapshot for initial models, update otherwise."""
        save_info.validate()
        if save_info.base_model_id is None:
            return self._save_initial(save_info)
        return self._save_update(save_info)

    def _save_initial(self, save_info: ModelSaveInfo) -> str:
        environment_id = self._save_environment()
        architecture = self._save_architecture(save_info.architecture)
        parameters_file, layer_hashes, root = self._save_parameters(save_info.model)
        document = {
            "base_model": None,
            "use_case": save_info.use_case,
            "environment_id": environment_id,
            "architecture": architecture,
            "parameters_file": parameters_file,
            # the PUA *always* stores per-layer hashes so derived saves can
            # diff against this model without recovering it (Section 3.2)
            "layer_hashes": [[k, v] for k, v in layer_hashes.items()],
            "merkle_root": root,
        }
        return self._insert_model_document(document)

    def _save_update(self, save_info: ModelSaveInfo) -> str:
        base_document = self._get_model_document(save_info.base_model_id)
        base_hash_list = base_document.get("layer_hashes")
        if not base_hash_list:
            raise SaveError(
                f"base model {save_info.base_model_id} has no layer hashes; "
                "it was not saved by the parameter update approach"
            )
        base_tree = MerkleTree.from_layer_hashes(OrderedDict(base_hash_list))

        state = save_info.model.state_dict()
        hashes = state_dict_hashes(state)
        current_tree = MerkleTree.from_layer_hashes(hashes)
        update, diff = extract_parameter_update(
            state, current_tree, base_tree, use_merkle=self.use_merkle
        )
        self.last_diff = diff

        environment_id = self._save_environment()
        # the per-layer hashes above are the chunk ids — no re-hashing here
        update_file = self._save_state(update, hashes, kind="update")

        document = {
            "base_model": save_info.base_model_id,
            "use_case": save_info.use_case,
            "environment_id": environment_id,
            # no architecture entry: across fully/partially updated versions
            # it is unchanged and defined by the base-model reference
            "update_file": update_file,
            "updated_layers": diff.changed_layers,
            "layer_hashes": [[k, v] for k, v in hashes.items()],
            "merkle_root": current_tree.root_hash,
        }
        return self._insert_model_document(document)
