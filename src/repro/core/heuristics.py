"""Adaptive approach selection (paper Section 4.7, "Adaptive Approach").

The paper sketches a heuristic that picks the best approach per model: the
BA and PUA mainly depend on the model parameters, whereas the MPA depends
on the dataset.  :func:`recommend_approach` implements that simple ratio
heuristic; :class:`CostModel`/:func:`select_approach` implement the "more
complex heuristic ... based on a formalized tradeoff ... combined with some
given parameters, such as maximum storage consumption or TTR".
"""

from __future__ import annotations

from dataclasses import dataclass

from .schema import APPROACH_BASELINE, APPROACH_PARAM_UPDATE, APPROACH_PROVENANCE

__all__ = ["ScenarioProfile", "CostEstimate", "CostModel", "recommend_approach", "select_approach"]


@dataclass(frozen=True)
class ScenarioProfile:
    """What is known about a save/recover scenario up front."""

    model_bytes: int
    dataset_bytes: int
    updated_fraction: float  # fraction of parameter bytes changed per update
    train_seconds: float  # time to reproduce one training run
    recovers_per_save: float = 0.01  # paper assumption: recovery is rare
    dataset_externally_managed: bool = False

    def __post_init__(self):
        if self.model_bytes <= 0:
            raise ValueError("model_bytes must be positive")
        if not 0.0 <= self.updated_fraction <= 1.0:
            raise ValueError("updated_fraction must be within [0, 1]")


@dataclass(frozen=True)
class CostEstimate:
    """Predicted cost of one approach under a scenario."""

    approach: str
    storage_bytes: float
    save_seconds: float
    recover_seconds: float

    def weighted(self, storage_weight: float, save_weight: float, recover_weight: float) -> float:
        return (
            storage_weight * self.storage_bytes
            + save_weight * self.save_seconds
            + recover_weight * self.recover_seconds
        )


class CostModel:
    """First-order cost model for all three approaches.

    ``io_bytes_per_second`` covers serialize+hash+persist throughput; the
    default corresponds to the paper's measurements (a ~240 MB ResNet-152
    snapshot saves in ~0.8 s).
    """

    def __init__(self, io_bytes_per_second: float = 300e6, fixed_overhead_s: float = 0.02):
        self.io_bytes_per_second = io_bytes_per_second
        self.fixed_overhead_s = fixed_overhead_s

    def _io_time(self, num_bytes: float) -> float:
        return self.fixed_overhead_s + num_bytes / self.io_bytes_per_second

    def estimate(self, profile: ScenarioProfile, chain_depth: int = 1) -> list[CostEstimate]:
        """Cost of saving one derived model and recovering it later.

        ``chain_depth`` is the number of derived models between this model
        and its snapshot root — it drives the PUA's and MPA's recursive
        recovery costs (the staircase in the paper's Figure 11).
        """
        update_bytes = profile.updated_fraction * profile.model_bytes
        mpa_storage = 0.0 if profile.dataset_externally_managed else profile.dataset_bytes

        estimates = [
            CostEstimate(
                APPROACH_BASELINE,
                storage_bytes=profile.model_bytes,
                save_seconds=self._io_time(profile.model_bytes),
                recover_seconds=self._io_time(profile.model_bytes),
            ),
            CostEstimate(
                APPROACH_PARAM_UPDATE,
                storage_bytes=update_bytes,
                save_seconds=self._io_time(update_bytes),
                recover_seconds=self._io_time(profile.model_bytes)
                + chain_depth * self._io_time(update_bytes),
            ),
            CostEstimate(
                APPROACH_PROVENANCE,
                storage_bytes=mpa_storage,
                save_seconds=self._io_time(mpa_storage),
                recover_seconds=self._io_time(profile.model_bytes)
                + chain_depth * profile.train_seconds,
            ),
        ]
        return estimates


def recommend_approach(profile: ScenarioProfile) -> str:
    """The paper's simple ratio heuristic for save-heavy workloads.

    * dataset larger than the model (or unknown hardware) -> PUA;
    * large models with small datasets (e.g. NLP) or externally managed
      datasets -> MPA;
    * substantial per-update changes with nothing to exploit -> BA.
    """
    mpa_storage = 0 if profile.dataset_externally_managed else profile.dataset_bytes
    update_bytes = profile.updated_fraction * profile.model_bytes
    best = min(
        (
            (profile.model_bytes, APPROACH_BASELINE),
            (update_bytes, APPROACH_PARAM_UPDATE),
            (mpa_storage, APPROACH_PROVENANCE),
        ),
        key=lambda pair: pair[0],
    )
    return best[1]


def select_approach(
    profile: ScenarioProfile,
    chain_depth: int = 1,
    max_storage_bytes: float | None = None,
    max_recover_seconds: float | None = None,
    storage_weight: float = 1.0,
    save_weight: float = 0.0,
    recover_weight: float = 0.0,
    cost_model: CostModel | None = None,
) -> CostEstimate:
    """Pick the cheapest approach subject to hard constraints.

    Raises ``ValueError`` when no approach satisfies the constraints — in
    that case the caller must relax the storage bound or the TTR bound
    (the storage-retraining tradeoff has no free lunch).
    """
    model = cost_model or CostModel()
    candidates = model.estimate(profile, chain_depth=chain_depth)
    feasible = [
        c
        for c in candidates
        if (max_storage_bytes is None or c.storage_bytes <= max_storage_bytes)
        and (max_recover_seconds is None or c.recover_seconds <= max_recover_seconds)
    ]
    if not feasible:
        raise ValueError(
            "no approach satisfies the given constraints; "
            f"candidates were: {[(c.approach, c.storage_bytes, c.recover_seconds) for c in candidates]}"
        )
    # weight recover time by how often recovery actually happens
    return min(
        feasible,
        key=lambda c: c.weighted(
            storage_weight, save_weight, recover_weight * profile.recovers_per_save
        ),
    )
