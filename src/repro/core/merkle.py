"""Merkle tree over per-layer parameter hashes (paper Section 3.2, Fig. 4).

Every model layer is a leaf holding that layer's parameter hash; inner
nodes combine their children's hashes.  Two uses:

* equal-weights check by comparing only the two root hashes;
* finding the changed layers between a model and its base with far fewer
  hash comparisons than a flat scan when few layers changed (7 instead of
  8 comparisons for an 8-layer model with two trailing changed layers; 13
  instead of 64 for a 64-layer model — the paper's example numbers).

``diff`` counts the comparisons it performs so the Merkle-vs-flat ablation
bench can report them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .hashing import combine_hashes, state_dict_hashes

__all__ = ["MerkleNode", "MerkleTree", "DiffResult"]


@dataclass
class MerkleNode:
    """A node covering leaves ``[start, stop)`` of the layer list."""

    hash: str
    start: int
    stop: int
    left: "MerkleNode | None" = None
    right: "MerkleNode | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


@dataclass
class DiffResult:
    """Outcome of comparing two trees."""

    changed_layers: list[str]
    comparisons: int


class MerkleTree:
    """Balanced binary Merkle tree over an ordered list of layer hashes."""

    def __init__(self, layer_names: Sequence[str], leaf_hashes: Sequence[str]):
        if len(layer_names) != len(leaf_hashes):
            raise ValueError("layer_names and leaf_hashes must align")
        if not layer_names:
            raise ValueError("cannot build a Merkle tree over zero layers")
        self.layer_names = list(layer_names)
        self.leaf_hashes = list(leaf_hashes)
        self.root = self._build(0, len(leaf_hashes))

    @classmethod
    def from_state_dict(cls, state_dict: Mapping) -> "MerkleTree":
        hashes = state_dict_hashes(state_dict)
        return cls(list(hashes.keys()), list(hashes.values()))

    @classmethod
    def from_layer_hashes(cls, layer_hashes: Mapping[str, str]) -> "MerkleTree":
        return cls(list(layer_hashes.keys()), list(layer_hashes.values()))

    def _build(self, start: int, stop: int) -> MerkleNode:
        if stop - start == 1:
            return MerkleNode(self.leaf_hashes[start], start, stop)
        mid = (start + stop + 1) // 2
        left = self._build(start, mid)
        right = self._build(mid, stop)
        return MerkleNode(combine_hashes(left.hash, right.hash), start, stop, left, right)

    @property
    def root_hash(self) -> str:
        return self.root.hash

    def __len__(self) -> int:
        return len(self.leaf_hashes)

    def __eq__(self, other) -> bool:
        return isinstance(other, MerkleTree) and self.root_hash == other.root_hash

    # -- diffing ------------------------------------------------------------

    def diff(self, other: "MerkleTree") -> DiffResult:
        """Layers whose hashes differ between ``self`` and ``other``.

        Both trees must cover the same ordered layer list (the PUA's
        fully/partially updated model relations keep the architecture
        fixed).  Subtrees with equal hashes are skipped entirely.
        """
        if self.layer_names != other.layer_names:
            raise ValueError(
                "Merkle diff requires identical layer structure; "
                "got differing layer name lists"
            )
        changed: list[str] = []
        comparisons = 0

        def walk(a: MerkleNode, b: MerkleNode) -> None:
            nonlocal comparisons
            comparisons += 1
            if a.hash == b.hash:
                return
            if a.is_leaf:
                changed.append(self.layer_names[a.start])
                return
            walk(a.left, b.left)
            walk(a.right, b.right)

        walk(self.root, other.root)
        return DiffResult(changed_layers=changed, comparisons=comparisons)

    def flat_diff(self, other: "MerkleTree") -> DiffResult:
        """Baseline comparison touching every leaf (for the ablation)."""
        if self.layer_names != other.layer_names:
            raise ValueError("flat diff requires identical layer structure")
        changed = [
            name
            for name, a, b in zip(self.layer_names, self.leaf_hashes, other.leaf_hashes)
            if a != b
        ]
        return DiffResult(changed_layers=changed, comparisons=len(self.leaf_hashes))

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-compatible representation (leaves only; tree is rebuilt)."""
        return {
            "layers": self.layer_names,
            "hashes": self.leaf_hashes,
            "root": self.root_hash,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MerkleTree":
        """Rebuild from :meth:`to_dict`, validating the stored root."""
        tree = cls(payload["layers"], payload["hashes"])
        if payload.get("root") and tree.root_hash != payload["root"]:
            raise ValueError("Merkle tree payload is inconsistent with its root hash")
        return tree
