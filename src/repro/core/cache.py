"""Chain recovery cache: reuse shared recovery prefixes.

The PUA's and MPA's recursive recovery (paper §3.2/§3.3) makes recovering
a model at chain depth *d* cost *d* base recoveries, so recovering a whole
chain — the server's U_4 "monitor every model" role, or an integrity sweep
— costs O(n²) base recoveries.  A :class:`RecoveryCache` passed to
``recover_model`` memoizes each recovered model's parameters (and the
chain's architecture reference), turning a chain sweep into O(n) work:
every base model is materialized exactly once.

The cache stores copied state dicts, so recovered models never alias each
other; entries are keyed by model id and capped by ``max_entries`` (FIFO
eviction — chain sweeps touch ids in order, so FIFO keeps the hot prefix).
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .. import obs
from ..nn.modules import Module
from .save_info import ArchitectureRef

__all__ = ["RecoveryCache"]


class RecoveryCache:
    """Memoized recovered models for chain-sweep recoveries.

    ``protect_prefix=True`` switches the at-capacity policy from
    evict-oldest to reject-new: a cold id arriving at a full cache is not
    admitted (and, crucially, its state dict is never deep-copied — the
    copy is the expensive part of a wasted insert).  Chain sweeps recover
    bases before derived models, so the oldest entries are exactly the
    prefix future recoveries need; protecting them keeps the sweep O(n)
    even when the catalog outgrows the cache.
    """

    def __init__(
        self,
        max_entries: int = 64,
        protect_prefix: bool = False,
        chunk_cache=None,
    ):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.protect_prefix = protect_prefix
        #: optional :class:`~repro.filestore.store.ChunkCache` shared with
        #: the file store: model-level and chunk-level caching then form
        #: one recovery plane that :meth:`clear`/:meth:`stats` treat as a
        #: unit (a chain sweep that misses here still hits hot chunks)
        self.chunk_cache = chunk_cache
        self._states: "OrderedDict[str, tuple[dict, ArchitectureRef, int]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: at-capacity cold inserts skipped without copying (protect_prefix)
        self.skipped_inserts = 0
        registry = obs.registry()
        self._obs_hits = registry.counter(
            "mmlib_recovery_cache_hits_total", "Recovery-cache model hits")
        self._obs_misses = registry.counter(
            "mmlib_recovery_cache_misses_total", "Recovery-cache model misses")

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._states

    def __len__(self) -> int:
        return len(self._states)

    def get(self, model_id: str) -> tuple[Module, int] | None:
        """Materialize a cached model (fresh instance, copied parameters)."""
        entry = self._states.get(model_id)
        if entry is None:
            self.misses += 1
            self._obs_misses.inc()
            return None
        self.hits += 1
        self._obs_hits.inc()
        state, architecture, depth = entry
        model = architecture.build()
        model.load_state_dict(state)
        return model, depth

    def put(self, model_id: str, model: Module, architecture: ArchitectureRef, depth: int) -> None:
        """Store a recovered model's parameters for later reuse.

        The admission decision is made *before* any copying, so an insert
        the cache rejects (``protect_prefix`` at capacity) costs nothing.
        """
        if (
            self.protect_prefix
            and model_id not in self._states
            and len(self._states) >= self.max_entries
        ):
            self.skipped_inserts += 1
            return
        state = {key: _snapshot(value) for key, value in model.state_dict().items()}
        self._states[model_id] = (state, architecture, depth)
        while len(self._states) > self.max_entries:
            self._states.popitem(last=False)

    def architecture_of(self, model_id: str) -> ArchitectureRef | None:
        entry = self._states.get(model_id)
        return entry[1] if entry else None

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._states.clear()
        self.hits = 0
        self.misses = 0
        self.skipped_inserts = 0
        if self.chunk_cache is not None:
            self.chunk_cache.clear()

    def stats(self) -> dict:
        stats = {"entries": len(self._states), "hits": self.hits, "misses": self.misses}
        if self.chunk_cache is not None:
            stats["chunk_cache"] = self.chunk_cache.stats()
        return stats


def _snapshot(value):
    """Private anti-aliasing copy of one array.

    Already-contiguous arrays are copied with a single memcpy; everything
    else is normalized to C order in the same pass, so cached states are
    always contiguous and cache hits never pay a layout conversion.
    """
    if value.flags.c_contiguous:
        return value.copy()
    return np.ascontiguousarray(value)
