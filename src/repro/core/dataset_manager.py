"""Dataset persistence for the model provenance approach.

"MMlib compresses datasets to a file, saves the file, and references it in
the provenance data" (Section 3.3).  When a dedicated external system
manages the dataset instead, only a reference string is stored.

Datasets are directories; they are zipped (deflate by default) into a
single archive whose byte size is what the MPA's storage accounting
reports.  The codec choice is ablated by ``bench_ablation_compression``.
"""

from __future__ import annotations

import io
import zipfile
from pathlib import Path

from ..filestore.store import FileStore

__all__ = ["DatasetManager", "CODEC_DEFLATE", "CODEC_STORED"]

CODEC_DEFLATE = "deflate"
CODEC_STORED = "stored"

_CODECS = {
    CODEC_DEFLATE: zipfile.ZIP_DEFLATED,
    CODEC_STORED: zipfile.ZIP_STORED,
}


class DatasetManager:
    """Compress, store, and recover training datasets."""

    def __init__(self, file_store: FileStore, codec: str = CODEC_DEFLATE):
        if codec not in _CODECS:
            raise ValueError(f"unknown codec {codec!r}; options: {sorted(_CODECS)}")
        self.file_store = file_store
        self.codec = codec

    def compress(self, dataset_dir: str | Path) -> bytes:
        """Zip a dataset directory into a single in-memory archive."""
        dataset_dir = Path(dataset_dir)
        if not dataset_dir.is_dir():
            raise NotADirectoryError(f"dataset directory not found: {dataset_dir}")
        buffer = io.BytesIO()
        with zipfile.ZipFile(buffer, "w", compression=_CODECS[self.codec]) as archive:
            for path in sorted(dataset_dir.rglob("*")):
                if path.is_file():
                    archive.write(path, path.relative_to(dataset_dir).as_posix())
        return buffer.getvalue()

    def save_dataset(self, dataset_dir: str | Path) -> str:
        """Compress and persist a dataset; returns the archive's file id."""
        return self.file_store.save_bytes(self.compress(dataset_dir), suffix=".zip")

    def recover_dataset(self, file_id: str, target_dir: str | Path) -> Path:
        """Extract a stored dataset archive into ``target_dir``."""
        target_dir = Path(target_dir)
        target_dir.mkdir(parents=True, exist_ok=True)
        data = self.file_store.recover_bytes(file_id)
        with zipfile.ZipFile(io.BytesIO(data)) as archive:
            for member in archive.namelist():
                # refuse path traversal out of the target directory
                destination = (target_dir / member).resolve()
                if not str(destination).startswith(str(target_dir.resolve())):
                    raise ValueError(f"archive member escapes target dir: {member}")
            archive.extractall(target_dir)
        return target_dir

    def dataset_size(self, file_id: str) -> int:
        """Stored (compressed) size of a saved dataset in bytes."""
        return self.file_store.size(file_id)
