"""Restorable object wrappers (paper Section 3.3, Fig. 5).

A wrapper persists a parametrized object so it can be rebuilt later.  It
records the object's class (an import path or inline source code), its
constructor arguments, arguments read from a configuration dict, and
arguments that are *references* to other objects resolved at restore time
(e.g. the optimizer's ``params`` come from the recovered model, the
dataloader's ``dataset`` from the recovered dataset).

Objects with an internal state that constructor arguments cannot recreate
(e.g. an optimizer's momentum buffers) use
:class:`StateFileRestorableObjectWrapper`, which additionally snapshots the
instance's ``state_dict()`` into a state file in the file store.
"""

from __future__ import annotations

import importlib
from typing import Any

from ..nn import serialization
from .errors import RecoveryError, SaveError
from .schema import WRAPPERS

__all__ = ["RestorableObjectWrapper", "StateFileRestorableObjectWrapper", "load_wrapper", "REF_PREFIX"]

#: Marker for init-arg values that must be resolved from restore-time refs:
#: ``{"dataset": "$ref:dataset"}`` takes ``refs["dataset"]``.
REF_PREFIX = "$ref:"


def _import_class(class_path: str):
    module_name, _, class_name = class_path.rpartition(".")
    if not module_name:
        raise RecoveryError(f"class path {class_path!r} has no module part")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, class_name)
    except AttributeError as exc:
        raise RecoveryError(f"cannot import {class_path!r}: {exc}") from exc


def _exec_code(code: str, class_name: str):
    namespace: dict[str, Any] = {}
    exec(code, namespace)  # provenance code recorded by the save service
    if class_name not in namespace:
        raise RecoveryError(f"inline code does not define {class_name!r}")
    return namespace[class_name]


class RestorableObjectWrapper:
    """Wrapper for a *stateless* parametrized object."""

    wrapper_kind = "stateless"

    def __init__(
        self,
        instance: Any = None,
        *,
        class_path: str | None = None,
        code: str | None = None,
        class_name: str | None = None,
        init_args: dict | None = None,
        config_args: dict | None = None,
        ref_args: dict | None = None,
    ):
        if class_path is None and code is None:
            raise SaveError("wrapper needs a class_path (import) or inline code")
        if code is not None and class_name is None:
            raise SaveError("inline code wrappers must name their class")
        self.instance = instance
        self.class_path = class_path
        self.code = code
        self.class_name = class_name or (class_path.rpartition(".")[2] if class_path else None)
        self.init_args = dict(init_args or {})
        self.config_args = dict(config_args or {})
        self.ref_args = dict(ref_args or {})

    # -- save ---------------------------------------------------------------

    def _payload(self, file_store) -> dict:
        return {
            "kind": self.wrapper_kind,
            "class_path": self.class_path,
            "class_name": self.class_name,
            "code": self.code,
            "init_args": self.init_args,
            "config_args": self.config_args,
            "ref_args": self.ref_args,
        }

    def save(self, collections, file_store) -> str:
        """Persist the wrapper as a document; returns the document id."""
        return collections.collection(WRAPPERS).insert_one(self._payload(file_store))

    # -- restore --------------------------------------------------------------

    def _resolve_value(self, value, refs: dict, config: dict):
        if isinstance(value, str) and value.startswith(REF_PREFIX):
            key = value[len(REF_PREFIX) :]
            if key not in refs:
                raise RecoveryError(
                    f"wrapper for {self.class_name} needs unresolved ref {key!r}; "
                    f"available: {sorted(refs)}"
                )
            return refs[key]
        return value

    def _target_class(self):
        if self.code is not None:
            return _exec_code(self.code, self.class_name)
        return _import_class(self.class_path)

    def restore_instance(self, refs: dict | None = None, config: dict | None = None):
        """Rebuild the wrapped object; stores and returns the new instance."""
        refs = refs or {}
        config = config or {}
        kwargs = {}
        for key, value in self.init_args.items():
            kwargs[key] = self._resolve_value(value, refs, config)
        for key, config_key in self.config_args.items():
            if config_key not in config:
                raise RecoveryError(
                    f"wrapper for {self.class_name} reads config key {config_key!r} "
                    "which was not provided"
                )
            kwargs[key] = config[config_key]
        for key, ref_key in self.ref_args.items():
            if ref_key not in refs:
                raise RecoveryError(
                    f"wrapper for {self.class_name} references {ref_key!r}; "
                    f"available refs: {sorted(refs)}"
                )
            kwargs[key] = refs[ref_key]
        self.instance = self._target_class()(**kwargs)
        return self.instance

    # -- load ----------------------------------------------------------------------

    @classmethod
    def _from_payload(cls, payload: dict) -> "RestorableObjectWrapper":
        wrapper = cls(
            class_path=payload.get("class_path"),
            code=payload.get("code"),
            class_name=payload.get("class_name"),
            init_args=payload.get("init_args", {}),
            config_args=payload.get("config_args", {}),
            ref_args=payload.get("ref_args", {}),
        )
        return wrapper


class StateFileRestorableObjectWrapper(RestorableObjectWrapper):
    """Wrapper for an object with internal state (e.g. an optimizer).

    On save, the instance's ``state_dict()`` is serialized into a state
    file; on restore, the rebuilt instance's ``load_state_dict`` is fed the
    recovered state.
    """

    wrapper_kind = "stateful"

    def __init__(self, *args, state_file_id: str | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.state_file_id = state_file_id
        self._state_bytes: bytes | None = None

    def snapshot_state(self) -> None:
        """Capture the instance's state *now* (call before training starts).

        The MPA must replay training from the object's pre-training state;
        snapshotting pins the bytes that ``save`` will persist even if the
        live instance keeps mutating afterwards.
        """
        if self.instance is None:
            raise SaveError(f"cannot snapshot {self.class_name}: no live instance")
        if not hasattr(self.instance, "state_dict"):
            raise SaveError(
                f"stateful wrapper target {self.class_name} has no state_dict()"
            )
        self._state_bytes = serialization.dumps(self.instance.state_dict())

    def _payload(self, file_store) -> dict:
        if self.state_file_id is None:
            if self._state_bytes is None:
                self.snapshot_state()
            self.state_file_id = file_store.save_bytes(self._state_bytes, suffix=".state")
        payload = super()._payload(file_store)
        payload["state_file_id"] = self.state_file_id
        return payload

    def restore_instance(self, refs: dict | None = None, config: dict | None = None, file_store=None):
        """Rebuild the object, then load its persisted state file."""
        instance = super().restore_instance(refs, config)
        if self.state_file_id is not None:
            if file_store is None:
                raise RecoveryError(
                    f"restoring stateful {self.class_name} requires a file store"
                )
            state = serialization.loads(file_store.recover_bytes(self.state_file_id))
            instance.load_state_dict(state)
        return instance

    @classmethod
    def _from_payload(cls, payload: dict) -> "StateFileRestorableObjectWrapper":
        wrapper = super()._from_payload(payload)
        wrapper.state_file_id = payload.get("state_file_id")
        return wrapper


_KINDS = {
    RestorableObjectWrapper.wrapper_kind: RestorableObjectWrapper,
    StateFileRestorableObjectWrapper.wrapper_kind: StateFileRestorableObjectWrapper,
}


def load_wrapper(doc_id: str, collections) -> RestorableObjectWrapper:
    """Load a wrapper document by id and materialize the right subclass."""
    payload = collections.collection(WRAPPERS).get(doc_id)
    kind = payload.get("kind", RestorableObjectWrapper.wrapper_kind)
    if kind not in _KINDS:
        raise RecoveryError(f"unknown wrapper kind {kind!r} in document {doc_id}")
    return _KINDS[kind]._from_payload(payload)
