"""Bounded-TTR delta chains: journaled chain compaction.

Derived-model approaches (PUA diffs, MPA training replays) keep storage
small by recording only what changed, but recovery cost grows linearly
with chain depth — recovering the tip of a 16-deep chain replays 16
levels.  :class:`ChainCompactor` bounds that: every ``max_depth`` levels
it *materializes* a synthetic full snapshot by replaying the chain once
and publishing the result as the model's new recovery base, in place.

Materializing in place keeps every model id and the ``base_model``
lineage untouched — recovery simply short-circuits at the new base
(``_recover_from_document`` dispatches on ``parameters_file`` before the
approach), so descendants need no rewriting and provenance queries still
see the full derivation tree.  This differs from
:meth:`~repro.core.manager.ModelManager.promote_to_snapshot`, which
severs lineage as a prelude to deleting ancestors.

The swap is journaled like the cluster rebalancer and segment
compaction: artifacts are created first (a crash before the journal
lands leaves only orphans, which fsck's orphan sweep reclaims), then a
one-file intent journal records the planned swap, then the document
update commits it atomically.  :meth:`ChainCompactor.resume_pending`
(run by fsck and by every :meth:`run`) rolls a half-done swap forward
when the document shows the new snapshot, back otherwise — recovery of
every model is bitwise identical before, during, and after a crash at
any step.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .. import obs
from .errors import MMLibError
from .schema import MODELS

__all__ = ["CompactionJournal", "ChainCompactor", "DEFAULT_MAX_DEPTH"]

#: Materialize a snapshot once a model sits this many levels above its
#: nearest recovery base (the paper's TTR experiments motivate keeping
#: replay chains short; 4 keeps worst-case recovery at ~4 delta applies).
DEFAULT_MAX_DEPTH = 4

#: Directory (under the file store's root) holding compaction journals.
COMPACTION_DIR_NAME = "chain-compaction"


class CompactionJournal:
    """One intent file per in-flight materialization, atomically written.

    The journal is the single source of truth for crash recovery: it
    exists only between "artifacts are durable" and "swap fully cleaned
    up", and records everything needed to finish either direction —
    ``{model_id, old_update_file, manifest_file, code_file}``.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    def _path(self, model_id: str) -> Path:
        return self.root / f"{model_id}.json"

    def write(self, model_id: str, payload: dict) -> None:
        """Durably publish the swap intent (atomic tmp + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(model_id)
        tmp = path.with_suffix(".json.tmp")
        data = json.dumps(dict(payload, model_id=model_id), indent=0)
        with tmp.open("w") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    def pending(self) -> list[dict]:
        """Every journaled swap that has not been discarded, oldest first."""
        if not self.root.is_dir():
            return []
        entries = []
        for path in sorted(self.root.glob("*.json")):
            try:
                entries.append(json.loads(path.read_text()))
            except (OSError, ValueError):
                continue  # a torn journal write: no intent was published
        return entries

    def discard(self, model_id: str) -> None:
        self._path(model_id).unlink(missing_ok=True)
        tmp = self._path(model_id).with_suffix(".json.tmp")
        tmp.unlink(missing_ok=True)


class ChainCompactor:
    """Rewrites deep delta chains into bounded-depth recovery chains.

    ``max_depth`` is K: any model whose distance to its nearest recovery
    base reaches K gets a materialized snapshot.  Set ``fault_hook`` to a
    :meth:`~repro.faults.FaultInjector.fail_point`-shaped callable to
    crash-test the swap protocol (ops are ``compact.artifacts``,
    ``compact.journal``, ``compact.commit``, ``compact.cleanup``,
    ``compact.discard``).
    """

    def __init__(self, service, max_depth: int = DEFAULT_MAX_DEPTH):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.service = service
        self.documents = service.documents
        self.files = service.files
        self.max_depth = int(max_depth)
        self.journal = CompactionJournal(Path(self.files.root) / COMPACTION_DIR_NAME)
        #: Optional chaos hook (``FaultInjector.fail_point`` signature).
        self.fault_hook = None
        registry = obs.registry()
        self._obs_materialized = registry.counter(
            "mmlib_compaction_materialized_total",
            "Delta-chain models rewritten into recovery bases")
        self._obs_resumed = registry.counter(
            "mmlib_compaction_resumes_total",
            "Half-done compaction swaps finished after a crash")
        self._obs_released = registry.counter(
            "mmlib_compaction_released_bytes_total",
            "Logical bytes of superseded delta payloads released")

    def _fault(self, op: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(op)

    # -- planning ----------------------------------------------------------

    def plan(self) -> list[dict]:
        """Models to materialize, in dependency order (bases first).

        Depth is the distance to the nearest recovery base — a root
        snapshot, an already-compacted delta, or an ancestor this same
        plan will materialize (the counter resets at planned nodes, so
        one pass bounds every chain without cascading rewrites).
        """
        docs = {d["_id"]: d for d in self.documents.collection(MODELS).find()}
        depths: dict[str, int] = {}
        planned: list[dict] = []
        planned_ids: set[str] = set()

        def depth_of(model_id: str, trail: set[str]) -> int:
            if model_id in depths:
                return depths[model_id]
            if model_id in trail:
                raise MMLibError(f"cycle in base-model chain at {model_id!r}")
            document = docs.get(model_id)
            if document is None or document.get("parameters_file"):
                value = 0  # a recovery base (or a dangling ref fsck reports)
            else:
                trail.add(model_id)
                value = depth_of(document.get("base_model"), trail) + 1
                trail.discard(model_id)
                if value >= self.max_depth and model_id not in planned_ids:
                    planned.append({"model_id": model_id, "depth": value})
                    planned_ids.add(model_id)
                if model_id in planned_ids:
                    value = 0  # descendants measure from the new base
            depths[model_id] = value
            return value

        # walk tips in sorted order for a deterministic plan; the recursion
        # appends ancestors before descendants, giving dependency order
        for model_id in sorted(docs):
            if model_id is not None:
                depth_of(model_id, set())
        return planned

    # -- materialization ---------------------------------------------------

    def _chain_architecture(self, model_id: str) -> dict:
        """The chain's architecture payload with its code bytes copied.

        Copying the code blob (like ``promote_to_snapshot``) keeps the
        materialized document self-contained: retention deleting the
        chain prefix later cannot orphan its architecture.
        """
        for ancestor in self.service.base_chain(model_id):
            document = self.documents.collection(MODELS).get(ancestor)
            if document.get("architecture"):
                architecture = dict(document["architecture"])
                code_bytes = self.files.recover_bytes(architecture["code_file_id"])
                architecture["code_file_id"] = self.files.save_bytes(
                    code_bytes, suffix=".py")
                return architecture
        raise MMLibError(
            f"no architecture found along the chain of {model_id!r}; "
            "cannot materialize a snapshot"
        )

    def compact_model(self, model_id: str, cache=None, depth: int | None = None) -> dict:
        """Materialize one model as its chain's new recovery base.

        Returns ``{"model_id", "released_bytes"}``.  The model's document
        keeps its id, approach, lineage, layer hashes, and Merkle root;
        it gains ``parameters_file`` + ``architecture`` and loses its
        delta payload.  No-op if the model is already a recovery base.
        """
        models = self.documents.collection(MODELS)
        document = models.get(model_id)
        if document.get("parameters_file"):
            return {"model_id": model_id, "released_bytes": 0}

        with self._obs_tracer_span(model_id):
            # replay the chain once; verify=True proves the replayed state
            # matches the stored Merkle root *before* anything is published
            recovered = self.service.recover_model(model_id, verify=True, cache=cache)

            self._fault("compact.artifacts")
            architecture = self._chain_architecture(model_id)
            parameters_file, layer_hashes, root = self.service._save_parameters(
                recovered.model
            )
            stored_root = document.get("merkle_root")
            if stored_root is not None and root != stored_root:
                raise MMLibError(
                    f"materialized snapshot of {model_id} hashes to {root}, "
                    f"document records {stored_root}; refusing to publish"
                )

            old_update_file = document.get("update_file")
            self._fault("compact.journal")
            self.journal.write(model_id, {
                "old_update_file": old_update_file,
                "manifest_file": parameters_file,
                "code_file": architecture["code_file_id"],
            })

            released = 0
            if old_update_file and self.files.exists(old_update_file):
                released = self.files.size(old_update_file)

            document["parameters_file"] = parameters_file
            document["architecture"] = architecture
            document["layer_hashes"] = [[k, v] for k, v in layer_hashes.items()]
            if stored_root is None:
                document["merkle_root"] = root
            document["compacted"] = {"from_depth": depth or recovered.recovery_depth}
            document.pop("update_file", None)
            document.pop("updated_layers", None)
            self._fault("compact.commit")
            models.replace_one(model_id, document)  # <-- the commit point

            self._fault("compact.cleanup")
            if old_update_file:
                self.files.delete(old_update_file)
            self._fault("compact.discard")
            self.journal.discard(model_id)

        self._obs_materialized.inc()
        self._obs_released.inc(released)
        obs.events().emit(
            "chain_compacted", model_id=model_id,
            depth=depth or recovered.recovery_depth, released_bytes=released)
        return {"model_id": model_id, "released_bytes": released}

    def _obs_tracer_span(self, model_id: str):
        return obs.tracer().span("compaction.materialize", model_id=model_id)

    def run(self, dry_run: bool = False) -> dict:
        """One full pass: finish pending swaps, then bound every chain.

        With ``dry_run`` the plan is computed and returned untouched.
        A shared recovery cache makes a K-spaced plan over one chain
        O(chain) total replays instead of O(chain · K).
        """
        from .cache import RecoveryCache

        resumed = self.resume_pending(self.documents, self.files, repair=not dry_run)
        planned = self.plan()
        report = {
            "max_depth": self.max_depth,
            "planned": planned,
            "resumed": resumed,
            "materialized": [],
            "released_bytes": 0,
            "dry_run": dry_run,
        }
        if dry_run:
            return report
        cache = RecoveryCache(max_entries=64, protect_prefix=True)
        for entry in planned:
            outcome = self.compact_model(
                entry["model_id"], cache=cache, depth=entry["depth"])
            report["materialized"].append(outcome)
            report["released_bytes"] += outcome["released_bytes"]
        return report

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def resume_pending(cls, documents, files, repair: bool = True) -> list[dict]:
        """Finish (or report) every half-done swap the journal records.

        The document is the commit point: if it already references the
        journaled snapshot manifest the swap rolls *forward* (drop the
        superseded delta payload); otherwise it rolls *back* (drop the
        never-published artifacts).  Both directions are idempotent, so
        crashing during resume and resuming again is safe.
        """
        journal = CompactionJournal(Path(files.root) / COMPACTION_DIR_NAME)
        actions: list[dict] = []
        models = documents.collection(MODELS)
        for entry in journal.pending():
            model_id = entry.get("model_id")
            manifest_file = entry.get("manifest_file")
            try:
                document = models.get(model_id)
            except KeyError:
                document = {}
            committed = (
                manifest_file is not None
                and document.get("parameters_file") == manifest_file
            )
            action = {
                "model_id": model_id,
                "action": "rolled_forward" if committed else "rolled_back",
                "repaired": repair,
            }
            if repair:
                if committed:
                    old = entry.get("old_update_file")
                    if old:
                        files.delete(old)
                else:
                    if manifest_file:
                        files.delete(manifest_file)  # releases its chunk refs
                    if entry.get("code_file"):
                        files.delete(entry["code_file"])
                journal.discard(model_id)
                obs.registry().counter(
                    "mmlib_compaction_resumes_total",
                    "Half-done compaction swaps finished after a crash").inc()
                obs.events().emit(
                    "compaction_resumed", model_id=model_id,
                    action=action["action"])
            actions.append(action)
        return actions
