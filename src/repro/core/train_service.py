"""Training services: recordable, replayable training logic (Section 3.3).

A :class:`TrainService` defines how a model is trained in its ``train``
method and references every relevant object through restorable wrappers.
The MPA serializes a train service (class reference + wrapper documents +
hyper-parameters) and later rebuilds it to reproduce the training that
created a model.

:class:`ImageClassificationTrainService` is the concrete service used by
the evaluation — the equivalent of the paper's ``ImageNetTrainService``
(Fig. 5): a stateless dataloader wrapper, a stateful optimizer wrapper, and
a train loop over cross-entropy batches.
"""

from __future__ import annotations

import importlib
from ..nn import functional as F
from ..nn.data import DataLoader
from ..nn.modules import Module
from .errors import RecoveryError, SaveError
from .schema import TRAIN_INFO
from .wrappers import (
    RestorableObjectWrapper,
    StateFileRestorableObjectWrapper,
    load_wrapper,
)

__all__ = ["TrainService", "ImageClassificationTrainService", "load_train_service"]


class TrainService:
    """Interface for recordable training logic."""

    def train(
        self,
        model: Module,
        number_epochs: int = 1,
        number_batches: int | None = None,
    ) -> Module:
        """Train ``model`` in place and return it."""
        raise NotImplementedError

    def save(self, collections, file_store) -> str:
        """Persist this service; returns its train-info document id."""
        raise NotImplementedError

    @classmethod
    def restore(cls, payload: dict, collections, file_store, refs: dict) -> "TrainService":
        """Rebuild a service from its persisted payload."""
        raise NotImplementedError


def _class_path(obj) -> str:
    cls = type(obj) if not isinstance(obj, type) else obj
    return f"{cls.__module__}.{cls.__qualname__}"


def load_train_service(doc_id: str, collections, file_store, refs: dict) -> TrainService:
    """Load any persisted train service by its train-info document id."""
    payload = collections.collection(TRAIN_INFO).get(doc_id)
    class_path = payload["service_class"]
    module_name, _, class_name = class_path.rpartition(".")
    module = importlib.import_module(module_name)
    try:
        service_cls = getattr(module, class_name)
    except AttributeError as exc:
        raise RecoveryError(f"cannot import train service {class_path!r}") from exc
    if not issubclass(service_cls, TrainService):
        raise RecoveryError(f"{class_path!r} is not a TrainService")
    return service_cls.restore(payload, collections, file_store, refs)


class ImageClassificationTrainService(TrainService):
    """Supervised image-classification training with SGD-style updates.

    Construct either directly from live objects (node side, about to
    train) or via :meth:`restore` (server side, reproducing training).

    ``freeze_mode="partial"`` reproduces the paper's *partially updated
    model version* workflow: every layer except the final classifier is
    frozen and kept in eval mode so only classifier parameters change.
    """

    def __init__(
        self,
        dataset_wrapper: RestorableObjectWrapper,
        optimizer_wrapper: StateFileRestorableObjectWrapper,
        batch_size: int = 32,
        shuffle: bool = True,
        freeze_mode: str = "none",
        loss_fn: str = "cross_entropy",
        scheduler_wrapper: StateFileRestorableObjectWrapper | None = None,
    ):
        if freeze_mode not in ("none", "partial"):
            raise SaveError(f"freeze_mode must be 'none' or 'partial', got {freeze_mode!r}")
        if not hasattr(F, loss_fn):
            raise SaveError(f"unknown loss function {loss_fn!r}")
        self.dataset_wrapper = dataset_wrapper
        self.optimizer_wrapper = optimizer_wrapper
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.freeze_mode = freeze_mode
        self.loss_fn = loss_fn
        # optional learning-rate scheduler: another stateful wrapped object
        # (paper Fig. 5 shows multiple wrappers per train service)
        self.scheduler_wrapper = scheduler_wrapper

    # -- training -----------------------------------------------------------

    def _prepare_model(self, model: Module) -> None:
        model.train()
        if self.freeze_mode == "partial":
            from ..nn.models import freeze_for_partial_update

            freeze_for_partial_update(model)
            # keep frozen layers' BN statistics fixed: eval everywhere,
            # train mode only on the classifier being updated
            model.eval()
            model.final_classifier().train()

    def train(
        self,
        model: Module,
        number_epochs: int = 1,
        number_batches: int | None = None,
    ) -> Module:
        """Run the training loop (epochs x batches) over the wrapped objects."""
        if self.dataset_wrapper.instance is None:
            raise RecoveryError("dataset wrapper has no live instance; restore it first")
        dataset = self.dataset_wrapper.instance
        self._prepare_model(model)
        if self.optimizer_wrapper.instance is None:
            raise RecoveryError("optimizer wrapper has no live instance; restore it first")
        optimizer = self.optimizer_wrapper.instance
        loss_fn = getattr(F, self.loss_fn)
        loader = DataLoader(
            dataset, batch_size=self.batch_size, shuffle=self.shuffle, drop_last=False
        )
        scheduler = (
            self.scheduler_wrapper.instance if self.scheduler_wrapper is not None else None
        )
        for _ in range(number_epochs):
            for batch_index, (images, labels) in enumerate(loader):
                if number_batches is not None and batch_index >= number_batches:
                    break
                optimizer.zero_grad()
                output = model(images)
                logits = output[0] if isinstance(output, tuple) else output
                loss = loss_fn(logits, labels)
                loss.backward()
                optimizer.step()
            if scheduler is not None:
                scheduler.step()
        return model

    # -- persistence --------------------------------------------------------------

    def save(self, collections, file_store) -> str:
        """Persist the service + wrapper documents; returns the train-info id."""
        dataset_doc = self.dataset_wrapper.save(collections, file_store)
        optimizer_doc = self.optimizer_wrapper.save(collections, file_store)
        payload = {
            "service_class": _class_path(self),
            "dataset_wrapper": dataset_doc,
            "optimizer_wrapper": optimizer_doc,
            "batch_size": self.batch_size,
            "shuffle": self.shuffle,
            "freeze_mode": self.freeze_mode,
            "loss_fn": self.loss_fn,
        }
        if self.scheduler_wrapper is not None:
            payload["scheduler_wrapper"] = self.scheduler_wrapper.save(
                collections, file_store
            )
        return collections.collection(TRAIN_INFO).insert_one(payload)

    @classmethod
    def restore(
        cls, payload: dict, collections, file_store, refs: dict
    ) -> "ImageClassificationTrainService":
        """Rebuild the service and its wrapped objects.

        ``refs`` must provide ``dataset_root`` (where the recovered dataset
        was extracted) and ``model`` (the recovered base model whose
        parameters the optimizer trains).
        """
        dataset_wrapper = load_wrapper(payload["dataset_wrapper"], collections)
        optimizer_wrapper = load_wrapper(payload["optimizer_wrapper"], collections)
        dataset = dataset_wrapper.restore_instance(refs=refs)
        model = refs.get("model")
        if model is None:
            raise RecoveryError("train-service restore requires refs['model']")
        optimizer_refs = dict(refs)
        optimizer_refs["params"] = list(model.parameters())
        optimizer = optimizer_wrapper.restore_instance(
            refs=optimizer_refs, file_store=file_store
        )
        scheduler_wrapper = None
        if payload.get("scheduler_wrapper"):
            scheduler_wrapper = load_wrapper(payload["scheduler_wrapper"], collections)
            scheduler_refs = dict(refs)
            scheduler_refs["optimizer"] = optimizer
            scheduler_wrapper.restore_instance(
                refs=scheduler_refs, file_store=file_store
            )
        return cls(
            dataset_wrapper=dataset_wrapper,
            optimizer_wrapper=optimizer_wrapper,
            batch_size=payload["batch_size"],
            shuffle=payload["shuffle"],
            freeze_mode=payload.get("freeze_mode", "none"),
            loss_fn=payload.get("loss_fn", "cross_entropy"),
            scheduler_wrapper=scheduler_wrapper,
        )
