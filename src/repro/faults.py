"""Deterministic fault injection for chaos-testing the storage stack.

The evaluation cluster (§4.1) is reliable; the motivating fleet (§1) is
not.  :class:`FaultInjector` simulates the unreliable world inside the
reliable one: the file store and the document store call its hooks at
every operation boundary, and the injector — driven by a seeded PRNG, so
every chaos run is reproducible — decides whether that operation suffers
a transient I/O error, a torn (partial) write, bit-flip corruption of the
bytes read, a latency spike, a document-store outage, or a simulated
process death (:class:`CrashPoint`) at an exact operation index.

Wire-up::

    faults = FaultInjector(seed=7, error_rate=0.1, corrupt_rate=0.02)
    retry = RetryPolicy(max_attempts=6)
    files = FileStore(root, faults=faults, retry=retry)
    docs = FaultyDocumentStore(DocumentStore(), faults)
    service = BaselineSaveService(docs, files, retry=retry)

Injected failures always surface as the typed errors from
:mod:`repro.errors` — never as bare ``OSError`` — so retry policies and
tests can tell retryable from fatal.
"""

from __future__ import annotations

import random
import threading
from typing import Callable

from . import obs
from .errors import TransientStoreError

__all__ = ["CrashPoint", "FaultInjector", "FaultyDocumentStore"]


class CrashPoint(BaseException):
    """Simulated process death at an injected crash point.

    Deliberately *not* an :class:`Exception`: a killed process runs no
    ``except Exception`` cleanup, so production error handling (rollback,
    retries) must never observe this.  Only crash-point tests catch it.
    """


class FaultInjector:
    """Seeded source of storage faults, injected at operation boundaries.

    Rates are independent probabilities per operation:

    ``error_rate``
        Transient I/O errors on file/chunk operations.
    ``torn_write_rate``
        Write operations that persist a partial payload and then fail
        (the tear stays on disk as a ``*.tmp`` file).
    ``corrupt_rate``
        Read operations whose returned bytes get one byte flipped —
        in-transit corruption, healed by a re-fetch.
    ``outage_rate``
        Transient errors on document-store operations (ops named
        ``docs.*``).
    ``latency_rate`` / ``latency_s``
        Operations delayed by ``latency_s`` (via the injectable ``sleep``;
        with ``sleep=None`` spikes are only counted, keeping tests fast).

    ``crash_at``/``crash_op`` arm a one-shot :class:`CrashPoint` at the
    Nth matching operation (see :meth:`arm_crash`) for crash-point
    testing: iterate ``crash_at`` over 1..N to kill a save at every step.

    :meth:`set_down` flips a whole-member outage switch: while down,
    *every* hooked operation (file, chunk, and document alike) raises
    :class:`~repro.errors.TransientStoreError` deterministically — the
    machine is off, not flaky.  Chaos schedules use this to kill and
    restore cluster members at exact operation counts.

    ``max_consecutive_failures`` bounds how many times in a row one
    operation may fail, guaranteeing bounded retries eventually succeed
    even at high error rates.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        outage_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        sleep: Callable[[float], None] | None = None,
        crash_at: int | None = None,
        crash_op: str = "*",
        max_consecutive_failures: int | None = None,
    ):
        for name, rate in (
            ("error_rate", error_rate),
            ("torn_write_rate", torn_write_rate),
            ("corrupt_rate", corrupt_rate),
            ("outage_rate", outage_rate),
            ("latency_rate", latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be a probability, got {rate}")
        self.error_rate = error_rate
        self.torn_write_rate = torn_write_rate
        self.corrupt_rate = corrupt_rate
        self.outage_rate = outage_rate
        self.latency_rate = latency_rate
        self.latency_s = latency_s
        self.sleep = sleep
        self.max_consecutive_failures = max_consecutive_failures
        self._rng = random.Random(seed)
        # one lock around every fault decision: the parallel save/recover
        # paths hit the injector from worker threads, and an unguarded
        # shared PRNG would make "seeded" chaos runs non-reproducible
        self._lock = threading.RLock()
        self._consecutive: dict[str, int] = {}
        self.stats = {
            "ops": 0,
            "errors": 0,
            "torn_writes": 0,
            "corruptions": 0,
            "outages": 0,
            "latency_spikes": 0,
            "crashes": 0,
        }
        self.crash_at = None
        self.crash_op = "*"
        self._crash_seen = 0
        self.down = False
        self._obs_events = obs.events()
        self._obs_registry = obs.registry()
        if crash_at is not None:
            self.arm_crash(crash_at, op=crash_op)

    def set_down(self, value: bool) -> None:
        """Kill (``True``) or restore (``False``) the faulted member.

        While down every operation boundary raises the retryable
        :class:`~repro.errors.TransientStoreError` — deterministic, rate
        free — so a member wearing this injector behaves like a machine
        that lost power: writes miss it, reads fail over around it, and
        probes see it dead until the switch flips back.
        """
        with self._lock:
            was = self.down
            self.down = bool(value)
            if was != self.down:
                self._record("member_down" if self.down else "member_up", "member")

    def _record(self, kind: str, op: str) -> None:
        """Mirror one injected fault into the registry and event log."""
        self._obs_registry.counter(
            "mmlib_faults_injected_total", "Faults injected by kind",
            kind=kind).inc()
        self._obs_events.emit("fault", fault=kind, op=op)

    # -- crash points ------------------------------------------------------

    def arm_crash(self, at: int, op: str = "*") -> None:
        """Arm a one-shot crash at the ``at``-th matching op from now.

        ``op`` is ``"*"`` (any), an exact name (``"chunk.write"``), or a
        prefix ending in ``.`` (``"docs."``).  The crash fires exactly
        once and disarms itself, so post-crash repair code runs fault-free
        through the same injector.
        """
        if at < 1:
            raise ValueError("crash_at counts operations from 1")
        self.crash_at = int(at)
        self.crash_op = op
        self._crash_seen = 0

    @staticmethod
    def _matches(op: str, pattern: str) -> bool:
        if pattern == "*":
            return True
        if pattern.endswith("."):
            return op.startswith(pattern)
        return op == pattern

    # -- fault decisions ---------------------------------------------------

    def _allowed_to_fail(self, op: str) -> bool:
        if self.max_consecutive_failures is None:
            return True
        return self._consecutive.get(op, 0) < self.max_consecutive_failures

    def _register_failure(self, op: str) -> None:
        self._consecutive[op] = self._consecutive.get(op, 0) + 1

    def fail_point(self, op: str, nbytes: int = 0) -> None:
        """Operation boundary hook: may crash, delay, or raise transiently.

        ``op`` names the operation (``file.write``, ``chunk.read``,
        ``docs.insert_one``, ...); document-store ops use ``outage_rate``,
        everything else ``error_rate``.
        """
        with self._lock:
            self.stats["ops"] += 1
            if self.down:
                self.stats["outages" if op.startswith("docs.") else "errors"] += 1
                self._record("outage", op)
                raise TransientStoreError(
                    f"member is down: {op!r} is unreachable"
                )
            if self.crash_at is not None and self._matches(op, self.crash_op):
                self._crash_seen += 1
                if self._crash_seen >= self.crash_at:
                    self.crash_at = None  # one-shot: repair code must run clean
                    self.stats["crashes"] += 1
                    self._record("crash", op)
                    raise CrashPoint(
                        f"injected crash at {op!r} (op #{self.stats['ops']})"
                    )
            if self.latency_rate and self._rng.random() < self.latency_rate:
                self.stats["latency_spikes"] += 1
                self._record("latency_spike", op)
                if self.sleep is not None and self.latency_s > 0:
                    self.sleep(self.latency_s)
            is_docs = op.startswith("docs.")
            rate = self.outage_rate if is_docs else self.error_rate
            if rate and self._rng.random() < rate and self._allowed_to_fail(op):
                self._register_failure(op)
                if is_docs:
                    self.stats["outages"] += 1
                    self._record("outage", op)
                    raise TransientStoreError(
                        f"injected document-store outage during {op!r}"
                    )
                self.stats["errors"] += 1
                self._record("error", op)
                raise TransientStoreError(f"injected transient I/O error during {op!r}")
            self._consecutive[op] = 0

    def torn_write(self, op: str) -> bool:
        """Should this write persist only a partial payload and fail?"""
        with self._lock:
            if self.torn_write_rate and self._rng.random() < self.torn_write_rate:
                if self._allowed_to_fail(op):
                    self._register_failure(op)
                    self.stats["torn_writes"] += 1
                    self._record("torn_write", op)
                    return True
            return False

    def corrupt(self, op: str, data: bytes) -> bytes:
        """Maybe flip one byte of ``data`` (in-transit read corruption)."""
        with self._lock:
            if not data or not self.corrupt_rate:
                return data
            if self._rng.random() < self.corrupt_rate:
                self.stats["corruptions"] += 1
                self._record("corruption", op)
                index = self._rng.randrange(len(data))
                corrupted = bytearray(data)
                corrupted[index] ^= 0xFF
                return bytes(corrupted)
            return data


class _FaultyCollection:
    """Collection proxy injecting a fault point before each operation."""

    def __init__(self, collection, faults: FaultInjector):
        self._collection = collection
        self._faults = faults

    def __getattr__(self, name: str):
        attr = getattr(self._collection, name)
        if not callable(attr) or name.startswith("_"):
            return attr
        faults = self._faults

        def wrapped(*args, **kwargs):
            faults.fail_point(f"docs.{name}")
            return attr(*args, **kwargs)

        wrapped.__name__ = name
        return wrapped


class FaultyDocumentStore:
    """Document-store wrapper whose collection ops hit the injector.

    Drop-in for anything exposing ``collection(name)`` — pairs with a
    retry-carrying save service to exercise outage/retry paths without a
    real network.
    """

    def __init__(self, store, faults: FaultInjector):
        self._store = store
        self.faults = faults

    def collection(self, name: str) -> _FaultyCollection:
        return _FaultyCollection(self._store.collection(name), self.faults)

    def __getitem__(self, name: str) -> _FaultyCollection:
        return self.collection(name)

    def __getattr__(self, name: str):
        return getattr(self._store, name)
