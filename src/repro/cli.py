"""``mmlib`` command-line interface.

Operates a model-management deployment from the shell: inspect the
catalog, walk lineage, recover models to state files, delete and garbage
collect, probe reproducibility, and dump the environment snapshot.

Every command takes ``--docs`` and ``--files`` (the shared document and
file store directories).  Examples::

    mmlib --docs db --files blobs list
    mmlib --docs db --files blobs inspect model-0123…
    mmlib --docs db --files blobs lineage model-0123…
    mmlib --docs db --files blobs recover model-0123… --out model.state
    mmlib --docs db --files blobs save --factory repro.nn.models:resnet18 \\
          --factory-kwargs '{"num_classes": 10, "scale": 0.25}' \\
          --state model.state --approach baseline
    mmlib --docs db --files blobs delete model-0123… --force
    mmlib --docs db --files blobs gc
    mmlib --docs db --files blobs fsck
    mmlib --docs db --files blobs compact --max-depth 4 --dry-run
    mmlib --cluster deploy heal --json
    mmlib --cluster deploy stats --prometheus
    mmlib --cluster deploy --deadline 2.5 recover model-0123… --out m.state
    mmlib --cluster deploy serve --tenants acme,globex --port 7070
    mmlib probe --factory repro.nn.models:resnet18 \\
          --factory-kwargs '{"num_classes": 10, "scale": 0.25}'
    mmlib env
    mmlib stats --prometheus --demo
    mmlib trace --demo --tree
    mmlib events --demo --kind read_repair
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser", "CliError"]


class CliError(Exception):
    """User-facing CLI failure (bad arguments, missing stores)."""


def _split_factory(spec: str):
    module_name, _, attr = spec.partition(":")
    if not module_name or not attr:
        raise CliError(f"--factory must look like 'package.module:callable', got {spec!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise CliError(f"{module_name!r} has no attribute {attr!r}") from exc


def _open_manager(args):
    from repro.core import ModelManager
    from repro.core.baseline import BaselineSaveService
    from repro.docstore import DocumentStore
    from repro.filestore import FileStore

    cluster = getattr(args, "cluster", None)
    if cluster:
        from repro.distsim.environment import SharedStores, make_service

        workdir = Path(cluster)
        shards = sorted(p for p in workdir.glob("shard-*") if p.is_dir())
        if not shards:
            raise CliError(f"no shard-* member directories under {workdir}")
        stores = SharedStores.cluster_at(
            workdir,
            shards=len(shards),
            replicas=getattr(args, "replicas", 2),
            layout=getattr(args, "layout", None),
            codec=getattr(args, "codec", None),
            self_heal=True,
        )
        return ModelManager(make_service("baseline", stores))
    if not args.docs or not args.files:
        raise CliError(
            "this command requires --docs and --files store directories "
            "(or --cluster for a sharded deployment)"
        )
    service = BaselineSaveService(
        DocumentStore(args.docs),
        FileStore(
            args.files,
            layout=getattr(args, "layout", None),
            codec=getattr(args, "codec", None),
        ),
    )
    return ModelManager(service)


def _open_shared_stores(args):
    """Build a SharedStores from --cluster or --docs/--files (for serve)."""
    import tempfile

    from repro.distsim.environment import SharedStores
    from repro.docstore import DocumentStore
    from repro.filestore import FileStore

    cluster = getattr(args, "cluster", None)
    if cluster:
        workdir = Path(cluster)
        shards = sorted(p for p in workdir.glob("shard-*") if p.is_dir())
        if not shards:
            raise CliError(f"no shard-* member directories under {workdir}")
        return SharedStores.cluster_at(
            workdir,
            shards=len(shards),
            replicas=getattr(args, "replicas", 2),
            layout=getattr(args, "layout", None),
            codec=getattr(args, "codec", None),
            self_heal=True,
        )
    if not args.docs or not args.files:
        raise CliError(
            "this command requires --docs and --files store directories "
            "(or --cluster for a sharded deployment)"
        )
    scratch = Path(tempfile.mkdtemp(prefix="mmlib-serve-scratch-"))
    return SharedStores(
        documents=DocumentStore(args.docs),
        files=FileStore(
            args.files,
            layout=getattr(args, "layout", None),
            codec=getattr(args, "codec", None),
        ),
        scratch_dir=scratch,
    )


def _service_for(args, approach: str):
    from repro.core import (
        AdaptiveSaveService,
        BaselineSaveService,
        ParameterUpdateSaveService,
        ProvenanceSaveService,
    )
    from repro.docstore import DocumentStore
    from repro.filestore import FileStore

    services = {
        "baseline": BaselineSaveService,
        "param_update": ParameterUpdateSaveService,
        "provenance": ProvenanceSaveService,
        "adaptive": AdaptiveSaveService,
    }
    if approach not in services:
        raise CliError(f"unknown approach {approach!r}; options: {sorted(services)}")
    return services[approach](
        DocumentStore(args.docs),
        FileStore(
            args.files,
            layout=getattr(args, "layout", None),
            codec=getattr(args, "codec", None),
        ),
    )


# ---------------------------------------------------------------------------
# commands
# ---------------------------------------------------------------------------


def cmd_list(args) -> int:
    """List the catalog, optionally filtered by use case / approach."""
    manager = _open_manager(args)
    query = {}
    if args.use_case:
        query["use_case"] = args.use_case
    if args.approach:
        query["approach"] = args.approach
    records = manager.list_models(query or None)
    if not records:
        print("no models saved")
        return 0
    print(f"{'model id':<40} {'approach':<13} {'use case':<10} {'base':<10} derived")
    for record in records:
        base = (record.base_model_id or "-")[:10]
        print(
            f"{record.model_id:<40} {record.approach:<13} "
            f"{(record.use_case or '-'):<10} {base:<10} {len(record.derived_model_ids)}"
        )
    return 0


def cmd_inspect(args) -> int:
    """Print one model's metadata and storage breakdown."""
    manager = _open_manager(args)
    record = manager.get(args.model_id)
    breakdown = manager.service.model_save_size(args.model_id)
    print(f"model:     {record.model_id}")
    print(f"approach:  {record.approach}")
    print(f"use case:  {record.use_case or '-'}")
    print(f"base:      {record.base_model_id or '- (root model)'}")
    print(f"derived:   {len(record.derived_model_ids)} model(s)")
    print(f"storage:   {breakdown.total:,} bytes "
          f"(documents {breakdown.documents:,} + files {breakdown.file_bytes:,})")
    for role, size in sorted(breakdown.files.items()):
        print(f"  {role:<12} {size:,} bytes")
    return 0


def cmd_lineage(args) -> int:
    """Print the recovery chain from a model up to its root."""
    manager = _open_manager(args)
    chain = manager.lineage(args.model_id)
    print("recovery chain (model -> root):")
    for depth, record in enumerate(chain):
        print(f"  {'  ' * depth}{record.model_id} [{record.approach}] {record.use_case or '-'}")
    return 0


def cmd_tree(args) -> int:
    """Print the derivation tree rooted at a model."""
    manager = _open_manager(args)
    print(manager.lineage_tree(args.model_id))
    return 0


def cmd_storage(args) -> int:
    """Print per-model and total storage consumption."""
    manager = _open_manager(args)
    report = manager.storage_report()
    total = 0
    for model_id, breakdown in report.items():
        total += breakdown.total
        print(f"{model_id:<40} {breakdown.approach:<13} {breakdown.total:>14,} bytes")
    print(f"{'TOTAL':<54} {total:>14,} bytes over {len(report)} model(s)")
    return 0


def cmd_recover(args) -> int:
    """Recover a model and write its parameters to a state file."""
    from repro.nn import serialization

    manager = _open_manager(args)
    recovered = manager.recover(
        args.model_id, check_env=args.check_env, verify=not args.no_verify
    )
    out = Path(args.out)
    serialization.save(recovered.model.state_dict(), out)
    print(
        f"recovered {recovered.model_id} "
        f"(approach={recovered.approach}, depth={recovered.recovery_depth}, "
        f"verified={recovered.verified}) -> {out}"
    )
    for phase, seconds in recovered.timings.items():
        print(f"  {phase:<10} {seconds * 1e3:8.1f} ms")
    return 0


def cmd_save(args) -> int:
    """Save a model snapshot built by a factory (optionally from a state file)."""
    from repro.core import ArchitectureRef, ModelSaveInfo
    from repro.nn import serialization

    factory = _split_factory(args.factory)
    kwargs = json.loads(args.factory_kwargs) if args.factory_kwargs else {}
    model = factory(**kwargs)
    if args.state:
        model.load_state_dict(serialization.load(args.state))
    module_name, _, attr = args.factory.partition(":")
    architecture = ArchitectureRef.from_factory(module_name, attr, kwargs)
    service = _service_for(args, args.approach)
    model_id = service.save_model(
        ModelSaveInfo(
            model=model,
            architecture=architecture,
            base_model_id=args.base,
            use_case=args.use_case,
        )
    )
    print(model_id)
    return 0


def cmd_delete(args) -> int:
    """Delete a model and the documents/files only it references."""
    manager = _open_manager(args)
    manager.delete_model(args.model_id, force=args.force)
    print(f"deleted {args.model_id}")
    return 0


def cmd_verify(args) -> int:
    """Recover and checksum-verify every model in the catalog."""
    manager = _open_manager(args)
    results = manager.verify_catalog(use_cache=not args.no_cache)
    failures = [mid for mid, ok in results.items() if ok is False]
    for model_id, ok in results.items():
        status = {True: "verified", None: "no checksums", False: "FAILED"}[ok]
        print(f"{model_id:<40} {status}")
    print(f"{len(results)} model(s) checked, {len(failures)} failure(s)")
    return 1 if failures else 0


def cmd_squash(args) -> int:
    """Promote a model to a snapshot; optionally drop exclusive ancestors."""
    manager = _open_manager(args)
    if args.promote_only:
        manager.promote_to_snapshot(args.model_id)
        print(f"promoted {args.model_id} to a self-contained snapshot")
        return 0
    deleted = manager.squash_chain(args.model_id)
    print(
        f"promoted {args.model_id} and deleted {deleted} exclusive ancestor(s)"
    )
    return 0


def cmd_gc(args) -> int:
    """Remove files in the blob store that no document references."""
    manager = _open_manager(args)
    stats = manager.garbage_collect()
    print(f"removed {stats['files_removed']} orphaned file(s), "
          f"freed {stats['bytes_freed']:,} bytes")
    return 0


def cmd_fsck(args) -> int:
    """Verify documents/files/chunks/refcounts; repair what is safe."""
    manager = _open_manager(args)
    report = manager.fsck(
        repair=not args.no_repair, verify_chunks=not args.no_verify_chunks
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 1 if report.unrepaired else 0
    for issue in report.issues:
        status = "repaired" if issue.repaired else "UNREPAIRED"
        print(f"[{status}] {issue.kind}: {issue.detail}")
    print(report.summary())
    return 1 if report.unrepaired else 0


def cmd_heal(args) -> int:
    """Drain handoff hints and run a full anti-entropy sweep, now."""
    manager = _open_manager(args)
    report = manager.heal(repair=not args.no_repair, deep=not args.shallow)
    if not report.get("cluster"):
        print("not a clustered deployment: nothing to heal", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0 if report["converged"] else 1
    hints = report.get("hints")
    if hints:
        print(
            f"hints: {hints['pending_before']} pending -> "
            f"{hints['pending_after']} ({hints['delivered']} delivered, "
            f"{hints['stale']} stale, {hints['failures']} failures)"
        )
    else:
        print("hints: none pending")
    sweep = report["anti_entropy"]
    print(
        f"anti-entropy: {sweep['scanned']} keys scanned, "
        f"{sweep['repaired']} repaired, {sweep['deferred']} deferred, "
        f"{sweep['unrepairable']} unrepairable, backlog {sweep['backlog']}"
    )
    unhealthy = sorted(
        name for name, snap in report.get("health", {}).items()
        if snap["state"] != "healthy"
    )
    if unhealthy:
        print(f"unhealthy members: {', '.join(unhealthy)}")
    print("converged" if report["converged"] else "NOT converged")
    return 0 if report["converged"] else 1


def cmd_compact(args) -> int:
    """Bound delta-chain recovery depth by materializing snapshots."""
    manager = _open_manager(args)
    report = manager.compact(max_depth=args.max_depth, dry_run=args.dry_run)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    for action in report["resumed"]:
        print(
            f"resumed: {action['model_id']} "
            f"({action['action'].replace('_', ' ')})"
        )
    if args.dry_run:
        if not report["planned"]:
            print(f"all chains within depth {report['max_depth']}; nothing to do")
            return 0
        for entry in report["planned"]:
            print(f"would materialize {entry['model_id']} (depth {entry['depth']})")
        return 0
    for outcome in report["materialized"]:
        print(
            f"materialized {outcome['model_id']} "
            f"(released {outcome['released_bytes']:,} bytes)"
        )
    print(
        f"compacted {len(report['materialized'])} model(s) at max depth "
        f"{report['max_depth']}, released {report['released_bytes']:,} bytes"
    )
    return 0


def cmd_probe(args) -> int:
    """Probe a model's training reproducibility (optionally save/compare)."""
    from repro.core import ProbeSummary, probe_reproducibility, probe_training
    from repro.nn import manual_seed, randn, rng

    factory = _split_factory(args.factory)
    kwargs = json.loads(args.factory_kwargs) if args.factory_kwargs else {}
    manual_seed(args.seed)
    model = factory(**kwargs)
    images = randn(args.batch_size, 3, args.image_size, args.image_size)
    labels = np.arange(args.batch_size, dtype=np.int64) % 2

    if args.compare:
        with rng.deterministic_mode(True):
            with rng.fork_rng(args.seed):
                summary = probe_training(model, images, labels)
        reference = ProbeSummary.load(args.compare)
        comparison = reference.compare(summary)
        print(f"reproducible vs {args.compare}: {comparison.reproducible}")
        if not comparison.reproducible:
            print(f"first divergence: {comparison.first_divergence}")
            return 1
        return 0

    result = probe_reproducibility(model, images, labels, seed=args.seed, training=True)
    print(f"training reproducible: {result.reproducible} "
          f"({result.record_count} records)")
    if not result.reproducible:
        print(f"first divergence: {result.first_divergence}")
    if args.save:
        with rng.deterministic_mode(True):
            with rng.fork_rng(args.seed):
                probe_training(model, images, labels).save(args.save)
        print(f"probe summary written to {args.save}")
    return 0 if result.reproducible else 1


def cmd_serve(args) -> int:
    """Run the multi-tenant serving gateway over a deployment."""
    from repro.gateway import (
        GatewayServer,
        IdleMaintenance,
        TenantQuota,
        TenantRegistry,
    )

    tenants = [name.strip() for name in args.tenants.split(",") if name.strip()]
    if not tenants:
        raise CliError("--tenants needs at least one tenant name")
    quota = TenantQuota(
        requests_per_s=args.requests_per_s,
        bytes_per_s=args.bytes_per_s,
        burst_requests=args.burst_requests,
        burst_bytes=args.burst_bytes,
        max_inflight=args.max_inflight,
        max_concurrency=args.max_concurrency,
    )
    stores = _open_shared_stores(args)
    registry = TenantRegistry(
        stores, {name: quota for name in tenants}, approach=args.approach
    )
    maintenance = None
    if not args.no_maintenance:
        maintenance = IdleMaintenance(registry, max_depth=args.compact_depth)
    server = GatewayServer(
        registry,
        host=args.host,
        port=args.port,
        workers=args.workers,
        maintenance=maintenance,
    )
    server.start()
    try:
        print(
            f"mmlib gateway serving on {server.host}:{server.port} "
            f"(tenants: {', '.join(tenants)}, approach: {args.approach}, "
            f"workers: {args.workers})",
            flush=True,
        )
        import time

        if args.serve_seconds is not None:
            time.sleep(args.serve_seconds)
        else:
            try:
                while True:
                    time.sleep(1.0)
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def cmd_env(args) -> int:
    """Print, lock, or check the current environment snapshot."""
    from repro.core import collect_environment
    from repro.core.environment import check_lockfile, write_lockfile

    if args.check:
        from repro.core import EnvironmentMismatchError

        try:
            check_lockfile(args.check)
        except EnvironmentMismatchError as exc:
            print(f"environment drift detected: {exc}", file=sys.stderr)
            return 1
        print(f"environment matches lockfile {args.check}")
        return 0
    if args.lock:
        write_lockfile(args.lock)
        print(f"environment lockfile written to {args.lock}")
        return 0
    info = collect_environment()
    payload = info.to_dict()
    if not args.full:
        payload["libraries"] = f"<{len(payload['libraries'])} packages>"
    print(json.dumps(payload, indent=2, default=str))
    return 0


def _run_obs_demo() -> None:
    """Exercise a clustered save/recover so the observability plane has
    real traffic to show: three shards behind a simulated link, a chunk
    cache, and a chain prefetcher — one recover produces a trace tree
    spanning service → prefetcher → sharded store → member → network."""
    import tempfile

    from repro.core import ModelSaveInfo
    from repro.core.save_info import ArchitectureRef
    from repro.distsim.environment import SharedStores, make_service
    from repro.filestore.network import NetworkModel
    from repro.nn.models import create_model

    with tempfile.TemporaryDirectory(prefix="mmlib-obs-demo-") as workdir:
        stores = SharedStores.cluster_at(
            workdir,
            shards=3,
            replicas=2,
            network=NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=1e-4),
            workers=2,
            chunk_cache_bytes=8 << 20,
        )
        service = make_service("param_update", stores, prefetch_workers=2)
        model = create_model("mobilenetv2", num_classes=10, scale=0.25, seed=0)
        arch = ArchitectureRef.from_factory(
            "repro.nn.models", "create_model",
            {"name": "mobilenetv2", "num_classes": 10, "scale": 0.25},
        )
        base_id = service.save_model(ModelSaveInfo(model, arch, use_case="demo"))
        derived_id = service.save_model(
            ModelSaveInfo(model, arch, base_model_id=base_id, use_case="demo")
        )
        service.recover_model(derived_id)
        if service.prefetcher is not None:
            service.prefetcher.close()


def cmd_stats(args) -> int:
    """Dump the process-wide metrics registry (JSON or Prometheus text)."""
    from repro import obs

    obs.preregister_default_families()
    if args.demo:
        _run_obs_demo()
    opened = (args.docs and args.files) or getattr(args, "cluster", None)
    if opened and not args.prometheus:
        # opening the stores folds their per-component views (segment
        # layout, cluster health, pending hints) into the snapshot
        manager = _open_manager(args)
        print(json.dumps(manager.stats(), indent=2, sort_keys=True))
        return 0
    registry = obs.registry()
    if args.prometheus:
        if opened:
            # opening the deployment primes its gauges (member health,
            # pending hints, segment occupancy) into the registry
            _open_manager(args).stats()
        sys.stdout.write(registry.to_prometheus())
    else:
        print(json.dumps(registry.snapshot(), indent=2, sort_keys=True))
    return 0


def cmd_trace(args) -> int:
    """Dump recorded trace spans (JSON-lines, or nested trees)."""
    from repro import obs

    if args.demo:
        _run_obs_demo()
    tracer = obs.tracer()
    if args.tree:
        trees = [tracer.tree(trace_id) for trace_id in tracer.trace_ids()]
        if args.last:
            trees = trees[-args.last:]
        print(json.dumps(trees, indent=2))
        return 0
    output = tracer.to_jsonl(last=args.last or None)
    if output:
        print(output)
    elif not args.demo:
        print(
            "no spans recorded in this process (tracing is in-process; "
            "try --demo)",
            file=sys.stderr,
        )
    return 0


def cmd_events(args) -> int:
    """Dump the structured event log (JSON-lines)."""
    from repro import obs

    if args.demo:
        _run_obs_demo()
    log = obs.events()
    events = log.events(kind=args.kind or None, last=args.last or None)
    for entry in events:
        print(json.dumps(entry.to_dict(), sort_keys=True))
    return 0


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``mmlib`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="mmlib", description="MMlib model management (EDBT 2022 reproduction)"
    )
    parser.add_argument("--docs", help="document store directory")
    parser.add_argument("--files", help="file store directory")
    parser.add_argument(
        "--cluster",
        help="clustered deployment directory (as laid out by "
             "SharedStores.cluster_at: shard-*/ members plus cluster-meta/); "
             "replaces --docs/--files",
    )
    parser.add_argument(
        "--replicas", type=int, default=2,
        help="replica count when opening a --cluster deployment (default 2)",
    )
    parser.add_argument(
        "--layout", choices=["files", "segments"], default=None,
        help="chunk layout when opening the file store (default: "
             "auto-detect on disk, else segments)",
    )
    parser.add_argument(
        "--codec", default=None,
        help="at-rest chunk compression codec for new writes: none | zlib "
             "| lz4 (default: $REPRO_CHUNK_CODEC, else none; reads decode "
             "by the payload frame regardless)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="run the subcommand under an ambient deadline: storage "
             "retries and quorum paths fail fast with DeadlineExceededError "
             "instead of exhausting their backoff budgets",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list saved models")
    list_parser.add_argument("--use-case")
    list_parser.add_argument("--approach")
    list_parser.set_defaults(func=cmd_list)

    inspect_parser = commands.add_parser("inspect", help="show one model's details")
    inspect_parser.add_argument("model_id")
    inspect_parser.set_defaults(func=cmd_inspect)

    lineage_parser = commands.add_parser("lineage", help="show a model's recovery chain")
    lineage_parser.add_argument("model_id")
    lineage_parser.set_defaults(func=cmd_lineage)

    tree_parser = commands.add_parser("tree", help="show the derivation tree under a model")
    tree_parser.add_argument("model_id")
    tree_parser.set_defaults(func=cmd_tree)

    storage_parser = commands.add_parser("storage", help="per-model storage report")
    storage_parser.set_defaults(func=cmd_storage)

    recover_parser = commands.add_parser("recover", help="recover a model to a state file")
    recover_parser.add_argument("model_id")
    recover_parser.add_argument("--out", required=True, help="output state-file path")
    recover_parser.add_argument("--check-env", action="store_true")
    recover_parser.add_argument("--no-verify", action="store_true")
    recover_parser.set_defaults(func=cmd_recover)

    save_parser = commands.add_parser("save", help="save a model snapshot")
    save_parser.add_argument("--factory", required=True, help="'module:callable' building the model")
    save_parser.add_argument("--factory-kwargs", help="JSON kwargs for the factory")
    save_parser.add_argument("--state", help="state file with the parameters to save")
    save_parser.add_argument("--base", help="base model id for derived models")
    save_parser.add_argument("--use-case", help="use-case tag, e.g. U_3-1-1")
    save_parser.add_argument(
        "--approach",
        default="baseline",
        help="baseline | param_update | provenance | adaptive",
    )
    save_parser.set_defaults(func=cmd_save)

    delete_parser = commands.add_parser("delete", help="delete a model and its files")
    delete_parser.add_argument("model_id")
    delete_parser.add_argument("--force", action="store_true",
                               help="delete even if derived models depend on it")
    delete_parser.set_defaults(func=cmd_delete)

    gc_parser = commands.add_parser("gc", help="remove orphaned files from the file store")
    gc_parser.set_defaults(func=cmd_gc)

    fsck_parser = commands.add_parser(
        "fsck", help="verify and repair store consistency after crashes"
    )
    fsck_parser.add_argument(
        "--no-repair", action="store_true",
        help="report violations without touching the stores",
    )
    fsck_parser.add_argument(
        "--no-verify-chunks", action="store_true",
        help="skip re-hashing chunk payloads (faster on large stores)",
    )
    fsck_parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON (exit code still 1 when unrepaired "
             "issues remain)",
    )
    fsck_parser.set_defaults(func=cmd_fsck)

    verify_parser = commands.add_parser(
        "verify", help="recover + checksum-verify every model in the catalog"
    )
    verify_parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the chain-prefix recovery cache",
    )
    verify_parser.set_defaults(func=cmd_verify)

    squash_parser = commands.add_parser(
        "squash", help="promote a model to a snapshot and drop exclusive ancestors"
    )
    squash_parser.add_argument("model_id")
    squash_parser.add_argument(
        "--promote-only", action="store_true",
        help="make the model self-contained but keep its ancestors",
    )
    squash_parser.set_defaults(func=cmd_squash)

    compact_parser = commands.add_parser(
        "compact",
        help="bound delta-chain recovery depth by materializing snapshots",
    )
    compact_parser.add_argument(
        "--max-depth", type=int, default=None,
        help="materialize a recovery base every K chain levels (default 4)",
    )
    compact_parser.add_argument(
        "--dry-run", action="store_true",
        help="print the plan without rewriting anything",
    )
    compact_parser.add_argument("--json", action="store_true",
                                help="full report as JSON")
    compact_parser.set_defaults(func=cmd_compact)

    probe_parser = commands.add_parser("probe", help="probe a model's reproducibility")
    probe_parser.add_argument("--factory", required=True)
    probe_parser.add_argument("--factory-kwargs")
    probe_parser.add_argument("--seed", type=int, default=0)
    probe_parser.add_argument("--batch-size", type=int, default=2)
    probe_parser.add_argument("--image-size", type=int, default=32)
    probe_parser.add_argument("--save", help="write the probe summary JSON here")
    probe_parser.add_argument("--compare", help="compare against a saved summary JSON")
    probe_parser.set_defaults(func=cmd_probe)

    heal_parser = commands.add_parser(
        "heal",
        help="drain handoff hints and anti-entropy repair a --cluster "
             "deployment",
    )
    heal_parser.add_argument(
        "--no-repair", action="store_true",
        help="audit only: report divergence without writing",
    )
    heal_parser.add_argument(
        "--shallow", action="store_true",
        help="skip reading/verifying every replica; only restore missing "
             "copies",
    )
    heal_parser.add_argument("--json", action="store_true",
                             help="full report as JSON")
    heal_parser.set_defaults(func=cmd_heal)

    stats_parser = commands.add_parser(
        "stats", help="dump the process-wide metrics registry"
    )
    stats_parser.add_argument(
        "--prometheus", action="store_true",
        help="Prometheus text exposition instead of JSON",
    )
    stats_parser.add_argument(
        "--demo", action="store_true",
        help="run a clustered save/recover first so there is traffic to show",
    )
    stats_parser.set_defaults(func=cmd_stats)

    trace_parser = commands.add_parser(
        "trace", help="dump recorded save/recover trace spans"
    )
    trace_parser.add_argument(
        "--last", type=int, default=0, help="only the most recent N spans/trees"
    )
    trace_parser.add_argument(
        "--tree", action="store_true", help="nested trace trees instead of JSON-lines"
    )
    trace_parser.add_argument(
        "--demo", action="store_true",
        help="run a clustered save/recover first so there are spans to show",
    )
    trace_parser.set_defaults(func=cmd_trace)

    events_parser = commands.add_parser(
        "events", help="dump the structured event log"
    )
    events_parser.add_argument("--kind", help="only events of this kind")
    events_parser.add_argument(
        "--last", type=int, default=0, help="only the most recent N events"
    )
    events_parser.add_argument(
        "--demo", action="store_true",
        help="run a clustered save/recover first so there are events to show",
    )
    events_parser.set_defaults(func=cmd_events)

    serve_parser = commands.add_parser(
        "serve", help="run the multi-tenant serving gateway (TCP JSON-lines)"
    )
    serve_parser.add_argument(
        "--tenants", required=True,
        help="comma-separated tenant names, e.g. 'acme,globex'",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=7070,
        help="TCP port (0 binds an ephemeral port; default 7070)",
    )
    serve_parser.add_argument(
        "--approach", default="param_update",
        help="save service behind the gateway: baseline | param_update | "
             "provenance | adaptive",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=4,
        help="storage worker threads (the async front end is single-loop)",
    )
    serve_parser.add_argument(
        "--requests-per-s", type=float, default=200.0,
        help="per-tenant request-rate quota",
    )
    serve_parser.add_argument(
        "--bytes-per-s", type=float, default=64 * 1024 * 1024,
        help="per-tenant ingress byte-rate quota",
    )
    serve_parser.add_argument(
        "--burst-requests", type=float, default=50.0,
        help="request token-bucket size",
    )
    serve_parser.add_argument(
        "--burst-bytes", type=float, default=16 * 1024 * 1024,
        help="byte token-bucket size",
    )
    serve_parser.add_argument(
        "--max-inflight", type=int, default=32,
        help="per-tenant bound on admitted-but-unfinished requests",
    )
    serve_parser.add_argument(
        "--max-concurrency", type=int, default=4,
        help="per-tenant bound on concurrently executing requests "
             "(keep the sum across tenants <= --workers for isolation)",
    )
    serve_parser.add_argument(
        "--no-maintenance", action="store_true",
        help="disable the idle-loop chain-compaction hook",
    )
    serve_parser.add_argument(
        "--compact-depth", type=int, default=4,
        help="recovery-depth threshold K that triggers idle compaction",
    )
    serve_parser.add_argument(
        "--serve-seconds", type=float, default=None,
        help="serve for a fixed duration then exit (default: until Ctrl-C)",
    )
    serve_parser.set_defaults(func=cmd_serve)

    env_parser = commands.add_parser("env", help="print/lock/check the environment")
    env_parser.add_argument("--full", action="store_true", help="include the package list")
    env_parser.add_argument("--lock", help="write an environment lockfile to this path")
    env_parser.add_argument("--check", help="verify this machine against a lockfile")
    env_parser.set_defaults(func=cmd_env)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.deadline is not None:
            if args.deadline <= 0:
                raise CliError("--deadline must be positive")
            from repro import deadline

            with deadline.scope(args.deadline):
                return args.func(args)
        return args.func(args)
    except Exception as exc:  # CLI boundary: print, don't traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
