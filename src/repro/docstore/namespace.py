"""Tenant-scoped views over a document store.

The serving gateway gives every tenant its own model catalog while all
tenants share one physical document store (and one content-addressed
file store).  Isolation happens at the collection-name layer:
:class:`NamespacedDocumentStore` maps each logical collection (``models``,
``environments``, …) to a physical collection prefixed with the tenant's
name, so two tenants' catalogs can never see each other — no query
filter to forget, no id convention to enforce.

Administrative operations (fsck, garbage collection, storage reports)
need the *opposite* view: one catalog spanning every tenant, because the
file store's orphan sweep is only correct against the union of all
referenced files.  :class:`UnionDocumentStore` provides that read/repair
view — each logical collection fans out over the per-tenant physical
collections.  Model ids are globally unique (uuid-hex), so the union is
well-defined; inserts are deliberately unsupported (an admin view has no
single right namespace to write new documents into).
"""

from __future__ import annotations

import re

__all__ = [
    "NamespacedDocumentStore",
    "UnionDocumentStore",
    "tenant_collection_name",
    "validate_tenant_name",
]

#: Physical collection name pattern: ``tenant--<name>--<collection>``.
_PREFIX_FORMAT = "tenant--{tenant}--{collection}"

_TENANT_NAME = re.compile(r"^[a-z0-9][a-z0-9_-]{0,63}$")


def validate_tenant_name(name: str) -> str:
    """Return ``name`` if it is a legal tenant name, else raise ValueError.

    Tenant names embed into collection names (and into external model
    ids as ``<tenant>/<model-id>``), so the alphabet is restricted to
    lowercase alphanumerics plus ``-``/``_``.
    """
    if not isinstance(name, str) or not _TENANT_NAME.match(name):
        raise ValueError(
            f"invalid tenant name {name!r}: need ^[a-z0-9][a-z0-9_-]{{0,63}}$"
        )
    return name


def tenant_collection_name(tenant: str, collection: str) -> str:
    """The physical collection backing ``collection`` for ``tenant``."""
    return _PREFIX_FORMAT.format(tenant=tenant, collection=collection)


class NamespacedDocumentStore:
    """One tenant's isolated view of a shared document store.

    Wraps any object with a ``collection(name)`` method (the embedded
    engine, the TCP client, a sharded store, a chaos wrapper) and
    prefixes every collection name with the tenant's namespace.  All
    other attributes pass through, so retry/cluster capabilities of the
    underlying store remain visible to the save services.
    """

    def __init__(self, store, tenant: str):
        self._store = store
        self.tenant = validate_tenant_name(tenant)

    def collection(self, name: str):
        return self._store.collection(tenant_collection_name(self.tenant, name))

    def __getitem__(self, name: str):
        return self.collection(name)

    def storage_bytes(self) -> int:
        """Approximate persisted bytes of this tenant's collections only."""
        names = getattr(self._store, "collection_names", None)
        if not callable(names):
            return 0
        prefix = tenant_collection_name(self.tenant, "")
        total = 0
        for name in names():
            if name.startswith(prefix):
                total += self._store.collection(name).storage_bytes()
        return total

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NamespacedDocumentStore(tenant={self.tenant!r})"


class _UnionCollection:
    """Read/repair facade over one logical collection across tenants."""

    def __init__(self, name: str, members: dict[str, object]):
        self.name = name
        self._members = members  # tenant -> physical Collection

    # -- reads -------------------------------------------------------------

    def get(self, doc_id: str) -> dict:
        for member in self._members.values():
            try:
                return member.get(doc_id)
            except KeyError:
                continue
        raise KeyError(f"no document {doc_id!r} in any tenant's {self.name!r}")

    def get_many(self, doc_ids: list[str]) -> list[dict]:
        found: dict[str, dict] = {}
        for member in self._members.values():
            for document in member.get_many(doc_ids):
                found.setdefault(document["_id"], document)
        return [found[doc_id] for doc_id in doc_ids if doc_id in found]

    def find(self, query: dict | None = None, **kwargs) -> list[dict]:
        results: list[dict] = []
        for member in self._members.values():
            results.extend(member.find(query, **kwargs))
        return results

    def find_one(self, query: dict) -> dict | None:
        for member in self._members.values():
            document = member.find_one(query)
            if document is not None:
                return document
        return None

    def count(self, query: dict | None = None) -> int:
        return sum(member.count(query) for member in self._members.values())

    def storage_bytes(self) -> int:
        return sum(member.storage_bytes() for member in self._members.values())

    # -- repairs -----------------------------------------------------------

    def delete_one(self, doc_id: str) -> bool:
        for member in self._members.values():
            if member.delete_one(doc_id):
                return True
        return False

    def replace_one(self, doc_id: str, document: dict) -> None:
        for member in self._members.values():
            try:
                member.get(doc_id)
            except KeyError:
                continue
            member.replace_one(doc_id, document)
            return
        raise KeyError(f"no document {doc_id!r} in any tenant's {self.name!r}")

    def insert_one(self, document: dict):  # pragma: no cover - guard rail
        raise TypeError(
            "UnionDocumentStore is an admin view; inserts must go through "
            "a tenant's NamespacedDocumentStore"
        )


class UnionDocumentStore:
    """Admin view spanning every tenant's namespaced collections.

    Built from the shared store plus the tenant names it should cover;
    ``collection(name)`` returns a facade whose reads union the
    per-tenant physical collections and whose repairs (delete/replace)
    land on whichever tenant holds the document.  Exactly the surface
    :meth:`~repro.core.manager.ModelManager.fsck`, ``garbage_collect``,
    and the catalog queries use — which makes one admin ``ModelManager``
    correct over a multi-tenant deployment.
    """

    def __init__(self, store, tenants: list[str]):
        self._store = store
        self.tenants = [validate_tenant_name(t) for t in tenants]

    def collection(self, name: str) -> _UnionCollection:
        return _UnionCollection(
            name,
            {
                tenant: self._store.collection(tenant_collection_name(tenant, name))
                for tenant in self.tenants
            },
        )

    def __getitem__(self, name: str) -> _UnionCollection:
        return self.collection(name)

    def storage_bytes(self) -> int:
        total = 0
        for tenant in self.tenants:
            total += NamespacedDocumentStore(self._store, tenant).storage_bytes()
        return total

    def tenant_model_counts(self) -> dict[str, int]:
        """Models per tenant — the ``mmlib stats`` multi-tenant section."""
        from ..core.schema import MODELS

        return {
            tenant: self._store.collection(
                tenant_collection_name(tenant, MODELS)
            ).count()
            for tenant in self.tenants
        }

    def __getattr__(self, name: str):
        return getattr(self._store, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UnionDocumentStore(tenants={self.tenants!r})"
