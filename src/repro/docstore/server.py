"""TCP server exposing a :class:`DocumentStore` over a JSON-line protocol.

Plays the role of the paper's dedicated MongoDB machine: the evaluation
runs one store process that the server and every node connect to.  The
protocol is one JSON object per line:

    -> {"id": 1, "collection": "models", "op": "insert_one", "args": {...}}
    <- {"id": 1, "ok": true, "result": "64ad..."}

Errors are returned with ``ok: false`` plus an error ``kind`` that the
client maps back to the engine's exception types.
"""

from __future__ import annotations

import json
import logging
import socketserver
import threading

from .documents import DocumentError
from .engine import DocumentStore, DuplicateKeyError, NotFoundError
from .query import QueryError

__all__ = ["DocumentStoreServer"]

_OPS = {
    "insert_one",
    "insert_many",
    "replace_one",
    "update_one",
    "delete_one",
    "delete_many",
    "get",
    "get_many",
    "find_one",
    "find",
    "count",
    "storage_bytes",
}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        store: DocumentStore = self.server.store  # type: ignore[attr-defined]
        log = logging.getLogger(__name__)
        while True:
            try:
                raw = self.rfile.readline()
            except OSError as exc:  # client reset mid-read: drop this connection
                log.warning("docstore client %s read failed: %s", self.client_address, exc)
                return
            if not raw:
                return  # clean EOF: client closed its side
            raw = raw.strip()
            if not raw:
                continue
            request = None
            response = None
            try:
                request = json.loads(raw.decode())
            except Exception as exc:  # malformed request: report, keep serving
                response = {
                    "id": None,
                    "ok": False,
                    "kind": "protocol",
                    "error": str(exc),
                }
            if response is None:
                try:
                    response = self._dispatch(store, request)
                except Exception as exc:  # bad args etc.: keep the request id
                    # so pipelined clients can keep their streams in sync
                    request_id = (
                        request.get("id") if isinstance(request, dict) else None
                    )
                    response = {
                        "id": request_id,
                        "ok": False,
                        "kind": "protocol",
                        "error": str(exc),
                    }
            try:
                self.wfile.write((json.dumps(response) + "\n").encode())
                self.wfile.flush()
            except OSError as exc:  # client vanished mid-response (broken pipe)
                log.warning("docstore client %s write failed: %s", self.client_address, exc)
                return

    @staticmethod
    def _dispatch(store: DocumentStore, request: dict) -> dict:
        request_id = request.get("id")
        op = request.get("op")
        if op not in _OPS:
            return {
                "id": request_id,
                "ok": False,
                "kind": "protocol",
                "error": f"unsupported op: {op!r}",
            }
        collection = store.collection(request["collection"])
        args = request.get("args", {})
        try:
            result = getattr(collection, op)(**args)
        except DuplicateKeyError as exc:
            return {"id": request_id, "ok": False, "kind": "duplicate", "error": str(exc)}
        except NotFoundError as exc:
            return {"id": request_id, "ok": False, "kind": "not_found", "error": str(exc)}
        except (DocumentError, QueryError) as exc:
            return {"id": request_id, "ok": False, "kind": "invalid", "error": str(exc)}
        return {"id": request_id, "ok": True, "result": result}


class DocumentStoreServer:
    """Threaded TCP front-end for a document store.

    Use as a context manager::

        with DocumentStoreServer(store, port=0) as server:
            client = DocumentStoreClient("127.0.0.1", server.port)
    """

    def __init__(self, store: DocumentStore, host: str = "127.0.0.1", port: int = 0):
        self.store = store
        self._server = socketserver.ThreadingTCPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.store = store  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "DocumentStoreServer":
        """Begin serving on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the listening socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "DocumentStoreServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
