"""Mongo-subset query matching.

Supported operators: equality by example, ``$eq``, ``$ne``, ``$gt``,
``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``, ``$exists``, ``$and``,
``$or``, ``$not``, and dotted paths into nested documents and arrays.
"""

from __future__ import annotations

from typing import Any

__all__ = ["matches", "resolve_path", "QueryError", "MISSING"]

#: Sentinel returned by :func:`resolve_path` for absent paths.
MISSING = object()
_MISSING = MISSING


class QueryError(ValueError):
    """Raised for malformed query documents."""


def resolve_path(document: Any, path: str):
    """Resolve a dotted path; returns a sentinel when the path is absent."""
    current = document
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                return _MISSING
            current = current[part]
        elif isinstance(current, list):
            if not part.isdigit() or int(part) >= len(current):
                return _MISSING
            current = current[int(part)]
        else:
            return _MISSING
    return current


def _compare(value, operator: str, operand) -> bool:
    if operator == "$eq":
        return value is not _MISSING and value == operand
    if operator == "$ne":
        return value is _MISSING or value != operand
    if operator == "$exists":
        return (value is not _MISSING) == bool(operand)
    if operator == "$in":
        if not isinstance(operand, list):
            raise QueryError("$in requires a list operand")
        return value is not _MISSING and value in operand
    if operator == "$nin":
        if not isinstance(operand, list):
            raise QueryError("$nin requires a list operand")
        return value is _MISSING or value not in operand
    if operator in ("$gt", "$gte", "$lt", "$lte"):
        if value is _MISSING:
            return False
        try:
            if operator == "$gt":
                return value > operand
            if operator == "$gte":
                return value >= operand
            if operator == "$lt":
                return value < operand
            return value <= operand
        except TypeError:
            return False
    if operator == "$not":
        return not _match_condition(value, operand)
    raise QueryError(f"unsupported operator: {operator}")


def _match_condition(value, condition) -> bool:
    if isinstance(condition, dict) and any(k.startswith("$") for k in condition):
        return all(_compare(value, op, operand) for op, operand in condition.items())
    # plain equality (arrays also match by membership, like MongoDB)
    if value is _MISSING:
        return condition is None
    if isinstance(value, list) and not isinstance(condition, list):
        return condition in value or value == condition
    return value == condition


def matches(document: dict, query: dict) -> bool:
    """Return whether ``document`` satisfies ``query``."""
    if not isinstance(query, dict):
        raise QueryError(f"query must be a dict, got {type(query).__name__}")
    for key, condition in query.items():
        if key == "$and":
            if not all(matches(document, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(matches(document, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(matches(document, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise QueryError(f"unsupported top-level operator: {key}")
        else:
            if not _match_condition(resolve_path(document, key), condition):
                return False
    return True
