"""``repro.docstore`` — a MongoDB-substitute document database.

Provides an embeddable engine (:class:`DocumentStore`), a Mongo-subset
query language, and a TCP server/client pair so the store can run in its
own process like the dedicated MongoDB machine in the paper's setup.
"""

from .client import DocumentStoreClient, RemoteCollection, RemoteStoreError
from .documents import DocumentError, ObjectId, new_object_id, validate_document
from .engine import Collection, DocumentStore, DuplicateKeyError, NotFoundError
from .namespace import (
    NamespacedDocumentStore,
    UnionDocumentStore,
    tenant_collection_name,
    validate_tenant_name,
)
from .query import QueryError, matches
from .server import DocumentStoreServer

__all__ = [
    "DocumentStoreClient",
    "RemoteCollection",
    "RemoteStoreError",
    "DocumentError",
    "ObjectId",
    "new_object_id",
    "validate_document",
    "Collection",
    "DocumentStore",
    "DuplicateKeyError",
    "NotFoundError",
    "QueryError",
    "matches",
    "DocumentStoreServer",
    "NamespacedDocumentStore",
    "UnionDocumentStore",
    "tenant_collection_name",
    "validate_tenant_name",
]
