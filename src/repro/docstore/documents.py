"""Document primitives for the MongoDB-substitute store.

Documents are JSON-compatible dicts.  Every stored document carries an
``_id``: either caller-provided or an auto-generated :class:`ObjectId`-style
hex string (timestamp + process-unique counter + randomness), mirroring
MongoDB's id scheme closely enough for MMlib's reference graphs.
"""

from __future__ import annotations

import json
import os
import secrets
import threading
import time

__all__ = ["ObjectId", "new_object_id", "validate_document", "DocumentError"]


class DocumentError(ValueError):
    """Raised for malformed documents or invalid field names."""


class ObjectId:
    """A 24-hex-character unique document identifier."""

    _counter = secrets.randbits(24)
    _lock = threading.Lock()

    def __init__(self, value: str | None = None):
        if value is None:
            value = self._generate()
        value = str(value)
        if len(value) != 24 or any(c not in "0123456789abcdef" for c in value):
            raise DocumentError(f"invalid ObjectId: {value!r}")
        self._value = value

    @classmethod
    def _generate(cls) -> str:
        with cls._lock:
            cls._counter = (cls._counter + 1) % (1 << 24)
            counter = cls._counter
        timestamp = int(time.time()) & 0xFFFFFFFF
        machine = secrets.randbits(24)
        pid = os.getpid() & 0xFFFF
        return (
            f"{timestamp:08x}{machine:06x}{pid:04x}{counter:06x}"
        )

    def __str__(self) -> str:
        return self._value

    def __repr__(self) -> str:
        return f"ObjectId({self._value!r})"

    def __eq__(self, other) -> bool:
        return str(self) == str(other)

    def __hash__(self) -> int:
        return hash(self._value)


def new_object_id() -> str:
    """Generate a fresh document id string."""
    return str(ObjectId())


def _check_json_value(value, path: str) -> None:
    if value is None or isinstance(value, (bool, int, float, str)):
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _check_json_value(item, f"{path}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise DocumentError(f"non-string key at {path}: {key!r}")
            if key.startswith("$"):
                raise DocumentError(f"field name may not start with '$': {path}.{key}")
            _check_json_value(item, f"{path}.{key}")
        return
    raise DocumentError(
        f"value at {path} has non-JSON type {type(value).__name__}"
    )


def validate_document(document: dict) -> dict:
    """Validate and deep-copy a document prior to insertion.

    Ensures JSON compatibility (so persistence cannot fail later) and
    returns an isolated copy so callers cannot mutate stored state.
    """
    if not isinstance(document, dict):
        raise DocumentError(f"document must be a dict, got {type(document).__name__}")
    _check_json_value(document, "<root>")
    # round-trip through JSON to normalise tuples and numpy scalars away
    return json.loads(json.dumps(document))
