"""The document-store engine: databases, collections, CRUD, persistence.

Stands in for the MongoDB instance the paper runs on a dedicated machine.
A :class:`DocumentStore` holds named collections; each collection supports
insert/find/update/delete with the Mongo-subset query language from
:mod:`repro.docstore.query`.  Stores can be purely in-memory or backed by a
directory of JSON-lines files (one per collection) that are kept in sync on
every write, so multiple readers of a shared filesystem see a consistent
picture — matching how the evaluation deployed a single store shared by the
server and all nodes.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from .documents import DocumentError, new_object_id, validate_document
from .query import MISSING, matches, resolve_path

__all__ = ["Collection", "DocumentStore", "DuplicateKeyError", "NotFoundError"]


def _sort_key(value):
    """Total order over mixed JSON values: missing < null < bool < number
    < string < list/dict (by JSON text)."""
    if value is MISSING:
        return (0, "")
    if value is None:
        return (1, "")
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (3, value)
    if isinstance(value, str):
        return (4, value)
    return (5, json.dumps(value, sort_keys=True))


class DuplicateKeyError(DocumentError):
    """Raised when inserting a document whose ``_id`` already exists."""


class NotFoundError(KeyError):
    """Raised when a required document does not exist."""


class Collection:
    """A named set of documents with unique ``_id`` values."""

    def __init__(self, name: str, persist_path: Path | None = None):
        self.name = name
        self._documents: dict[str, dict] = {}
        self._lock = threading.RLock()
        self._persist_path = persist_path
        if persist_path is not None and persist_path.exists():
            self._load()

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        with self._persist_path.open() as handle:
            for line in handle:
                line = line.strip()
                if line:
                    document = json.loads(line)
                    self._documents[document["_id"]] = document

    def _flush(self) -> None:
        if self._persist_path is None:
            return
        tmp = self._persist_path.with_suffix(".tmp")
        with tmp.open("w") as handle:
            for document in self._documents.values():
                handle.write(json.dumps(document, sort_keys=True) + "\n")
        tmp.replace(self._persist_path)

    # -- writes ----------------------------------------------------------------

    def insert_one(self, document: dict) -> str:
        """Insert a document; returns its (possibly generated) ``_id``."""
        document = validate_document(document)
        doc_id = document.get("_id") or new_object_id()
        document["_id"] = str(doc_id)
        with self._lock:
            if document["_id"] in self._documents:
                raise DuplicateKeyError(
                    f"duplicate _id {document['_id']!r} in collection {self.name!r}"
                )
            self._documents[document["_id"]] = document
            self._flush()
        return document["_id"]

    def insert_many(self, documents: list[dict]) -> list[str]:
        return [self.insert_one(document) for document in documents]

    def replace_one(self, doc_id: str, document: dict) -> None:
        """Replace the document with ``doc_id`` (must exist)."""
        document = validate_document(document)
        document["_id"] = str(doc_id)
        with self._lock:
            if document["_id"] not in self._documents:
                raise NotFoundError(f"no document {doc_id!r} in {self.name!r}")
            self._documents[document["_id"]] = document
            self._flush()

    def update_one(self, query: dict, changes: dict) -> bool:
        """Set top-level fields on the first match; returns whether one matched."""
        with self._lock:
            for document in self._documents.values():
                if matches(document, query):
                    updated = dict(document)
                    updated.update(validate_document(changes))
                    updated["_id"] = document["_id"]
                    self._documents[document["_id"]] = updated
                    self._flush()
                    return True
        return False

    def delete_one(self, doc_id: str) -> bool:
        with self._lock:
            removed = self._documents.pop(str(doc_id), None)
            if removed is not None:
                self._flush()
            return removed is not None

    def delete_many(self, query: dict) -> int:
        with self._lock:
            to_delete = [
                doc_id
                for doc_id, document in self._documents.items()
                if matches(document, query)
            ]
            for doc_id in to_delete:
                del self._documents[doc_id]
            if to_delete:
                self._flush()
            return len(to_delete)

    # -- reads --------------------------------------------------------------------

    def get(self, doc_id: str) -> dict:
        """Fetch by id, raising :class:`NotFoundError` when absent."""
        with self._lock:
            document = self._documents.get(str(doc_id))
        if document is None:
            raise NotFoundError(f"no document {doc_id!r} in {self.name!r}")
        return json.loads(json.dumps(document))

    def get_many(self, doc_ids: list[str]) -> list[dict]:
        """Fetch many documents by id in one call (one snapshot, one trip).

        Results come back in ``doc_ids`` order; missing ids are silently
        skipped rather than raising, so callers can diff the returned
        ``_id`` set against what they asked for.
        """
        with self._lock:
            found = [self._documents.get(str(doc_id)) for doc_id in doc_ids]
        return [json.loads(json.dumps(doc)) for doc in found if doc is not None]

    def find_one(self, query: dict) -> dict | None:
        for document in self.find(query):
            return document
        return None

    def find(
        self,
        query: dict | None = None,
        sort: list | None = None,
        limit: int | None = None,
        skip: int = 0,
    ) -> list[dict]:
        """Documents matching ``query``, optionally sorted and limited.

        ``sort`` is a list of ``[field, direction]`` pairs (direction 1 for
        ascending, -1 for descending; dotted paths allowed) applied in
        order of significance, like MongoDB's.  Missing fields sort first.
        ``skip`` drops that many results before ``limit`` applies, which
        gives remote clients stable pagination over sorted results.
        """
        query = query or {}
        with self._lock:
            snapshot = list(self._documents.values())
        results = [
            json.loads(json.dumps(document))
            for document in snapshot
            if matches(document, query)
        ]
        if sort:
            for field, direction in reversed(list(sort)):
                if direction not in (1, -1):
                    raise ValueError(f"sort direction must be 1 or -1, got {direction}")
                results.sort(
                    key=lambda document: _sort_key(resolve_path(document, field)),
                    reverse=direction == -1,
                )
        if skip:
            if skip < 0:
                raise ValueError(f"skip must be >= 0, got {skip}")
            results = results[skip:]
        if limit is not None:
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            results = results[:limit]
        return results

    def count(self, query: dict | None = None) -> int:
        if not query:
            with self._lock:
                return len(self._documents)
        return len(self.find(query))

    def storage_bytes(self) -> int:
        """Approximate persisted size: JSON bytes of every document."""
        with self._lock:
            return sum(
                len(json.dumps(document, sort_keys=True)) + 1
                for document in self._documents.values()
            )


class DocumentStore:
    """A set of named collections, optionally persisted to a directory."""

    def __init__(self, root: str | Path | None = None):
        self._root = Path(root) if root is not None else None
        if self._root is not None:
            self._root.mkdir(parents=True, exist_ok=True)
        self._collections: dict[str, Collection] = {}
        self._lock = threading.RLock()
        if self._root is not None:
            for path in sorted(self._root.glob("*.jsonl")):
                name = path.stem
                self._collections[name] = Collection(name, persist_path=path)

    def collection(self, name: str) -> Collection:
        """Get (or lazily create) a collection."""
        with self._lock:
            existing = self._collections.get(name)
            if existing is not None:
                return existing
            persist_path = None
            if self._root is not None:
                persist_path = self._root / f"{name}.jsonl"
            created = Collection(name, persist_path=persist_path)
            self._collections[name] = created
            return created

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        with self._lock:
            return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        with self._lock:
            collection = self._collections.pop(name, None)
            if collection is not None and collection._persist_path is not None:
                collection._persist_path.unlink(missing_ok=True)

    def storage_bytes(self) -> int:
        """Total approximate persisted size across collections."""
        with self._lock:
            return sum(c.storage_bytes() for c in self._collections.values())
