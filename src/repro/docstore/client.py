"""Client for :class:`repro.docstore.server.DocumentStoreServer`.

:class:`RemoteCollection` mirrors the :class:`~repro.docstore.engine.Collection`
API, so MMlib code can be pointed at either an in-process store or a remote
one without changes — the same way the paper swaps a local MongoDB for one
on a different machine.

The client is built for an unreliable link (the motivating fleet uplink):
connects and reads are bounded by timeouts, connection-level failures
surface as the retryable typed :class:`TransientRemoteError` (never a bare
``OSError``), a broken connection is re-established transparently, and an
optional :class:`~repro.retry.RetryPolicy` retries transient failures with
backoff.  A :class:`~repro.faults.FaultInjector` can be attached to
simulate outages before requests leave the client.

Retry caveat: a request whose *response* is lost may have executed on the
server.  All MMlib document ops are either idempotent (get/find/replace/
delete) or insert documents with client-generated ids (model documents),
so a duplicate insert surfaces as :class:`DuplicateKeyError` rather than
silent divergence.
"""

from __future__ import annotations

import json
import socket
import threading

from ..errors import MMLibError, TransientStoreError
from .documents import DocumentError
from .engine import DuplicateKeyError, NotFoundError

__all__ = [
    "DocumentStoreClient",
    "RemoteCollection",
    "RemoteStoreError",
    "TransientRemoteError",
]


class RemoteStoreError(MMLibError, RuntimeError):
    """Raised for protocol-level failures talking to the store server."""


class TransientRemoteError(TransientStoreError, RemoteStoreError):
    """A retryable connection-level failure (timeout, reset, outage)."""


_ERROR_KINDS = {
    "duplicate": DuplicateKeyError,
    "not_found": NotFoundError,
    "invalid": DocumentError,
    "protocol": RemoteStoreError,
}


class DocumentStoreClient:
    """Connection to a document-store server, handing out collections.

    ``timeout`` bounds reads on an established connection;
    ``connect_timeout`` (default: ``timeout``) bounds connection
    establishment.  ``retry`` retries transient failures, ``faults``
    injects simulated outages (chaos testing).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        retry=None,
        faults=None,
    ):
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = timeout if connect_timeout is None else connect_timeout
        self._retry = retry
        self._faults = faults
        self._socket: socket.socket | None = None
        self._reader = None
        self._lock = threading.Lock()
        self._next_id = 0
        self._connect()

    # -- connection management --------------------------------------------

    def _connect(self) -> None:
        try:
            self._socket = socket.create_connection(
                (self._host, self._port), timeout=self._connect_timeout
            )
            self._socket.settimeout(self._timeout)
            self._reader = self._socket.makefile("rb")
        except OSError as exc:
            self._socket = None
            self._reader = None
            raise TransientRemoteError(
                f"cannot connect to document store at "
                f"{self._host}:{self._port}: {exc}"
            ) from exc

    def _teardown(self) -> None:
        """Drop a connection whose stream state is no longer trustworthy."""
        try:
            if self._reader is not None:
                self._reader.close()
        except OSError:
            pass
        try:
            if self._socket is not None:
                self._socket.close()
        except OSError:
            pass
        self._socket = None
        self._reader = None

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "DocumentStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def collection(self, name: str) -> "RemoteCollection":
        return RemoteCollection(self, name)

    def __getitem__(self, name: str) -> "RemoteCollection":
        return self.collection(name)

    # -- requests ----------------------------------------------------------

    def request(self, collection: str, op: str, **args):
        """Issue one request and return its result (or raise).

        Transient failures (injected outages, timeouts, resets, server
        gone) raise :class:`TransientRemoteError`; with a retry policy the
        request is retried over a fresh connection.
        """

        def attempt():
            with self._lock:
                if self._faults is not None:
                    self._faults.fail_point(f"docs.{op}")
                if self._socket is None:
                    self._connect()
                self._next_id += 1
                request_id = self._next_id
                payload = json.dumps(
                    {"id": request_id, "collection": collection, "op": op, "args": args}
                )
                try:
                    self._socket.sendall((payload + "\n").encode())
                    raw = self._reader.readline()
                except OSError as exc:  # timeout, reset, broken pipe
                    self._teardown()
                    raise TransientRemoteError(
                        f"document-store connection failed during {op!r}: {exc}"
                    ) from exc
                if not raw:
                    self._teardown()
                    raise TransientRemoteError(
                        "connection closed by document-store server"
                    )
            try:
                response = json.loads(raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                self._teardown()
                raise RemoteStoreError(
                    f"malformed response from document-store server: {exc}"
                ) from exc
            if response.get("ok"):
                return response.get("result")
            error_type = _ERROR_KINDS.get(response.get("kind"), RemoteStoreError)
            raise error_type(response.get("error", "unknown remote error"))

        if self._retry is not None:
            return self._retry.call(attempt, op=f"docs.{op}")
        return attempt()


class RemoteCollection:
    """Remote counterpart of :class:`repro.docstore.engine.Collection`."""

    def __init__(self, client: DocumentStoreClient, name: str):
        self._client = client
        self.name = name

    def _call(self, op: str, **args):
        return self._client.request(self.name, op, **args)

    def insert_one(self, document: dict) -> str:
        return self._call("insert_one", document=document)

    def insert_many(self, documents: list[dict]) -> list[str]:
        return self._call("insert_many", documents=documents)

    def replace_one(self, doc_id: str, document: dict) -> None:
        self._call("replace_one", doc_id=doc_id, document=document)

    def update_one(self, query: dict, changes: dict) -> bool:
        return self._call("update_one", query=query, changes=changes)

    def delete_one(self, doc_id: str) -> bool:
        return self._call("delete_one", doc_id=doc_id)

    def delete_many(self, query: dict) -> int:
        return self._call("delete_many", query=query)

    def get(self, doc_id: str) -> dict:
        return self._call("get", doc_id=doc_id)

    def find_one(self, query: dict) -> dict | None:
        return self._call("find_one", query=query)

    def find(
        self,
        query: dict | None = None,
        sort: list | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        return self._call("find", query=query, sort=sort, limit=limit)

    def count(self, query: dict | None = None) -> int:
        return self._call("count", query=query)

    def storage_bytes(self) -> int:
        return self._call("storage_bytes")
