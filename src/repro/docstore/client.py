"""Client for :class:`repro.docstore.server.DocumentStoreServer`.

:class:`RemoteCollection` mirrors the :class:`~repro.docstore.engine.Collection`
API, so MMlib code can be pointed at either an in-process store or a remote
one without changes — the same way the paper swaps a local MongoDB for one
on a different machine.
"""

from __future__ import annotations

import json
import socket
import threading

from .documents import DocumentError
from .engine import DuplicateKeyError, NotFoundError

__all__ = ["DocumentStoreClient", "RemoteCollection", "RemoteStoreError"]


class RemoteStoreError(RuntimeError):
    """Raised for protocol-level failures talking to the store server."""


_ERROR_KINDS = {
    "duplicate": DuplicateKeyError,
    "not_found": NotFoundError,
    "invalid": DocumentError,
    "protocol": RemoteStoreError,
}


class DocumentStoreClient:
    """Connection to a document-store server, handing out collections."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self._socket = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._socket.makefile("rb")
        self._lock = threading.Lock()
        self._next_id = 0

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "DocumentStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def collection(self, name: str) -> "RemoteCollection":
        return RemoteCollection(self, name)

    def __getitem__(self, name: str) -> "RemoteCollection":
        return self.collection(name)

    def request(self, collection: str, op: str, **args):
        """Issue one request and return its result (or raise)."""
        with self._lock:
            self._next_id += 1
            request_id = self._next_id
            payload = json.dumps(
                {"id": request_id, "collection": collection, "op": op, "args": args}
            )
            self._socket.sendall((payload + "\n").encode())
            raw = self._reader.readline()
        if not raw:
            raise RemoteStoreError("connection closed by document-store server")
        response = json.loads(raw.decode())
        if response.get("ok"):
            return response.get("result")
        error_type = _ERROR_KINDS.get(response.get("kind"), RemoteStoreError)
        raise error_type(response.get("error", "unknown remote error"))


class RemoteCollection:
    """Remote counterpart of :class:`repro.docstore.engine.Collection`."""

    def __init__(self, client: DocumentStoreClient, name: str):
        self._client = client
        self.name = name

    def _call(self, op: str, **args):
        return self._client.request(self.name, op, **args)

    def insert_one(self, document: dict) -> str:
        return self._call("insert_one", document=document)

    def insert_many(self, documents: list[dict]) -> list[str]:
        return self._call("insert_many", documents=documents)

    def replace_one(self, doc_id: str, document: dict) -> None:
        self._call("replace_one", doc_id=doc_id, document=document)

    def update_one(self, query: dict, changes: dict) -> bool:
        return self._call("update_one", query=query, changes=changes)

    def delete_one(self, doc_id: str) -> bool:
        return self._call("delete_one", doc_id=doc_id)

    def delete_many(self, query: dict) -> int:
        return self._call("delete_many", query=query)

    def get(self, doc_id: str) -> dict:
        return self._call("get", doc_id=doc_id)

    def find_one(self, query: dict) -> dict | None:
        return self._call("find_one", query=query)

    def find(
        self,
        query: dict | None = None,
        sort: list | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        return self._call("find", query=query, sort=sort, limit=limit)

    def count(self, query: dict | None = None) -> int:
        return self._call("count", query=query)

    def storage_bytes(self) -> int:
        return self._call("storage_bytes")
