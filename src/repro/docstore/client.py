"""Client for :class:`repro.docstore.server.DocumentStoreServer`.

:class:`RemoteCollection` mirrors the :class:`~repro.docstore.engine.Collection`
API, so MMlib code can be pointed at either an in-process store or a remote
one without changes — the same way the paper swaps a local MongoDB for one
on a different machine.

The client is built for an unreliable link (the motivating fleet uplink):
connects and reads are bounded by timeouts, connection-level failures
surface as the retryable typed :class:`TransientRemoteError` (never a bare
``OSError``), a broken connection is re-established transparently, and an
optional :class:`~repro.retry.RetryPolicy` retries transient failures with
backoff.  A :class:`~repro.faults.FaultInjector` can be attached to
simulate outages before requests leave the client.

Retry caveat: a request whose *response* is lost may have executed on the
server.  All MMlib document ops are either idempotent (get/find/replace/
delete) or insert documents with client-generated ids (model documents),
so a duplicate insert surfaces as :class:`DuplicateKeyError` rather than
silent divergence.
"""

from __future__ import annotations

import json
import socket
import threading

from .. import deadline as deadline_mod, obs
from ..errors import MMLibError, TransientStoreError
from .documents import DocumentError
from .engine import DuplicateKeyError, NotFoundError

__all__ = [
    "DocumentStoreClient",
    "RemoteCollection",
    "RemoteStoreError",
    "TransientRemoteError",
]


class RemoteStoreError(MMLibError, RuntimeError):
    """Raised for protocol-level failures talking to the store server."""


class TransientRemoteError(TransientStoreError, RemoteStoreError):
    """A retryable connection-level failure (timeout, reset, outage)."""


_ERROR_KINDS = {
    "duplicate": DuplicateKeyError,
    "not_found": NotFoundError,
    "invalid": DocumentError,
    "protocol": RemoteStoreError,
}


class _Connection:
    """One TCP connection with its buffered reader and request-id counter."""

    __slots__ = ("sock", "reader", "next_id")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.reader = sock.makefile("rb")
        self.next_id = 0

    def close(self) -> None:
        try:
            self.reader.close()
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class DocumentStoreClient:
    """Connection pool to a document-store server, handing out collections.

    ``timeout`` bounds reads on an established connection;
    ``connect_timeout`` (default: ``timeout``) bounds connection
    establishment.  Both are further capped by the ambient
    :mod:`repro.deadline` when one is in scope, so an op-level budget
    bounds even the first socket wait against a just-died server.
    ``retry`` retries transient failures, ``faults`` injects simulated
    outages (chaos testing).

    Requests no longer serialize behind one client-wide lock: up to
    ``max_connections`` TCP connections are pooled, each used by one
    thread at a time, so concurrent callers proceed in parallel.
    :meth:`request_many` pipelines a batch of operations over a single
    connection — up to ``pipeline_depth`` requests are written before the
    first response is read, collapsing N round-trips into
    ``ceil(N / pipeline_depth)``.  Every response's ``id`` is checked
    against the request it answers; a mismatch poisons (closes) that
    connection and surfaces as :class:`RemoteStoreError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        connect_timeout: float | None = None,
        retry=None,
        faults=None,
        max_connections: int = 4,
        pipeline_depth: int = 32,
    ):
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._connect_timeout = timeout if connect_timeout is None else connect_timeout
        self._retry = retry
        self._faults = faults
        self.pipeline_depth = int(pipeline_depth)
        self._pool_lock = threading.Lock()
        self._idle: list[_Connection] = []
        self._slots = threading.BoundedSemaphore(int(max_connections))
        registry = obs.registry()
        self._obs_tracer = obs.tracer()
        self._obs_requests = registry.counter(
            "mmlib_docstore_requests_total", "Document-store requests sent")
        self._obs_windows = registry.counter(
            "mmlib_docstore_pipeline_windows_total",
            "Pipelined request windows (round trips) paid")
        # eager first connection: constructing a client against a dead
        # endpoint must fail fast with a typed, retryable error
        self._idle.append(self._open())

    # -- connection management --------------------------------------------

    def _capped(self, timeout: float) -> float:
        """``timeout`` shrunk to the ambient deadline budget, if any.

        Floored at 1 ms so a nearly-spent deadline still yields a blocking
        socket (``settimeout(0)`` would flip it to non-blocking mode).
        """
        budget = deadline_mod.remaining()
        if budget is None:
            return timeout
        return max(min(timeout, budget), 0.001)

    def _open(self) -> _Connection:
        deadline_mod.check("docs.connect")
        try:
            sock = socket.create_connection(
                (self._host, self._port),
                timeout=self._capped(self._connect_timeout),
            )
            sock.settimeout(self._timeout)
            return _Connection(sock)
        except OSError as exc:
            raise TransientRemoteError(
                f"cannot connect to document store at "
                f"{self._host}:{self._port}: {exc}"
            ) from exc

    def close(self) -> None:
        with self._pool_lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "DocumentStoreClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def collection(self, name: str) -> "RemoteCollection":
        return RemoteCollection(self, name)

    def __getitem__(self, name: str) -> "RemoteCollection":
        return self.collection(name)

    # -- requests ----------------------------------------------------------

    def request(self, collection: str, op: str, **args):
        """Issue one request and return its result (or raise).

        Transient failures (injected outages, timeouts, resets, server
        gone) raise :class:`TransientRemoteError`; with a retry policy the
        request is retried over a fresh connection.
        """

        def attempt():
            responses = self._exchange(collection, [(op, args)], op_label=op)
            return self._unwrap(responses[0])

        if self._retry is not None:
            return self._retry.call(attempt, op=f"docs.{op}")
        return attempt()

    def request_many(self, collection: str, requests: list[tuple[str, dict]]):
        """Pipeline a batch of ``(op, args)`` requests over one connection.

        All requests in a window of ``pipeline_depth`` are written before
        the first response is read — one link round-trip per window rather
        than per request.  Results come back in request order; the first
        error response raises its mapped exception (the stream itself
        stays in sync, so the connection survives).  With a retry policy
        the whole batch retries as a unit on transient failure, so callers
        should batch idempotent reads, not writes.
        """
        ops = [(op, dict(args)) for op, args in requests]
        if not ops:
            return []

        def attempt():
            responses = self._exchange(collection, ops, op_label=ops[0][0])
            return [self._unwrap(response) for response in responses]

        if self._retry is not None:
            return self._retry.call(attempt, op=f"docs.{ops[0][0]}[{len(ops)}]")
        return attempt()

    def _exchange(
        self, collection: str, ops: list[tuple[str, dict]], op_label: str
    ) -> list[dict]:
        """Run ops over one pooled connection; returns raw responses.

        The connection returns to the pool only when every response was
        read cleanly — on transport or framing errors it is closed instead,
        since its stream state is no longer trustworthy.
        """
        deadline_mod.check(f"docs.{op_label}")
        if self._faults is not None:
            self._faults.fail_point(f"docs.{op_label}")
        self._slots.acquire()
        conn = None
        healthy = False
        try:
            with self._pool_lock:
                if self._idle:
                    conn = self._idle.pop()
            if conn is None:
                conn = self._open()
            # cap this exchange's socket waits by the op deadline; the pool
            # re-caps on every checkout, so no restore is needed on return
            conn.sock.settimeout(self._capped(self._timeout))
            responses: list[dict] = []
            windows = -(-len(ops) // self.pipeline_depth)
            with self._obs_tracer.span(
                "docs.request_many" if len(ops) > 1 else "docs.request",
                op=op_label, n=len(ops), windows=windows,
            ):
                for start in range(0, len(ops), self.pipeline_depth):
                    window = ops[start : start + self.pipeline_depth]
                    responses.extend(self._roundtrip(conn, collection, window))
            self._obs_requests.inc(len(ops))
            self._obs_windows.inc(windows)
            healthy = True
            return responses
        finally:
            if conn is not None:
                if healthy:
                    with self._pool_lock:
                        self._idle.append(conn)
                else:
                    conn.close()
            self._slots.release()

    def _roundtrip(
        self, conn: _Connection, collection: str, window: list[tuple[str, dict]]
    ) -> list[dict]:
        """Write one window of requests, then read and id-match responses."""
        ids = []
        lines = []
        for op, args in window:
            conn.next_id += 1
            ids.append(conn.next_id)
            lines.append(
                json.dumps(
                    {"id": conn.next_id, "collection": collection, "op": op, "args": args}
                )
            )
        try:
            conn.sock.sendall(("\n".join(lines) + "\n").encode())
            raws = [conn.reader.readline() for _ in ids]
        except OSError as exc:  # timeout, reset, broken pipe
            raise TransientRemoteError(
                f"document-store connection failed during {window[0][0]!r}: {exc}"
            ) from exc
        responses = []
        for expected_id, raw in zip(ids, raws):
            if not raw:
                raise TransientRemoteError(
                    "connection closed by document-store server"
                )
            try:
                response = json.loads(raw.decode())
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise RemoteStoreError(
                    f"malformed response from document-store server: {exc}"
                ) from exc
            received_id = response.get("id")
            # id None means the server could not even parse the request
            # line; responses arrive in order, so FIFO-attribute it
            if received_id is not None and received_id != expected_id:
                raise RemoteStoreError(
                    f"response id {received_id} does not match request id "
                    f"{expected_id}: pipelined stream out of sync"
                )
            responses.append(response)
        return responses

    @staticmethod
    def _unwrap(response: dict):
        if response.get("ok"):
            return response.get("result")
        error_type = _ERROR_KINDS.get(response.get("kind"), RemoteStoreError)
        raise error_type(response.get("error", "unknown remote error"))


class RemoteCollection:
    """Remote counterpart of :class:`repro.docstore.engine.Collection`."""

    def __init__(self, client: DocumentStoreClient, name: str):
        self._client = client
        self.name = name

    def _call(self, op: str, **args):
        return self._client.request(self.name, op, **args)

    def insert_one(self, document: dict) -> str:
        return self._call("insert_one", document=document)

    def insert_many(self, documents: list[dict]) -> list[str]:
        return self._call("insert_many", documents=documents)

    def replace_one(self, doc_id: str, document: dict) -> None:
        self._call("replace_one", doc_id=doc_id, document=document)

    def update_one(self, query: dict, changes: dict) -> bool:
        return self._call("update_one", query=query, changes=changes)

    def delete_one(self, doc_id: str) -> bool:
        return self._call("delete_one", doc_id=doc_id)

    def delete_many(self, query: dict) -> int:
        return self._call("delete_many", query=query)

    def get(self, doc_id: str) -> dict:
        return self._call("get", doc_id=doc_id)

    def get_many(self, doc_ids: list[str]) -> list[dict]:
        """Fetch many documents in one round-trip (missing ids skipped)."""
        return self._call("get_many", doc_ids=list(doc_ids))

    def find_one(self, query: dict) -> dict | None:
        return self._call("find_one", query=query)

    def find(
        self,
        query: dict | None = None,
        sort: list | None = None,
        limit: int | None = None,
        skip: int = 0,
    ) -> list[dict]:
        return self._call("find", query=query, sort=sort, limit=limit, skip=skip)

    def find_pages(
        self,
        query: dict | None = None,
        sort: list | None = None,
        page_size: int = 256,
    ):
        """Iterate matching documents page by page (bounded responses).

        Each page is one ``find`` with ``skip``/``limit``, so arbitrarily
        large result sets never arrive as a single unbounded response
        line.
        """
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        skip = 0
        while True:
            page = self.find(query=query, sort=sort, limit=page_size, skip=skip)
            yield from page
            if len(page) < page_size:
                return
            skip += page_size

    def count(self, query: dict | None = None) -> int:
        return self._call("count", query=query)

    def storage_bytes(self) -> int:
        return self._call("storage_bytes")
