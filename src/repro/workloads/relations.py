"""Model relations and recordable training runs.

The evaluation derives models via two relations (paper Sections 2.1, 4.1):

* **fully updated model version** — all parameters retrained;
* **partially updated model version** — only the final fully connected
  layer(s) retrained, the rest declared not trainable on layer granularity.

:class:`TrainingRun` packages one derivation step with everything the MPA
must capture *before* training: the seed, the pre-training RNG state, and
the optimizer's pre-training state.  It can replay itself (node-side
training) and can later be turned into MMlib save inputs without keeping
any live objects around.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.save_info import ProvenanceSaveInfo, TrainRunSpec
from ..core.train_service import ImageClassificationTrainService
from ..core.wrappers import (
    RestorableObjectWrapper,
    StateFileRestorableObjectWrapper,
)
from ..nn import rng, serialization
from ..nn.modules import Module
from ..nn.optim import SGD

__all__ = ["FULLY_UPDATED", "PARTIALLY_UPDATED", "RELATIONS", "TrainingRun"]

FULLY_UPDATED = "fully_updated"
PARTIALLY_UPDATED = "partially_updated"
RELATIONS = (FULLY_UPDATED, PARTIALLY_UPDATED)

_DATASET_CLASS = "repro.workloads.datasets.SyntheticImageFolder"
_OPTIMIZER_CLASS = "repro.nn.optim.SGD"


@dataclass
class TrainingRun:
    """One recorded model-derivation step (training on one dataset)."""

    dataset_dir: Path
    relation: str = FULLY_UPDATED
    number_epochs: int = 1
    number_batches: int | None = None
    seed: int = 0
    deterministic: bool = True
    learning_rate: float = 0.01
    momentum: float = 0.9
    batch_size: int = 32
    shuffle: bool = True
    image_size: int = 32
    num_classes: int | None = None
    # dataset binding: defaults to the synthetic image folder; any dataset
    # class taking a ``root`` argument works (e.g. SyntheticTextCorpus)
    dataset_class: str = _DATASET_CLASS
    dataset_kwargs: dict | None = None
    # optional LR schedule (another stateful wrapped object, paper Fig. 5)
    scheduler_class: str | None = None
    scheduler_kwargs: dict | None = None
    # captured by execute(); needed to rebuild provenance later
    rng_state: dict | None = None
    optimizer_state_bytes: bytes | None = None
    scheduler_state_bytes: bytes | None = None

    def __post_init__(self):
        if self.relation not in RELATIONS:
            raise ValueError(f"relation must be one of {RELATIONS}, got {self.relation!r}")
        self.dataset_dir = Path(self.dataset_dir)

    @property
    def freeze_mode(self) -> str:
        return "partial" if self.relation == PARTIALLY_UPDATED else "none"

    # -- live execution (node side) ---------------------------------------

    def _dataset_init_args(self) -> dict:
        """Wrapper init args; ``root`` stays a restore-time reference."""
        if self.dataset_kwargs is not None:
            args = dict(self.dataset_kwargs)
        else:
            args = {"image_size": self.image_size, "num_classes": self.num_classes}
        args["root"] = "$ref:dataset_root"
        return args

    def _make_dataset(self):
        """Instantiate the dataset against the local directory."""
        import importlib

        module_name, _, class_name = self.dataset_class.rpartition(".")
        dataset_cls = getattr(importlib.import_module(module_name), class_name)
        args = self._dataset_init_args()
        args["root"] = self.dataset_dir
        return dataset_cls(**args)

    def execute(self, model: Module) -> Module:
        """Train ``model`` in place, capturing replay state first."""
        rng.manual_seed(self.seed)
        rng.use_deterministic_algorithms(self.deterministic)
        self.rng_state = rng.get_rng_state()

        dataset = self._make_dataset()
        optimizer = SGD(
            list(model.parameters()), lr=self.learning_rate, momentum=self.momentum
        )
        self.optimizer_state_bytes = serialization.dumps(optimizer.state_dict())
        scheduler = None
        if self.scheduler_class is not None:
            scheduler = self._make_scheduler(optimizer)
            self.scheduler_state_bytes = serialization.dumps(scheduler.state_dict())

        service = self._build_service(
            dataset_instance=dataset,
            optimizer_instance=optimizer,
            scheduler_instance=scheduler,
        )
        service.train(
            model,
            number_epochs=self.number_epochs,
            number_batches=self.number_batches,
        )
        return model

    # -- provenance reconstruction (save side) ---------------------------------

    def _make_scheduler(self, optimizer):
        import importlib

        module_name, _, class_name = self.scheduler_class.rpartition(".")
        scheduler_cls = getattr(importlib.import_module(module_name), class_name)
        return scheduler_cls(optimizer, **(self.scheduler_kwargs or {}))

    def _build_service(
        self, dataset_instance=None, optimizer_instance=None, scheduler_instance=None
    ) -> ImageClassificationTrainService:
        dataset_wrapper = RestorableObjectWrapper(
            instance=dataset_instance,
            class_path=self.dataset_class,
            init_args=self._dataset_init_args(),
        )
        optimizer_wrapper = StateFileRestorableObjectWrapper(
            instance=optimizer_instance,
            class_path=_OPTIMIZER_CLASS,
            init_args={"lr": self.learning_rate, "momentum": self.momentum},
            ref_args={"params": "params"},
        )
        if optimizer_instance is None and self.optimizer_state_bytes is not None:
            optimizer_wrapper._state_bytes = self.optimizer_state_bytes
        scheduler_wrapper = None
        if self.scheduler_class is not None:
            scheduler_wrapper = StateFileRestorableObjectWrapper(
                instance=scheduler_instance,
                class_path=self.scheduler_class,
                init_args=dict(self.scheduler_kwargs or {}),
                ref_args={"optimizer": "optimizer"},
            )
            if scheduler_instance is None and self.scheduler_state_bytes is not None:
                scheduler_wrapper._state_bytes = self.scheduler_state_bytes
        return ImageClassificationTrainService(
            dataset_wrapper=dataset_wrapper,
            optimizer_wrapper=optimizer_wrapper,
            batch_size=self.batch_size,
            shuffle=self.shuffle,
            freeze_mode=self.freeze_mode,
            scheduler_wrapper=scheduler_wrapper,
        )

    def build_train_service(self) -> ImageClassificationTrainService:
        """Service for persistence: wrappers carry recorded state, no live objects."""
        if self.optimizer_state_bytes is None:
            raise RuntimeError("TrainingRun was never executed; nothing to persist")
        return self._build_service()

    def to_provenance_info(
        self,
        base_model_id: str,
        trained_model: Module | None = None,
        use_case: str | None = None,
    ) -> ProvenanceSaveInfo:
        """Build the MPA save input for this recorded run."""
        if self.rng_state is None:
            raise RuntimeError("TrainingRun was never executed; no RNG state recorded")
        spec = TrainRunSpec(
            number_epochs=self.number_epochs,
            number_batches=self.number_batches,
            seed=self.seed,
            deterministic=self.deterministic,
        )
        return ProvenanceSaveInfo(
            base_model_id=base_model_id,
            train_service=self.build_train_service(),
            train_spec=spec,
            rng_state=self.rng_state,
            dataset_dir=self.dataset_dir,
            use_case=use_case,
            expected_model=trained_model,
        )

    # -- (de)serialization for chain caching ------------------------------------

    def to_dict(self) -> dict:
        return {
            "dataset_dir": str(self.dataset_dir),
            "relation": self.relation,
            "number_epochs": self.number_epochs,
            "number_batches": self.number_batches,
            "seed": self.seed,
            "deterministic": self.deterministic,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "batch_size": self.batch_size,
            "shuffle": self.shuffle,
            "image_size": self.image_size,
            "num_classes": self.num_classes,
            "dataset_class": self.dataset_class,
            "dataset_kwargs": self.dataset_kwargs,
            "scheduler_class": self.scheduler_class,
            "scheduler_kwargs": self.scheduler_kwargs,
            "rng_state": self.rng_state,
            "optimizer_state_hex": (
                self.optimizer_state_bytes.hex()
                if self.optimizer_state_bytes is not None
                else None
            ),
            "scheduler_state_hex": (
                self.scheduler_state_bytes.hex()
                if self.scheduler_state_bytes is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingRun":
        """Rebuild a recorded run from :meth:`to_dict` (chain-cache loading)."""
        payload = dict(payload)
        state_hex = payload.pop("optimizer_state_hex", None)
        scheduler_hex = payload.pop("scheduler_state_hex", None)
        run = cls(**payload)
        if state_hex is not None:
            run.optimizer_state_bytes = bytes.fromhex(state_hex)
        if scheduler_hex is not None:
            run.scheduler_state_bytes = bytes.fromhex(scheduler_hex)
        return run
