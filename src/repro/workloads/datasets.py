"""Synthetic stand-ins for the paper's evaluation datasets (Table 1).

The paper uses ImageNet-2012 validation data and two 512-image COCO
subsets.  Neither is available offline, so we generate synthetic image
datasets that preserve what the experiments actually depend on:

* the *on-disk byte size* (scaled by ``DEFAULT_SCALE``, ratio-preserving —
  the MPA's storage, TTS, and TTR are driven by dataset bytes);
* the *image count* (drives batches per epoch and thus training time);
* incompressibility (JPEG-like entropy: random uint8 pixels, so the zip
  archive the MPA stores is ~the raw size, as it would be for JPEGs).

A dataset is a directory of ``.npy`` shards plus a manifest; the
:class:`SyntheticImageFolder` dataset loads shards lazily and resizes
stored images to the training resolution on access, like a real ImageNet
loading pipeline resizes JPEGs.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..nn.data import Dataset

__all__ = [
    "DatasetSpec",
    "DATASET_SPECS",
    "DEFAULT_SCALE",
    "generate_dataset",
    "SyntheticImageFolder",
    "dataset_on_disk_bytes",
]

#: Fraction of the paper's dataset bytes that the default generation uses.
#: 1/64 keeps every size ratio while making the full evaluation tractable.
DEFAULT_SCALE = 1.0 / 64.0

_SHARD_IMAGES = 512
_MANIFEST = "manifest.json"


@dataclass(frozen=True)
class DatasetSpec:
    """One evaluation dataset (paper Table 1)."""

    name: str
    num_images: int
    paper_bytes: int
    use_case: str
    num_classes: int = 1000

    def image_side(self, scale: float = DEFAULT_SCALE) -> int:
        """Stored image side length hitting the scaled byte target."""
        bytes_per_image = self.paper_bytes * scale / self.num_images
        side = int(math.sqrt(bytes_per_image / 3.0))
        return max(8, side)


DATASET_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        # ImageNet 2012 validation set: 50,000 images, 6.3 GB (U_2 training
        # in the paper's full protocol)
        DatasetSpec("inet_val", 50_000, 6_300_000_000, "U_2"),
        # mini ImageNet validation: 1,400 images, 200 MB (what the storage
        # experiments actually persist for U_2)
        DatasetSpec("minet_val", 1_400, 200_000_000, "U_2"),
        # Coco-food-512: 512 images, 94.3 MB (U_3)
        DatasetSpec("cf512", 512, 94_300_000, "U_3"),
        # Coco-outdoor-512: 512 images, 71.6 MB (U_3)
        DatasetSpec("co512", 512, 71_600_000, "U_3"),
    ]
}


def generate_dataset(
    name: str,
    root: str | Path,
    scale: float = DEFAULT_SCALE,
    seed: int | None = None,
) -> Path:
    """Materialize a synthetic dataset directory; returns its path.

    Generation is deterministic in (name, scale, seed), so repeated calls
    produce byte-identical datasets — a precondition for reproducible
    provenance archives.  Existing directories are reused as-is.
    """
    if name not in DATASET_SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}")
    spec = DATASET_SPECS[name]
    root = Path(root) / f"{name}-x{scale:g}"
    if (root / _MANIFEST).exists():
        return root
    root.mkdir(parents=True, exist_ok=True)

    if seed is None:
        seed = abs(hash((name, round(scale, 9)))) % (2**31)
    generator = np.random.Generator(np.random.PCG64(seed))
    side = spec.image_side(scale)

    shard_names = []
    remaining = spec.num_images
    shard_index = 0
    while remaining > 0:
        count = min(_SHARD_IMAGES, remaining)
        images = generator.integers(0, 256, size=(count, side, side, 3), dtype=np.uint8)
        shard_name = f"images_{shard_index:04d}.npy"
        np.save(root / shard_name, images)
        shard_names.append(shard_name)
        remaining -= count
        shard_index += 1

    labels = generator.integers(0, spec.num_classes, size=spec.num_images, dtype=np.int64)
    np.save(root / "labels.npy", labels)

    manifest = {
        "name": spec.name,
        "num_images": spec.num_images,
        "num_classes": spec.num_classes,
        "image_side": side,
        "scale": scale,
        "seed": seed,
        "shards": shard_names,
        "paper_bytes": spec.paper_bytes,
        "use_case": spec.use_case,
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return root


def dataset_on_disk_bytes(root: str | Path) -> int:
    """Total bytes of a generated dataset directory."""
    root = Path(root)
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _nearest_resize(image: np.ndarray, size: int) -> np.ndarray:
    """Nearest-neighbour resize of an (H, W, 3) image to (size, size, 3)."""
    h, w = image.shape[:2]
    rows = (np.arange(size) * h // size).clip(0, h - 1)
    cols = (np.arange(size) * w // size).clip(0, w - 1)
    return image[rows][:, cols]


class SyntheticImageFolder(Dataset):
    """Map-style dataset over a generated synthetic image directory.

    ``__getitem__`` returns ``(image, label)`` where the image is a
    float32 CHW array at the training resolution ``image_size``, resized
    from the stored native resolution on access.
    """

    def __init__(self, root: str | Path, image_size: int = 32, num_classes: int | None = None):
        self.root = Path(root)
        manifest_path = self.root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"not a synthetic dataset directory: {self.root}")
        self.manifest = json.loads(manifest_path.read_text())
        self.image_size = image_size
        # optional label remap so the same stored dataset can train heads
        # with fewer classes (labels are folded deterministically)
        self._num_classes = num_classes
        self._shards = [
            np.load(self.root / shard, mmap_mode="r") for shard in self.manifest["shards"]
        ]
        self._shard_offsets = np.cumsum([0] + [len(s) for s in self._shards])
        self.labels = np.load(self.root / "labels.npy")

    @property
    def name(self) -> str:
        return self.manifest["name"]

    @property
    def num_classes(self) -> int:
        return self._num_classes or self.manifest["num_classes"]

    def __len__(self) -> int:
        return self.manifest["num_images"]

    def __getitem__(self, index: int):
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for {len(self)} images")
        shard_index = int(np.searchsorted(self._shard_offsets, index, side="right")) - 1
        local = index - self._shard_offsets[shard_index]
        image = np.asarray(self._shards[shard_index][local])
        image = _nearest_resize(image, self.image_size)
        image = image.astype(np.float32).transpose(2, 0, 1) / 255.0
        return image, np.int64(self.labels[index]) % self.num_classes
