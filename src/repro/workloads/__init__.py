"""``repro.workloads`` — evaluation datasets, relations, and model chains."""

from .datasets import (
    DATASET_SPECS,
    DEFAULT_SCALE,
    DatasetSpec,
    SyntheticImageFolder,
    dataset_on_disk_bytes,
    generate_dataset,
)
from .pretrain import (
    ChainConfig,
    ChainStep,
    ModelChain,
    build_chain,
    standard_use_cases,
)
from .relations import FULLY_UPDATED, PARTIALLY_UPDATED, RELATIONS, TrainingRun
from .serving import serving_cnn, serving_mlp
from .text_data import SyntheticTextCorpus, generate_text_corpus

__all__ = [
    "DATASET_SPECS",
    "DEFAULT_SCALE",
    "DatasetSpec",
    "SyntheticImageFolder",
    "dataset_on_disk_bytes",
    "generate_dataset",
    "ChainConfig",
    "ChainStep",
    "ModelChain",
    "build_chain",
    "standard_use_cases",
    "FULLY_UPDATED",
    "PARTIALLY_UPDATED",
    "RELATIONS",
    "TrainingRun",
    "SyntheticTextCorpus",
    "generate_text_corpus",
    "serving_cnn",
    "serving_mlp",
]
