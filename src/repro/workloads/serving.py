"""Small importable model factories for the serving plane.

The gateway saves models by *architecture reference* — the client sends
``(module, factory, kwargs)`` and a serialized state dict, and the
server rebuilds the module via :meth:`ArchitectureRef.build`, which
re-imports the factory's module.  That means bench scripts and tests
cannot define factories in ``__main__``; they need a stable, importable
home.  This module is that home: deliberately tiny models so the
serving benchmark measures the gateway and storage planes, not conv
arithmetic.
"""

from __future__ import annotations

from .. import nn

__all__ = ["serving_cnn", "serving_mlp"]


def serving_cnn(num_classes: int = 10, channels: int = 4, seed: int = 0) -> nn.Module:
    """Conv-BN-ReLU-Pool-Linear, ~1k params at default width."""
    nn.manual_seed(seed)
    return nn.Sequential(
        nn.Conv2d(3, channels, kernel_size=3, padding=1, bias=False),
        nn.BatchNorm2d(channels),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        nn.Linear(channels * 4 * 4, num_classes),
    )


def serving_mlp(in_features: int = 32, hidden: int = 64, num_classes: int = 10,
                seed: int = 0) -> nn.Module:
    """Two-layer MLP — the cheapest distinguishable architecture."""
    nn.manual_seed(seed)
    return nn.Sequential(
        nn.Linear(in_features, hidden),
        nn.ReLU(),
        nn.Linear(hidden, num_classes),
    )
