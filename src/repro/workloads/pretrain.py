"""Evaluation-flow model chains (paper Fig. 6) with on-disk caching.

The paper pre-trains the ten models of the standard evaluation flow and
loads snapshots during the experiments "instead of repeating the training
procedure each time" (Section 4.1).  :func:`build_chain` does the same:
it derives the chain

    U_1 -> U_3-1-1 -> ... -> U_3-1-4
    U_1 -> U_2 -> U_3-2-1 -> ... -> U_3-2-4

by real, deterministic, seeded training on the synthetic datasets, and
caches every step's state dict and training record under a cache
directory keyed by the experiment configuration.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..core.save_info import ArchitectureRef
from ..nn import serialization
from ..nn.models import MODEL_REGISTRY, create_model
from ..nn.modules import Module
from .datasets import DEFAULT_SCALE, generate_dataset
from .relations import FULLY_UPDATED, RELATIONS, TrainingRun

__all__ = ["ChainStep", "ModelChain", "ChainConfig", "build_chain", "standard_use_cases"]


def standard_use_cases(iterations: int = 4) -> list[str]:
    """Use-case tags of one evaluation flow, in creation order."""
    tags = ["U_1"]
    tags += [f"U_3-1-{n}" for n in range(1, iterations + 1)]
    tags += ["U_2"]
    tags += [f"U_3-2-{n}" for n in range(1, iterations + 1)]
    return tags


@dataclass
class ChainStep:
    """One model in the evaluation flow."""

    use_case: str
    base_index: int | None  # index of the base model's step, None for U_1
    state_file: Path
    run: TrainingRun | None  # None for the initial model

    def load_state(self) -> dict:
        return serialization.load(self.state_file)


@dataclass
class ChainConfig:
    """Everything that identifies (and keys the cache of) one chain."""

    architecture: str
    relation: str = FULLY_UPDATED
    u3_dataset: str = "co512"
    u2_dataset: str = "minet_val"
    iterations: int = 4
    u2_epochs: int = 2
    u3_epochs: int = 1
    batches_per_epoch: int | None = 4
    scale: float = 0.25
    num_classes: int = 1000
    dataset_scale: float = DEFAULT_SCALE
    image_size: int = 32
    base_seed: int = 42

    def __post_init__(self):
        if self.architecture not in MODEL_REGISTRY:
            raise KeyError(f"unknown architecture {self.architecture!r}")
        if self.relation not in RELATIONS:
            raise ValueError(f"unknown relation {self.relation!r}")

    def cache_key(self) -> str:
        return (
            f"{self.architecture}-{self.relation}-{self.u3_dataset}-{self.u2_dataset}"
            f"-i{self.iterations}-e{self.u2_epochs}.{self.u3_epochs}"
            f"-b{self.batches_per_epoch}-s{self.scale:g}-c{self.num_classes}"
            f"-d{self.dataset_scale:g}-r{self.image_size}-seed{self.base_seed}"
        )

    def architecture_ref(self) -> ArchitectureRef:
        spec = MODEL_REGISTRY[self.architecture]
        return ArchitectureRef.from_factory(
            spec.factory.__module__,
            spec.factory.__name__,
            {"num_classes": self.num_classes, "scale": self.scale},
        )


@dataclass
class ModelChain:
    """A built evaluation-flow chain with lazily loadable snapshots."""

    config: ChainConfig
    steps: list[ChainStep] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def step(self, use_case: str) -> ChainStep:
        for step in self.steps:
            if step.use_case == use_case:
                return step
        raise KeyError(f"chain has no step {use_case!r}")

    def build_model(self, use_case: str) -> Module:
        """Instantiate the architecture and load a step's snapshot."""
        model = create_model(
            self.config.architecture,
            num_classes=self.config.num_classes,
            scale=self.config.scale,
            seed=self.config.base_seed,
        )
        model.load_state_dict(self.step(use_case).load_state())
        return model


def _derive(
    config: ChainConfig,
    base_state: dict,
    dataset_dir: Path,
    epochs: int,
    seed: int,
) -> tuple[dict, TrainingRun]:
    model = create_model(
        config.architecture,
        num_classes=config.num_classes,
        scale=config.scale,
        seed=config.base_seed,
    )
    model.load_state_dict(base_state)
    run = TrainingRun(
        dataset_dir=dataset_dir,
        relation=config.relation,
        number_epochs=epochs,
        number_batches=config.batches_per_epoch,
        seed=seed,
        image_size=config.image_size,
        num_classes=config.num_classes,
    )
    run.execute(model)
    return model.state_dict(), run


def build_chain(
    cache_dir: str | Path,
    config: ChainConfig,
    data_dir: str | Path | None = None,
) -> ModelChain:
    """Build (or load from cache) the evaluation-flow chain for ``config``."""
    cache_dir = Path(cache_dir)
    chain_dir = cache_dir / "chains" / config.cache_key()
    data_dir = Path(data_dir) if data_dir else cache_dir / "datasets"
    manifest_path = chain_dir / "chain.json"

    u3_root = generate_dataset(config.u3_dataset, data_dir, scale=config.dataset_scale)
    u2_root = generate_dataset(config.u2_dataset, data_dir, scale=config.dataset_scale)

    if manifest_path.exists():
        return _load_chain(config, chain_dir)

    chain_dir.mkdir(parents=True, exist_ok=True)
    steps: list[ChainStep] = []

    def store(use_case: str, state: dict, base_index: int | None, run: TrainingRun | None):
        state_file = chain_dir / f"{use_case}.state"
        serialization.save(state, state_file)
        steps.append(ChainStep(use_case, base_index, state_file, run))

    # U_1: the extensively pre-trained initial model.  The paper loads
    # PyTorch's ImageNet weights; we substitute a seeded initialization
    # (documented in DESIGN.md) — what matters downstream is only that
    # every node starts from the same exact parameters.
    initial = create_model(
        config.architecture,
        num_classes=config.num_classes,
        scale=config.scale,
        seed=config.base_seed,
    )
    store("U_1", initial.state_dict(), None, None)

    # U_3-1-n: node-side retraining on the local dataset, chained.
    state = steps[0].load_state()
    base_index = 0
    for n in range(1, config.iterations + 1):
        state, run = _derive(
            config, state, u3_root, config.u3_epochs, seed=config.base_seed + 100 + n
        )
        store(f"U_3-1-{n}", state, base_index, run)
        base_index = len(steps) - 1

    # U_2: server-side improvement of the *initial* model (base is U_1).
    state, run = _derive(
        config, steps[0].load_state(), u2_root, config.u2_epochs, seed=config.base_seed + 200
    )
    store("U_2", state, 0, run)
    u2_index = len(steps) - 1

    # U_3-2-n: node-side retraining continuing from U_2.
    base_index = u2_index
    for n in range(1, config.iterations + 1):
        state, run = _derive(
            config, state, u3_root, config.u3_epochs, seed=config.base_seed + 300 + n
        )
        store(f"U_3-2-{n}", state, base_index, run)
        base_index = len(steps) - 1

    _save_manifest(chain_dir, steps)
    return ModelChain(config=config, steps=steps)


def _save_manifest(chain_dir: Path, steps: list[ChainStep]) -> None:
    payload = [
        {
            "use_case": step.use_case,
            "base_index": step.base_index,
            "state_file": step.state_file.name,
            "run": step.run.to_dict() if step.run else None,
        }
        for step in steps
    ]
    (chain_dir / "chain.json").write_text(json.dumps(payload, indent=2))


def _load_chain(config: ChainConfig, chain_dir: Path) -> ModelChain:
    payload = json.loads((chain_dir / "chain.json").read_text())
    steps = [
        ChainStep(
            use_case=entry["use_case"],
            base_index=entry["base_index"],
            state_file=chain_dir / entry["state_file"],
            run=TrainingRun.from_dict(entry["run"]) if entry["run"] else None,
        )
        for entry in payload
    ]
    return ModelChain(config=config, steps=steps)
