"""Synthetic text corpora: small datasets for the §4.7 NLP scenario.

Token-id sequences with class-dependent distributions, stored in the same
directory layout the image datasets use (npy shards + manifest) so the
DatasetManager, wrappers, and TrainService machinery apply unchanged.
A full corpus is a few hundred KB — orders of magnitude below the image
datasets, which is precisely the regime where the MPA dominates.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..nn.data import Dataset

__all__ = ["generate_text_corpus", "SyntheticTextCorpus"]

_MANIFEST = "manifest.json"


def generate_text_corpus(
    root: str | Path,
    num_documents: int = 2_000,
    sequence_length: int = 64,
    vocab_size: int = 50_000,
    num_classes: int = 4,
    seed: int = 99,
) -> Path:
    """Materialize a synthetic labelled token corpus; returns its path.

    Each class draws tokens from a shifted Zipf-like distribution, so the
    classification task is learnable.  Deterministic in its arguments.
    """
    root = Path(root) / f"text-{num_documents}x{sequence_length}-v{vocab_size}"
    if (root / _MANIFEST).exists():
        return root
    root.mkdir(parents=True, exist_ok=True)

    generator = np.random.Generator(np.random.PCG64(seed))
    labels = generator.integers(0, num_classes, size=num_documents, dtype=np.int64)
    # Zipf-ish ranks, shifted per class so classes are separable
    ranks = generator.zipf(1.3, size=(num_documents, sequence_length)).astype(np.int64)
    shift = (labels * (vocab_size // num_classes)).reshape(-1, 1)
    tokens = (ranks + shift) % vocab_size

    np.save(root / "tokens.npy", tokens)
    np.save(root / "labels.npy", labels)
    manifest = {
        "kind": "text",
        "num_documents": num_documents,
        "sequence_length": sequence_length,
        "vocab_size": vocab_size,
        "num_classes": num_classes,
        "seed": seed,
    }
    (root / _MANIFEST).write_text(json.dumps(manifest, indent=2))
    return root


class SyntheticTextCorpus(Dataset):
    """Map-style dataset over a generated token corpus."""

    def __init__(self, root: str | Path, vocab_size: int | None = None):
        self.root = Path(root)
        manifest_path = self.root / _MANIFEST
        if not manifest_path.exists():
            raise FileNotFoundError(f"not a synthetic text corpus: {self.root}")
        self.manifest = json.loads(manifest_path.read_text())
        self.tokens = np.load(self.root / "tokens.npy", mmap_mode="r")
        self.labels = np.load(self.root / "labels.npy")
        # optional vocab clamp so smaller embedding tables can train on the
        # same stored corpus deterministically
        self._vocab_size = vocab_size

    @property
    def vocab_size(self) -> int:
        return self._vocab_size or self.manifest["vocab_size"]

    @property
    def num_classes(self) -> int:
        return self.manifest["num_classes"]

    def __len__(self) -> int:
        return self.manifest["num_documents"]

    def __getitem__(self, index: int):
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for {len(self)} documents")
        tokens = np.asarray(self.tokens[index], dtype=np.int64) % self.vocab_size
        return tokens, np.int64(self.labels[index])
