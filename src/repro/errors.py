"""Base exception types shared by every repro subsystem.

This module is intentionally a leaf (no intra-package imports): the
storage substrates (:mod:`repro.filestore`, :mod:`repro.docstore`) need
the typed error hierarchy, but :mod:`repro.core` imports the file store,
so the common types must live below both.  :mod:`repro.core.errors`
re-exports everything here and adds the MMlib-level error types.

The two store errors split failures along the axis that matters for
callers: :class:`TransientStoreError` is *retryable* (the operation may
succeed if repeated), :class:`StoreCorruptionError` is not (the stored
bytes are wrong; retrying a read may help only when the corruption
happened in transit).  Both derive from :class:`OSError` as well, so
pre-existing handlers written against bare I/O errors keep working.
"""

from __future__ import annotations

__all__ = [
    "MMLibError",
    "TransientStoreError",
    "StoreCorruptionError",
    "QuorumWriteError",
    "DeadlineExceededError",
]


class MMLibError(Exception):
    """Base class for all MMlib errors."""


class TransientStoreError(MMLibError, OSError):
    """A storage operation failed in a way that a retry may fix.

    Raised for injected chaos faults (transient I/O errors, torn writes,
    document-store outages) and for real connection-level failures in the
    document-store client.  Retry policies treat this type as retryable.
    """


class QuorumWriteError(TransientStoreError):
    """A replicated write reached fewer members than its write quorum.

    Retryable: replicated chunk and blob writes are content-addressed or
    target a fixed id, so repeating the whole quorum write is idempotent —
    members that already hold the payload simply acknowledge again.
    """


class DeadlineExceededError(MMLibError, OSError):
    """An operation's deadline expired before it could complete.

    Deliberately *not* a :class:`TransientStoreError`: once the deadline
    is gone there is no time left to retry in, so retry policies must
    propagate this immediately instead of burning the remaining attempt
    budget.  The ``__cause__`` chain carries the last underlying failure
    (if any) for diagnosis.
    """


class StoreCorruptionError(MMLibError, OSError):
    """Stored or transferred bytes fail an integrity check.

    Raised when a blob's content digest, a chunk's content hash, or a
    manifest's structure does not match what was recorded at save time.
    Corruption *at rest* cannot be retried away; corruption *in transit*
    (a bad read) can, so read paths may re-fetch on this error.
    """
