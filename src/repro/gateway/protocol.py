"""Wire protocol for the serving gateway.

The gateway speaks newline-delimited JSON over TCP — the same framing as
:mod:`repro.docstore.server`, chosen for debuggability (``nc`` works) and
because every payload the registry moves is already JSON-friendly
(model states travel base64-encoded).  Each request carries a client-
assigned ``id`` so responses can be matched out of order: the server
pipelines, handling every request on the connection concurrently.

Request shape::

    {"id": 7, "op": "save", "tenant": "acme", "deadline_s": 2.5, ...}

Response shape::

    {"id": 7, "ok": true, ...}                      # success
    {"id": 7, "ok": false, "error": {"kind": "overloaded",
     "message": "...", "retryable": true, "retry_after_s": 0.05}}

Error *kinds* are the stable contract: clients dispatch on ``kind`` and
``retryable``, never on message text.  Retryable kinds mean "the request
was not applied; back off and resend" — the gateway never sheds work
silently and never leaves a socket hanging, so a client that got no
response knows the connection (not the request semantics) failed.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import (
    DeadlineExceededError,
    MMLibError,
    StoreCorruptionError,
    TransientStoreError,
)

__all__ = [
    "ERROR_KINDS",
    "MAX_LINE_BYTES",
    "GatewayError",
    "decode_line",
    "encode_line",
    "error_payload",
    "error_from_exception",
]

#: Upper bound on one framed message.  Large enough for base64 of a
#: multi-megabyte model state, small enough to stop a runaway client
#: from ballooning server memory.
MAX_LINE_BYTES = 64 * 1024 * 1024

#: kind -> retryable.  The client raises retryable kinds as
#: :class:`GatewayRetryableError` (a ``TransientStoreError``) so the
#: existing :class:`repro.retry.RetryPolicy` handles backoff unchanged.
ERROR_KINDS: dict[str, bool] = {
    "overloaded": True,  # tenant queue full — shed, back off
    "quota": True,  # token bucket empty — honor retry_after_s
    "deadline": True,  # budget expired before/while executing
    "unavailable": True,  # transient storage failure under the op
    "shutting_down": True,  # server draining; reconnect elsewhere
    "not_found": False,
    "invalid": False,  # malformed request / unknown op
    "forbidden": False,  # cross-tenant access attempt
    "corrupt": False,  # integrity check failed server-side
    "internal": False,
}


class GatewayError(MMLibError):
    """Server-side typed rejection; serialized into the error payload."""

    def __init__(
        self,
        kind: str,
        message: str,
        *,
        retry_after_s: float | None = None,
    ):
        if kind not in ERROR_KINDS:
            raise ValueError(f"unknown gateway error kind {kind!r}")
        super().__init__(message)
        self.kind = kind
        self.retryable = ERROR_KINDS[kind]
        self.retry_after_s = retry_after_s


def error_payload(exc: GatewayError) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "kind": exc.kind,
        "message": str(exc),
        "retryable": exc.retryable,
    }
    if exc.retry_after_s is not None:
        payload["retry_after_s"] = round(exc.retry_after_s, 4)
    return payload


def error_from_exception(exc: BaseException) -> GatewayError:
    """Map an arbitrary worker-side exception onto a typed gateway error."""
    if isinstance(exc, GatewayError):
        return exc
    # Local import: repro.core pulls in the whole storage stack and the
    # protocol module must stay importable from the lightweight client.
    from ..core.errors import ModelNotFoundError

    if isinstance(exc, DeadlineExceededError):
        return GatewayError("deadline", str(exc) or "deadline exceeded")
    if isinstance(exc, ModelNotFoundError):
        return GatewayError("not_found", str(exc))
    if isinstance(exc, StoreCorruptionError):
        return GatewayError("corrupt", str(exc))
    if isinstance(exc, TransientStoreError):
        return GatewayError("unavailable", str(exc))
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return GatewayError("invalid", f"{type(exc).__name__}: {exc}")
    return GatewayError("internal", f"{type(exc).__name__}: {exc}")


def encode_line(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON frame."""
    data = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(data) + 1 > MAX_LINE_BYTES:
        raise GatewayError(
            "invalid", f"message of {len(data)} bytes exceeds {MAX_LINE_BYTES}"
        )
    return data + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one received frame; raises ``GatewayError('invalid')`` on junk."""
    if len(line) > MAX_LINE_BYTES:
        raise GatewayError(
            "invalid", f"frame of {len(line)} bytes exceeds {MAX_LINE_BYTES}"
        )
    try:
        message = json.loads(line)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GatewayError("invalid", f"malformed JSON frame: {exc}") from exc
    if not isinstance(message, dict):
        raise GatewayError("invalid", "frame must be a JSON object")
    return message
