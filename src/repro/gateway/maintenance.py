"""Idle-loop background maintenance for the gateway.

First step toward the ROADMAP's TTR-driven compaction scheduler: instead
of a cron-style fixed cadence, the gateway compacts *when the obs plane
says recovery is getting expensive and the serving plane says it has
slack*.  The recovery path publishes the deepest chain it has replayed
(``mmlib_recovery_depth_max``, set in
:meth:`repro.core.abstract.AbstractSaveService.recover_model`); when that
high-water mark crosses the compaction threshold K and no requests are
in flight, the idle loop runs :class:`~repro.core.compaction.ChainCompactor`
over every tenant and resets the mark.

The hook runs on the gateway's worker pool (never the event loop), and
``min_interval_s`` stops a hot gauge from triggering back-to-back sweeps.
"""

from __future__ import annotations

import threading

from .. import obs
from ..core.compaction import DEFAULT_MAX_DEPTH, ChainCompactor

__all__ = ["IdleMaintenance", "RECOVERY_DEPTH_GAUGE"]

#: Family name of the recovery-depth high-water mark gauge.
RECOVERY_DEPTH_GAUGE = "mmlib_recovery_depth_max"


class IdleMaintenance:
    """Run chain compaction across tenants when the gateway goes idle.

    ``registry`` is a :class:`~repro.gateway.tenancy.TenantRegistry`;
    ``max_depth`` is the K threshold — both the trigger level for the
    depth gauge and the bound passed to the compactor.
    """

    def __init__(
        self,
        registry,
        max_depth: int = DEFAULT_MAX_DEPTH,
        min_interval_s: float = 5.0,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.registry = registry
        self.max_depth = max_depth
        self.min_interval_s = min_interval_s
        self._lock = threading.Lock()
        self._last_run: float | None = None
        metrics = obs.registry()
        self._depth_gauge = metrics.gauge(
            RECOVERY_DEPTH_GAUGE, "Deepest delta chain replayed by a recover"
        )
        self._obs_runs = metrics.counter(
            "mmlib_gateway_maintenance_total",
            "Idle-loop maintenance sweeps",
            kind="compaction",
        )
        self.runs = 0
        self.compacted_models = 0

    def due(self) -> bool:
        """True when the depth mark crossed K and the cooldown elapsed."""
        if self._depth_gauge.value < self.max_depth:
            return False
        if self._last_run is None:
            return True
        return obs.clock().perf() - self._last_run >= self.min_interval_s

    def maybe_run(self) -> int:
        """Compact if :meth:`due`; returns models compacted this sweep.

        Serialized by an internal lock — concurrent idle polls collapse
        to one sweep.  The depth mark is reset *after* a successful
        sweep, so a failure leaves the trigger armed for the next idle
        window.
        """
        if not self.due():
            return 0
        with self._lock:
            if not self.due():  # lost the race to a concurrent sweep
                return 0
            compacted = 0
            for tenant in self.registry.tenants():
                compactor = ChainCompactor(
                    tenant.service, max_depth=self.max_depth
                )
                report = compactor.run()
                compacted += len(report["materialized"])
            self._depth_gauge.set(0)
            self._last_run = obs.clock().perf()
            self.runs += 1
            self.compacted_models += compacted
            self._obs_runs.inc()
            obs.events().emit(
                "gateway.maintenance.compacted",
                models=compacted,
                max_depth=self.max_depth,
            )
            return compacted
