"""Admission control: token-bucket quotas and bounded per-tenant queues.

The gateway's first line of defense.  Every request passes through
:meth:`AdmissionController.admit` *before* any storage work happens;
rejections are cheap (no thread-pool hop, no deserialization of model
bytes beyond measuring them) so an overloaded gateway stays responsive
while shedding.

Two independent mechanisms per tenant:

* **Token buckets** (requests/sec and bytes/sec) enforce the tenant's
  contracted rate.  An empty bucket rejects with ``quota`` and an honest
  ``retry_after_s`` — the time until enough tokens refill — so a
  well-behaved client backs off exactly as long as needed.
* **Inflight bound** caps admitted-but-unfinished requests.  When one
  tenant's workload outruns the worker pool, *its* queue fills and *its*
  requests shed with ``overloaded``; other tenants' queues are untouched.
  This is the isolation property the serving benchmark gates on.

Time comes from :func:`repro.obs.clock` so tests drive the buckets with
a ``FakeClock`` instead of sleeping.
"""

from __future__ import annotations

import threading

from .. import obs
from .protocol import GatewayError
from .tenancy import TenantQuota

__all__ = ["TokenBucket", "AdmissionController", "AdmissionTicket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/sec, capacity ``burst``."""

    def __init__(self, rate: float, burst: float, clock=None):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else obs.clock()
        self._tokens = self.burst
        self._stamp = self._clock.perf()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock.perf()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def retry_after(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available."""
        with self._lock:
            self._refill_locked()
            deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


class AdmissionTicket:
    """Proof of admission; releasing it frees the tenant's queue slot."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str):
        self._controller = controller
        self._tenant = tenant
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._tenant)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """Per-tenant quota enforcement shared by every gateway connection."""

    def __init__(self, quotas: dict[str, TenantQuota], clock=None):
        self._clock = clock if clock is not None else obs.clock()
        self._quotas = dict(quotas)
        self._request_buckets = {
            name: TokenBucket(q.requests_per_s, q.burst_requests, self._clock)
            for name, q in self._quotas.items()
        }
        self._byte_buckets = {
            name: TokenBucket(q.bytes_per_s, q.burst_bytes, self._clock)
            for name, q in self._quotas.items()
        }
        self._inflight = {name: 0 for name in self._quotas}
        self._lock = threading.Lock()
        registry = obs.registry()
        self._obs_depth = {
            name: registry.gauge(
                "mmlib_gateway_queue_depth",
                "Admitted-but-unfinished gateway requests",
                tenant=name,
            )
            for name in self._quotas
        }
        self._obs_outcomes = {
            (name, outcome): registry.counter(
                "mmlib_gateway_admission_total",
                "Gateway admission decisions",
                tenant=name,
                outcome=outcome,
            )
            for name in self._quotas
            for outcome in ("admitted", "shed_overloaded", "shed_quota")
        }

    def admit(self, tenant: str, nbytes: int = 0) -> AdmissionTicket:
        """Admit one request of ``nbytes`` payload or raise a typed shed.

        Checks run cheapest-first and the queue slot is taken *last*, so
        a rejection never leaks a slot.  Byte tokens are only charged
        once the request is otherwise admitted (a shed request costs the
        tenant nothing).
        """
        quota = self._quotas.get(tenant)
        if quota is None:
            raise GatewayError("forbidden", f"unknown tenant {tenant!r}")
        requests = self._request_buckets[tenant]
        if not requests.try_acquire(1.0):
            self._obs_outcomes[(tenant, "shed_quota")].inc()
            raise GatewayError(
                "quota",
                f"tenant {tenant!r} request rate exceeded",
                retry_after_s=requests.retry_after(1.0),
            )
        if nbytes > 0:
            bytes_bucket = self._byte_buckets[tenant]
            amount = min(float(nbytes), bytes_bucket.burst)
            if not bytes_bucket.try_acquire(amount):
                self._obs_outcomes[(tenant, "shed_quota")].inc()
                raise GatewayError(
                    "quota",
                    f"tenant {tenant!r} byte rate exceeded",
                    retry_after_s=bytes_bucket.retry_after(amount),
                )
        with self._lock:
            if self._inflight[tenant] >= quota.max_inflight:
                shed = True
            else:
                self._inflight[tenant] += 1
                depth = self._inflight[tenant]
                shed = False
        if shed:
            self._obs_outcomes[(tenant, "shed_overloaded")].inc()
            raise GatewayError(
                "overloaded",
                f"tenant {tenant!r} queue full "
                f"({quota.max_inflight} requests in flight)",
                retry_after_s=0.05,
            )
        self._obs_depth[tenant].set(depth)
        self._obs_outcomes[(tenant, "admitted")].inc()
        return AdmissionTicket(self, tenant)

    def _release(self, tenant: str) -> None:
        with self._lock:
            self._inflight[tenant] -= 1
            depth = self._inflight[tenant]
        self._obs_depth[tenant].set(depth)

    def inflight(self, tenant: str) -> int:
        with self._lock:
            return self._inflight[tenant]

    def total_inflight(self) -> int:
        with self._lock:
            return sum(self._inflight.values())
