"""Async client for the serving gateway.

One :class:`AsyncGatewayClient` holds one TCP connection and pipelines
requests over it: each request gets a client-assigned id and an awaiting
future; a single reader task matches responses back by id, so any number
of coroutines can share the connection concurrently.

Error handling mirrors the storage stack's retry contract:

* retryable rejections (``overloaded``, ``quota``, ``deadline``,
  ``unavailable``, ``shutting_down``) raise
  :class:`GatewayRetryableError` — a :class:`TransientStoreError`
  subclass, so the existing :class:`repro.retry.RetryPolicy` backs off
  and resends without new plumbing;
* permanent rejections raise :class:`GatewayRequestError`;
* a torn connection fails every in-flight request with
  :class:`GatewayConnectionError` (also retryable) — no caller is ever
  left awaiting a response that cannot arrive.

Deadlines propagate implicitly: inside a ``repro.deadline.scope`` the
client stamps the ambient remaining budget onto each request, and the
server re-enters that budget (minus queue wait) on its worker thread.
"""

from __future__ import annotations

import asyncio
import base64
import itertools
from dataclasses import dataclass

from .. import deadline
from ..errors import MMLibError, TransientStoreError
from .protocol import MAX_LINE_BYTES, decode_line, encode_line

__all__ = [
    "AsyncGatewayClient",
    "GatewayRequestError",
    "GatewayRetryableError",
    "GatewayConnectionError",
    "RecoveredState",
]


class GatewayRequestError(MMLibError):
    """The gateway rejected a request permanently (not retryable)."""

    def __init__(self, kind: str, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.kind = kind
        self.retryable = False
        self.retry_after_s = retry_after_s


class GatewayRetryableError(TransientStoreError):
    """The gateway shed or failed a request in a retryable way."""

    def __init__(self, kind: str, message: str, retry_after_s: float | None = None):
        super().__init__(message)
        self.kind = kind
        self.retryable = True
        self.retry_after_s = retry_after_s


class GatewayConnectionError(GatewayRetryableError):
    """The gateway connection died with requests in flight."""

    def __init__(self, message: str):
        super().__init__("unavailable", message)


def _raise_for_error(error: dict) -> None:
    kind = error.get("kind", "internal")
    message = error.get("message", "")
    retry_after = error.get("retry_after_s")
    if error.get("retryable", False):
        raise GatewayRetryableError(kind, message, retry_after)
    raise GatewayRequestError(kind, message, retry_after)


@dataclass
class RecoveredState:
    """Result of :meth:`AsyncGatewayClient.recover_model`."""

    model_id: str
    state: dict
    verified: bool | None
    recovery_depth: int
    base_model_id: str | None


class AsyncGatewayClient:
    """One tenant's pipelined connection to a :class:`GatewayServer`."""

    #: Slack added to ``deadline_s`` before the client gives up waiting for
    #: any response at all (the hung-server guard).  Class-level so tests
    #: can shrink it without patching live requests.
    grace_s = 5.0

    def __init__(self, host: str, port: int, tenant: str):
        self.host = host
        self.port = port
        self.tenant = tenant
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._reader_task: asyncio.Task | None = None
        self._pending: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    async def connect(self) -> "AsyncGatewayClient":
        if self._writer is not None:
            raise RuntimeError("client already connected")
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_responses())
        return self

    async def close(self) -> None:
        self._closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None
        self._fail_pending(GatewayConnectionError("client closed"))

    async def __aenter__(self) -> "AsyncGatewayClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    async def _read_responses(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                response = decode_line(line)
                future = self._pending.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(
                GatewayConnectionError(f"gateway connection failed: {exc}")
            )
            return
        self._fail_pending(GatewayConnectionError("gateway closed the connection"))

    # -- core request ------------------------------------------------------

    async def request(self, op: str, deadline_s: float | None = None, **fields) -> dict:
        """Send one request; return the response body or raise typed errors.

        ``deadline_s`` defaults to the ambient :mod:`repro.deadline`
        budget when one is active.  The response future is additionally
        bounded client-side (budget + a grace period) so even a
        misbehaving server cannot hang the caller.
        """
        if self._writer is None:
            raise GatewayConnectionError("client is not connected")
        if deadline_s is None and deadline.current() is not None:
            deadline_s = max(deadline.remaining(), 0.001)
        request_id = next(self._ids)
        message: dict = {"id": request_id, "op": op, "tenant": self.tenant}
        if deadline_s is not None:
            message["deadline_s"] = deadline_s
        message.update(fields)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        try:
            data = encode_line(message)
            async with self._write_lock:
                self._writer.write(data)
                await self._writer.drain()
            if deadline_s is not None:
                response = await asyncio.wait_for(future, deadline_s + self.grace_s)
            else:
                response = await future
        except asyncio.TimeoutError:
            # distinct from the server's typed "deadline" rejection: here NO
            # response arrived at all — the hung-socket case the bench gates on
            self._pending.pop(request_id, None)
            raise GatewayRetryableError(
                "timeout", f"no response to {op!r} within budget + grace"
            ) from None
        except ConnectionError as exc:
            self._pending.pop(request_id, None)
            raise GatewayConnectionError(str(exc)) from exc
        finally:
            self._pending.pop(request_id, None)
        if not response.get("ok", False):
            _raise_for_error(response.get("error", {}))
        return response

    # -- convenience ops ---------------------------------------------------

    async def ping(self) -> dict:
        return await self.request("ping")

    async def save_model(
        self,
        factory: str,
        state: dict | None = None,
        factory_kwargs: dict | None = None,
        base: str | None = None,
        use_case: str | None = None,
        deadline_s: float | None = None,
    ) -> str:
        """Save a model built by ``factory`` (``"module:callable"``).

        ``state`` is a state dict (arrays) loaded into the freshly built
        module server-side; omit it to save the factory's initial state.
        Returns the qualified model id (``<tenant>/<id>``).
        """
        from ..nn import serialization

        module, _, name = factory.partition(":")
        if not module or not name:
            raise ValueError(f"factory must be 'module:callable', got {factory!r}")
        fields: dict = {
            "factory_module": module,
            "factory_name": name,
            "factory_kwargs": factory_kwargs or {},
        }
        if state is not None:
            fields["state_b64"] = base64.b64encode(
                serialization.dumps(state)
            ).decode("ascii")
        if base is not None:
            fields["base"] = base
        if use_case is not None:
            fields["use_case"] = use_case
        response = await self.request("save", deadline_s=deadline_s, **fields)
        return response["model_id"]

    async def recover_model(
        self,
        model_id: str,
        verify: bool = True,
        deadline_s: float | None = None,
    ) -> RecoveredState:
        from ..nn import serialization

        response = await self.request(
            "recover", deadline_s=deadline_s, model_id=model_id, verify=verify
        )
        state = serialization.loads(base64.b64decode(response["state_b64"]))
        return RecoveredState(
            model_id=response["model_id"],
            state=state,
            verified=response.get("verified"),
            recovery_depth=response.get("recovery_depth", 0),
            base_model_id=response.get("base_model_id"),
        )

    async def find(
        self, use_case: str | None = None, deadline_s: float | None = None
    ) -> list[dict]:
        fields = {"use_case": use_case} if use_case is not None else {}
        response = await self.request("find", deadline_s=deadline_s, **fields)
        return response["models"]

    async def delete_model(
        self, model_id: str, force: bool = False, deadline_s: float | None = None
    ) -> None:
        await self.request(
            "delete", deadline_s=deadline_s, model_id=model_id, force=force
        )

    async def stats(self, deadline_s: float | None = None) -> dict:
        response = await self.request("stats", deadline_s=deadline_s)
        return response["stats"]
