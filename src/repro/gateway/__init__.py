"""``repro.gateway`` — the async multi-tenant serving gateway.

The deployment's front door: an asyncio TCP server exposing
save/recover/find/stats over :class:`~repro.core.manager.ModelManager`,
with per-tenant namespaces, token-bucket quotas, bounded queues with
typed load shedding, client-propagated deadlines, and idle-time
background maintenance.  See ``docs/ARCHITECTURE.md`` ("Serving plane")
for the request path.
"""

from .admission import AdmissionController, AdmissionTicket, TokenBucket
from .client import (
    AsyncGatewayClient,
    GatewayConnectionError,
    GatewayRequestError,
    GatewayRetryableError,
    RecoveredState,
)
from .maintenance import RECOVERY_DEPTH_GAUGE, IdleMaintenance
from .protocol import ERROR_KINDS, MAX_LINE_BYTES, GatewayError
from .server import GatewayServer
from .tenancy import (
    Tenant,
    TenantQuota,
    TenantRegistry,
    qualify_id,
    split_qualified_id,
)

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "TokenBucket",
    "AsyncGatewayClient",
    "GatewayConnectionError",
    "GatewayRequestError",
    "GatewayRetryableError",
    "RecoveredState",
    "IdleMaintenance",
    "RECOVERY_DEPTH_GAUGE",
    "ERROR_KINDS",
    "MAX_LINE_BYTES",
    "GatewayError",
    "GatewayServer",
    "Tenant",
    "TenantQuota",
    "TenantRegistry",
    "qualify_id",
    "split_qualified_id",
]
