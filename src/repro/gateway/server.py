"""The asyncio serving gateway: the deployment's multi-tenant front door.

One :class:`GatewayServer` runs an asyncio event loop (in a background
thread, so tests and the CLI can drive it from synchronous code) and
accepts JSON-lines TCP connections.  The split of work is strict:

* **Event loop**: framing, admission control, response writing.  Nothing
  here blocks — a rejected request never touches the thread pool, which
  is what keeps the gateway responsive while shedding under overload.
* **Worker pool**: everything that talks to storage.  The synchronous
  stack (save transactions, quorum writes, chain recovery, retries) runs
  unchanged on pool threads; per-thread write-ahead journals make
  concurrent saves from different workers safe.

Requests pipeline per connection — each incoming frame becomes its own
task, responses are written under a lock in completion order, and the
client matches them back by ``id``.

Deadlines: a client sends its remaining budget as ``deadline_s``.  The
gateway stamps admission time; when a worker thread finally picks the
request up it subtracts the queue wait and enters
:func:`repro.deadline.scope` with what is left, so storage-layer retry
loops and quorum paths see the *client's* budget.  A request whose
budget died in the queue fails immediately with the typed ``deadline``
error — never a hung socket.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor

from .. import deadline, obs
from ..errors import DeadlineExceededError
from .admission import AdmissionController
from .protocol import (
    MAX_LINE_BYTES,
    GatewayError,
    decode_line,
    encode_line,
    error_from_exception,
    error_payload,
)
from .tenancy import TenantRegistry

__all__ = ["GatewayServer"]

#: Factory modules a save request may reference.  ``ArchitectureRef``
#: imports the named module server-side; an open prefix list would make
#: ``save`` an arbitrary-import primitive.
ALLOWED_FACTORY_PREFIXES = ("repro.", "tests.")


class GatewayServer:
    """Serve save/recover/find/stats for every tenant in ``registry``.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  ``maintenance`` is an optional
    :class:`~repro.gateway.maintenance.IdleMaintenance`; when set, an
    idle-loop task runs it whenever no request is in flight.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 4,
        maintenance=None,
        idle_poll_s: float = 0.05,
    ):
        self.registry = registry
        self.host = host
        self.port = port
        self.admission = AdmissionController(
            {t.name: t.quota for t in registry.tenants()}
        )
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="gateway-worker"
        )
        # per-tenant execution slots: admission bounds how much a tenant may
        # *queue*; these bound how much it may *run*, so a saturated tenant
        # cannot occupy the whole pool and head-of-line-block the others
        # (asyncio primitives bind to the gateway loop on first acquire)
        self._exec_slots = {
            t.name: asyncio.Semaphore(t.quota.max_concurrency)
            for t in registry.tenants()
        }
        self._maintenance = maintenance
        self._idle_poll_s = idle_poll_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._draining = False
        metrics = obs.registry()
        self._metrics = metrics
        self._obs_connections = metrics.counter(
            "mmlib_gateway_connections_total", "Accepted gateway connections"
        )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "GatewayServer":
        if self._thread is not None:
            raise RuntimeError("gateway already started")
        self._thread = threading.Thread(
            target=self._run, name="gateway-loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("gateway event loop failed to start")
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(
                        self._serve_connection,
                        self.host,
                        self.port,
                        limit=MAX_LINE_BYTES,
                    )
                )
            except BaseException as exc:
                self._startup_error = exc
                self._started.set()
                return
            self._server = server
            self.port = server.sockets[0].getsockname()[1]
            idle_task = None
            if self._maintenance is not None:
                idle_task = loop.create_task(self._idle_loop())
            self._started.set()
            loop.run_forever()
            loop.run_until_complete(self._shutdown(idle_task))
        finally:
            asyncio.set_event_loop(None)
            loop.close()

    async def _shutdown(self, idle_task) -> None:
        if idle_task is not None:
            idle_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await idle_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = [
            task
            for task in asyncio.all_tasks(self._loop)
            if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    def stop(self) -> None:
        if self._thread is None:
            return
        self._draining = True
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._thread = None
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def serve_forever(self, duration_s: float | None = None) -> None:
        """Blocking serve (for ``mmlib serve``); Ctrl-C or timeout stops."""
        import time

        self.start()
        try:
            if duration_s is None:
                while True:
                    time.sleep(1.0)
            else:
                time.sleep(duration_s)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- connection handling (event loop) ----------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        self._obs_connections.inc()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError, asyncio.LimitOverrunError):
                    # oversized frame or torn connection — nothing sane to
                    # answer on this socket anymore
                    break
                if not line:
                    break
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # the client closed its write side; finish answering what was
            # already submitted before tearing the socket down
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer, write_lock, message: dict) -> None:
        try:
            data = encode_line(message)
        except GatewayError as exc:
            data = encode_line(
                {"id": message.get("id"), "ok": False, "error": error_payload(exc)}
            )
        async with write_lock:
            writer.write(data)
            with contextlib.suppress(ConnectionError):
                await writer.drain()

    async def _handle_line(self, line: bytes, writer, write_lock) -> None:
        request_id = None
        try:
            request = decode_line(line)
            request_id = request.get("id")
            response = await self._handle_request(request, len(line))
        except GatewayError as exc:
            response = {"ok": False, "error": error_payload(exc)}
        except Exception as exc:  # never let a bug hang the socket
            response = {"ok": False, "error": error_payload(error_from_exception(exc))}
        response["id"] = request_id
        await self._send(writer, write_lock, response)

    async def _handle_request(self, request: dict, nbytes: int) -> dict:
        op = request.get("op")
        if not isinstance(op, str):
            raise GatewayError("invalid", "request needs a string 'op'")
        if op == "ping":  # health probe: no tenant, no admission
            return {"ok": True, "pong": True, "draining": self._draining}
        if self._draining:
            raise GatewayError("shutting_down", "gateway is draining")
        tenant_name = request.get("tenant")
        if not isinstance(tenant_name, str):
            raise GatewayError("invalid", f"op {op!r} needs a string 'tenant'")
        tenant = self.registry.tenant(tenant_name)
        ticket = self.admission.admit(tenant_name, nbytes)
        admitted_at = obs.clock().perf()
        deadline_s = request.get("deadline_s")
        if deadline_s is not None and not isinstance(deadline_s, (int, float)):
            ticket.release()
            raise GatewayError("invalid", "'deadline_s' must be a number")
        status = "error"
        try:
            assert self._loop is not None
            async with self._exec_slots[tenant_name]:
                result = await self._loop.run_in_executor(
                    self._executor,
                    self._execute,
                    request,
                    tenant,
                    admitted_at,
                    deadline_s,
                )
            status = "ok"
            return {"ok": True, **result}
        except GatewayError as exc:
            status = exc.kind
            raise
        except Exception as exc:
            mapped = error_from_exception(exc)
            status = mapped.kind
            raise mapped from exc
        finally:
            ticket.release()
            elapsed = obs.clock().perf() - admitted_at
            self._metrics.histogram(
                "mmlib_gateway_request_seconds",
                op=op, tenant=tenant_name,
            ).observe(elapsed)
            self._metrics.counter(
                "mmlib_gateway_requests_total",
                op=op, tenant=tenant_name, status=status,
            ).inc()

    # -- request execution (worker threads) --------------------------------

    def _execute(self, request: dict, tenant, admitted_at: float, deadline_s):
        """Run one admitted request on a pool thread under its deadline."""
        if deadline_s is None:
            return self._dispatch(request, tenant)
        remaining = float(deadline_s) - (obs.clock().perf() - admitted_at)
        if remaining <= 0:
            raise DeadlineExceededError(
                f"deadline budget of {float(deadline_s):.3f}s spent before "
                "execution started (queue wait)"
            )
        with deadline.scope(remaining):
            return self._dispatch(request, tenant)

    def _dispatch(self, request: dict, tenant) -> dict:
        op = request["op"]
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise GatewayError("invalid", f"unknown op {op!r}")
        return handler(request, tenant)

    def _op_save(self, request: dict, tenant) -> dict:
        import base64

        from ..core.save_info import ArchitectureRef, ModelSaveInfo
        from ..nn import serialization

        module = request.get("factory_module")
        factory = request.get("factory_name")
        if not isinstance(module, str) or not isinstance(factory, str):
            raise GatewayError(
                "invalid", "save needs 'factory_module' and 'factory_name'"
            )
        if not module.startswith(ALLOWED_FACTORY_PREFIXES):
            raise GatewayError(
                "forbidden",
                f"factory module {module!r} outside allowed prefixes "
                f"{ALLOWED_FACTORY_PREFIXES}",
            )
        kwargs = request.get("factory_kwargs") or {}
        architecture = ArchitectureRef.from_factory(module, factory, kwargs)
        model = architecture.build()
        state_b64 = request.get("state_b64")
        if state_b64 is not None:
            state = serialization.loads(base64.b64decode(state_b64))
            model.load_state_dict(state)
        base = request.get("base")
        if base is not None:
            base = tenant.resolve(base)
        deadline.check("gateway.save")
        model_id = tenant.service.save_model(
            ModelSaveInfo(
                model=model,
                architecture=architecture,
                base_model_id=base,
                use_case=request.get("use_case"),
            )
        )
        return {"model_id": tenant.qualify(model_id)}

    def _op_recover(self, request: dict, tenant) -> dict:
        import base64

        from ..nn import serialization

        model_id = request.get("model_id")
        if not isinstance(model_id, str):
            raise GatewayError("invalid", "recover needs a string 'model_id'")
        internal = tenant.resolve(model_id)
        recovered = tenant.service.recover_model(
            internal, verify=bool(request.get("verify", True))
        )
        payload = serialization.dumps(recovered.model.state_dict())
        return {
            "model_id": tenant.qualify(recovered.model_id),
            "state_b64": base64.b64encode(payload).decode("ascii"),
            "verified": recovered.verified,
            "recovery_depth": recovered.recovery_depth,
            "base_model_id": (
                tenant.qualify(recovered.base_model_id)
                if recovered.base_model_id
                else None
            ),
        }

    def _op_find(self, request: dict, tenant) -> dict:
        use_case = request.get("use_case")
        if use_case is not None:
            records = tenant.manager.find_by_use_case(use_case)
        else:
            records = tenant.manager.list_models()
        return {
            "models": [
                {
                    "model_id": tenant.qualify(record.model_id),
                    "approach": record.approach,
                    "base_model_id": (
                        tenant.qualify(record.base_model_id)
                        if record.base_model_id
                        else None
                    ),
                    "use_case": record.use_case,
                    "saved_at": record.saved_at,
                }
                for record in records
            ]
        }

    def _op_delete(self, request: dict, tenant) -> dict:
        model_id = request.get("model_id")
        if not isinstance(model_id, str):
            raise GatewayError("invalid", "delete needs a string 'model_id'")
        tenant.manager.delete_model(
            tenant.resolve(model_id), force=bool(request.get("force", False))
        )
        return {"deleted": True}

    def _op_stats(self, request: dict, tenant) -> dict:
        stats = self.registry.admin_manager().stats()
        stats["tenant"] = {
            "name": tenant.name,
            "models": tenant.manager.documents.collection("models").count(),
            "inflight": self.admission.inflight(tenant.name),
        }
        return {"stats": stats}

    # -- idle maintenance --------------------------------------------------

    async def _idle_loop(self) -> None:
        """Run background maintenance whenever the gateway has slack."""
        assert self._loop is not None
        while True:
            await asyncio.sleep(self._idle_poll_s)
            if self.admission.total_inflight() > 0:
                continue
            if not self._maintenance.due():
                continue
            # compaction runs on the pool like any other storage work so
            # the event loop keeps accepting (and shedding) during it
            await self._loop.run_in_executor(
                self._executor, self._maintenance.maybe_run
            )
