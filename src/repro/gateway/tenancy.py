"""Per-tenant registry views for the serving gateway.

A deployment serves many tenants from one set of shared stores.  Each
tenant gets its own *catalog* — a :class:`NamespacedDocumentStore` over
the shared document store, so model/environment documents never leak
across tenants — while all tenants share one content-addressed file
store, so identical chunks dedup across tenants for free (the paper's
storage-consumption win scales with tenant count).

Model ids are exposed to clients in qualified form ``<tenant>/<id>``;
the gateway strips and checks the prefix on every request, so a tenant
holding another tenant's id gets ``forbidden``, not data.

:class:`TenantRegistry` owns one save service + :class:`ModelManager`
per tenant (services are cheap, stateless objects) plus an *admin*
manager over the union of all catalogs — the only view on which fsck
and garbage collection are safe, because the file store's orphan sweep
must see every tenant's references.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.manager import ModelManager
from ..docstore.namespace import (
    NamespacedDocumentStore,
    UnionDocumentStore,
    validate_tenant_name,
)
from .protocol import GatewayError

__all__ = ["TenantQuota", "Tenant", "TenantRegistry", "qualify_id", "split_qualified_id"]


@dataclass(frozen=True)
class TenantQuota:
    """Admission limits for one tenant.

    ``requests_per_s``/``bytes_per_s`` refill the token buckets;
    ``burst_requests``/``burst_bytes`` cap how much unused budget can
    accumulate (the bucket size).  ``max_inflight`` bounds the tenant's
    queue of admitted-but-unfinished requests — beyond it the gateway
    sheds with ``overloaded`` instead of queueing unboundedly.
    ``max_concurrency`` bounds how many of those may *execute* on the
    worker pool at once; keeping the sum of tenant concurrencies at or
    below the pool size is what stops one saturated tenant from
    head-of-line-blocking every other tenant's requests.
    """

    requests_per_s: float = 200.0
    bytes_per_s: float = 64 * 1024 * 1024
    burst_requests: float = 50.0
    burst_bytes: float = 16 * 1024 * 1024
    max_inflight: int = 32
    max_concurrency: int = 4

    def __post_init__(self):
        if self.requests_per_s <= 0 or self.bytes_per_s <= 0:
            raise ValueError("quota rates must be positive")
        if self.burst_requests <= 0 or self.burst_bytes <= 0:
            raise ValueError("quota bursts must be positive")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")


def qualify_id(tenant: str, model_id: str) -> str:
    """External form of a model id: ``<tenant>/<internal-id>``."""
    return f"{tenant}/{model_id}"


def split_qualified_id(tenant: str, qualified: str) -> str:
    """Validate ``qualified`` belongs to ``tenant``; return the internal id.

    Unqualified ids are accepted as shorthand for the caller's own
    namespace.  A qualified id naming *another* tenant raises
    ``forbidden`` — ids are capability-free names, never access grants.
    """
    if "/" not in qualified:
        return qualified
    owner, _, internal = qualified.partition("/")
    if owner != tenant:
        raise GatewayError(
            "forbidden",
            f"model id {qualified!r} belongs to tenant {owner!r}, "
            f"not {tenant!r}",
        )
    if not internal:
        raise GatewayError("invalid", f"malformed model id {qualified!r}")
    return internal


class Tenant:
    """One tenant's slice of the deployment: catalog, service, manager."""

    def __init__(self, name: str, service, quota: TenantQuota):
        self.name = name
        self.service = service
        self.manager = ModelManager(service)
        self.quota = quota

    def qualify(self, model_id: str) -> str:
        return qualify_id(self.name, model_id)

    def resolve(self, qualified: str) -> str:
        return split_qualified_id(self.name, qualified)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tenant({self.name!r})"


class TenantRegistry:
    """Build and hold the per-tenant managers over shared stores.

    ``stores`` is a :class:`~repro.distsim.environment.SharedStores`
    (single-node or clustered — the gateway does not care).  ``tenants``
    maps tenant name to :class:`TenantQuota`; pass a list to accept
    default quotas.
    """

    def __init__(
        self,
        stores,
        tenants,
        approach: str = "param_update",
        dataset_codec: str | None = None,
    ):
        from ..distsim.environment import SERVICE_CLASSES

        if not isinstance(tenants, dict):
            tenants = {name: TenantQuota() for name in tenants}
        if not tenants:
            raise ValueError("TenantRegistry needs at least one tenant")
        if approach not in SERVICE_CLASSES:
            raise KeyError(
                f"unknown approach {approach!r}; options: {sorted(SERVICE_CLASSES)}"
            )
        self.stores = stores
        self.approach = approach
        self._tenants: dict[str, Tenant] = {}
        for name, quota in tenants.items():
            validate_tenant_name(name)
            documents = NamespacedDocumentStore(stores.documents, name)
            service = SERVICE_CLASSES[approach](
                documents,
                stores.files,
                scratch_dir=stores.scratch_dir,
                dataset_codec=dataset_codec,
                retry=stores.retry,
            )
            self._tenants[name] = Tenant(name, service, quota)
        # Admin view: one manager whose document collections span every
        # tenant — the only correct scope for fsck/GC on shared files.
        union = UnionDocumentStore(stores.documents, sorted(self._tenants))
        admin_service = SERVICE_CLASSES[approach](
            union,
            stores.files,
            scratch_dir=stores.scratch_dir,
            dataset_codec=dataset_codec,
            retry=stores.retry,
        )
        self.admin = ModelManager(admin_service)

    @property
    def tenant_names(self) -> list[str]:
        return sorted(self._tenants)

    def tenant(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise GatewayError("forbidden", f"unknown tenant {name!r}") from None

    def tenants(self) -> list[Tenant]:
        return [self._tenants[name] for name in self.tenant_names]

    def admin_manager(self) -> ModelManager:
        return self.admin

    def __contains__(self, name: str) -> bool:
        return name in self._tenants
