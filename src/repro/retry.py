"""Retry with exponential backoff + jitter for flaky storage operations.

The paper's deployment assumes a reliable 3-machine cluster, but the
motivating fleet scenario (vehicles on cellular uplinks, §1) drops
transfers routinely.  :class:`RetryPolicy` is the single knob for "how
hard to try": it wraps any callable, retries the typed transient errors
(:class:`~repro.errors.TransientStoreError` by default) with exponentially
growing, jittered delays, and gives up loudly once the per-call attempt
limit or the policy-wide retry budget is exhausted — the last typed error
propagates, never a bare ``OSError``.

One policy instance is meant to be shared: the file store, the document
store client, and the save services can all point at the same object, so
``stats`` aggregates every retry a chaos run needed and ``retry_budget``
caps the total across all of them.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Callable, Mapping

from . import deadline as deadline_mod
from . import obs
from .errors import DeadlineExceededError, TransientStoreError

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Exponential backoff + jitter with attempt limits and a retry budget.

    Parameters
    ----------
    max_attempts:
        Total tries per :meth:`call` (1 = no retries).
    base_delay_s / multiplier / max_delay_s:
        Backoff schedule: attempt ``n`` waits
        ``min(max_delay_s, base_delay_s * multiplier**(n-1))`` before
        retrying, scaled by jitter.
    jitter:
        Fraction of the delay randomized away (0 = deterministic delays,
        0.5 = each delay is uniform in [50%, 100%] of the schedule).
    retry_budget:
        Optional cap on the *total* number of retries this policy will
        ever perform, across all wrapped operations.  Once spent, failing
        calls raise immediately — the paper-style transfer-budget view of
        fault handling.
    seed:
        Seeds the jitter PRNG so chaos runs are reproducible.
    sleep:
        Injectable clock (tests pass ``lambda s: None``); delays also
        accumulate in ``stats['slept_s']`` either way.
    per_op:
        Overrides by operation name, e.g. ``{"chunk.read":
        {"max_attempts": 8}}`` — reads off a flaky link may deserve more
        patience than document inserts.
    """

    def __init__(
        self,
        max_attempts: int = 5,
        base_delay_s: float = 0.005,
        max_delay_s: float = 1.0,
        multiplier: float = 2.0,
        jitter: float = 0.5,
        retry_budget: int | None = None,
        seed: int = 0,
        sleep: Callable[[float], None] | None = time.sleep,
        per_op: Mapping[str, Mapping] | None = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        self.max_attempts = int(max_attempts)
        self.base_delay_s = float(base_delay_s)
        self.max_delay_s = float(max_delay_s)
        self.multiplier = float(multiplier)
        self.jitter = float(jitter)
        self.retry_budget = retry_budget
        self.per_op = dict(per_op or {})
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.stats = {"calls": 0, "retries": 0, "failures": 0, "slept_s": 0.0}
        self._obs_events = obs.events()
        self._obs_registry = obs.registry()

    # -- schedule ----------------------------------------------------------

    def _param(self, op: str | None, name: str):
        overrides = self.per_op.get(op or "", {})
        return overrides.get(name, getattr(self, name))

    def delay_s(self, attempt: int, op: str | None = None) -> float:
        """Jittered backoff delay before retry number ``attempt`` (1-based)."""
        base = self._param(op, "base_delay_s")
        cap = self._param(op, "max_delay_s")
        delay = min(cap, base * self._param(op, "multiplier") ** max(0, attempt - 1))
        if self.jitter:
            with self._lock:
                delay *= 1.0 - self.jitter * self._rng.random()
        return delay

    @property
    def retries_taken(self) -> int:
        return self.stats["retries"]

    def _budget_left(self) -> bool:
        return self.retry_budget is None or self.stats["retries"] < self.retry_budget

    # -- execution ---------------------------------------------------------

    def call(self, fn: Callable, op: str = "op", retry_on: tuple = (TransientStoreError,)):
        """Run ``fn`` under this policy; returns its result or raises the
        last retryable error once attempts/budget run out.

        Deadline-aware: under an ambient :func:`repro.deadline.scope`,
        retries stop the moment the deadline passes — the typed
        :class:`~repro.errors.DeadlineExceededError` propagates (chaining
        the last underlying failure) instead of the remaining attempt
        budget being burned, and backoff sleeps are capped to the time
        actually left.  :class:`DeadlineExceededError` raised by ``fn``
        itself is likewise never retried.
        """
        with self._lock:
            self.stats["calls"] += 1
        max_attempts = int(self._param(op, "max_attempts"))
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn()
            except DeadlineExceededError:
                with self._lock:
                    self.stats["failures"] += 1
                raise
            except retry_on as exc:
                ambient = deadline_mod.current()
                if ambient is not None and ambient.expired():
                    with self._lock:
                        self.stats["failures"] += 1
                    self._obs_events.emit(
                        "retry_deadline", op=op, attempts=attempt,
                        exception=type(exc).__name__)
                    raise DeadlineExceededError(
                        f"deadline expired after {attempt} attempt(s) of {op!r}"
                    ) from exc
                if attempt >= max_attempts or not self._budget_left():
                    with self._lock:
                        self.stats["failures"] += 1
                    self._obs_registry.counter(
                        "mmlib_retry_exhausted_total",
                        "Calls that exhausted retries", op=op).inc()
                    self._obs_events.emit(
                        "retry_exhausted", op=op, attempts=attempt,
                        exception=type(exc).__name__)
                    raise
                delay = self.delay_s(attempt, op=op)
                if ambient is not None:
                    # never sleep past the deadline; the next attempt (or
                    # the expiry check above) settles the outcome
                    delay = min(delay, ambient.remaining())
                with self._lock:
                    self.stats["retries"] += 1
                    self.stats["slept_s"] += delay
                self._obs_registry.counter(
                    "mmlib_retry_attempts_total",
                    "Retry attempts after failure", op=op).inc()
                self._obs_events.emit(
                    "retry", op=op, attempt=attempt, delay_s=delay,
                    exception=type(exc).__name__)
                if self._sleep is not None and delay > 0:
                    self._sleep(delay)


class _RetryingCollection:
    """Collection proxy that retries transient failures per operation."""

    def __init__(self, collection, policy: RetryPolicy):
        self._collection = collection
        self._policy = policy

    def __getattr__(self, name: str):
        attr = getattr(self._collection, name)
        if not callable(attr) or name.startswith("_"):
            return attr
        policy = self._policy

        def wrapped(*args, **kwargs):
            return policy.call(lambda: attr(*args, **kwargs), op=f"docs.{name}")

        wrapped.__name__ = name
        return wrapped


class RetryingDocumentStore:
    """Document-store proxy whose collections retry transient errors.

    Wraps any object with a ``collection(name)`` method (the embedded
    :class:`~repro.docstore.engine.DocumentStore`, the TCP client, or a
    chaos wrapper) so every collection operation runs under ``policy``.
    All other attributes pass straight through.
    """

    def __init__(self, store, policy: RetryPolicy):
        self._store = store
        self._policy = policy

    def collection(self, name: str) -> _RetryingCollection:
        return _RetryingCollection(self._store.collection(name), self._policy)

    def __getitem__(self, name: str) -> _RetryingCollection:
        return self.collection(name)

    def __getattr__(self, name: str):
        return getattr(self._store, name)


__all__.append("RetryingDocumentStore")
