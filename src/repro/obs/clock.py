"""Injectable time sources for deterministic timing instrumentation.

Every timed code path in the repo (``ttr_timings`` breakdowns, span
durations, flow TTS measurements) reads time through a :class:`Clock`
instead of calling :func:`time.perf_counter` directly.  Production uses
the process-wide :class:`SystemClock`; tests inject a :class:`FakeClock`
whose monotonic reading advances by a fixed tick per call, which turns
"the load phase took some wall time" into "the load phase took exactly
2 ticks" — assertable without sleeping.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "SystemClock", "FakeClock"]


class Clock:
    """Time-source interface: wall clock, monotonic counter, sleep."""

    def now(self) -> float:
        """Wall-clock seconds since the epoch (timestamps in documents)."""
        raise NotImplementedError

    def perf(self) -> float:
        """Monotonic high-resolution seconds (interval measurements)."""
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class SystemClock(Clock):
    """The real process clocks (:mod:`time`)."""

    def now(self) -> float:
        return time.time()

    def perf(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        time.sleep(seconds)


class FakeClock(Clock):
    """Deterministic clock for tests: each ``perf()`` call advances time.

    With ``tick=1.0`` every timed section whose body makes no nested
    clock calls measures exactly 1.0 "seconds", so timing breakdowns
    become exact equalities.  ``sleep`` advances the clock without
    blocking, and ``advance`` moves it manually.
    """

    def __init__(self, start: float = 0.0, tick: float = 1.0, wall_start: float = 1.7e9):
        self._perf = float(start)
        self.tick = float(tick)
        self._wall = float(wall_start)
        self.perf_calls = 0
        self.sleeps: list[float] = []

    def now(self) -> float:
        return self._wall

    def perf(self) -> float:
        value = self._perf
        self._perf += self.tick
        self.perf_calls += 1
        return value

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.advance(seconds)

    def advance(self, seconds: float) -> None:
        self._perf += float(seconds)
        self._wall += float(seconds)
