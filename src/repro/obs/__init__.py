"""repro.obs — unified observability plane (metrics, traces, events).

Three primitives share one injectable clock:

* :class:`~repro.obs.metrics.Registry` — labeled counters / gauges /
  histograms with JSON and Prometheus-text exporters.
* :class:`~repro.obs.trace.Tracer` — hierarchical spans over the full
  save/recover request paths, ring-buffered, JSON-lines export.
* :class:`~repro.obs.events.EventLog` — structured records of notable
  transitions (retries, faults, evictions, degraded writes, repairs).

The module holds process-wide defaults; instrumented components read
them at construction (``obs.registry().counter(...)``) and cache the
handles, so per-operation cost is one attribute access plus one locked
increment.  Setting ``REPRO_OBS=off`` in the environment (or calling
:func:`set_enabled` with ``False``) swaps the defaults for shared null
objects whose methods are no-ops — instrumentation compiles down to
near-zero cost.

This package is a leaf: it imports nothing from the rest of ``repro``,
so any module may depend on it without cycles.
"""

from __future__ import annotations

import os

from .clock import Clock, FakeClock, SystemClock
from .events import Event, EventLog, NullEventLog
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    NullRegistry,
    Registry,
)
from .trace import NullTracer, Span, Tracer

__all__ = [
    "Clock", "SystemClock", "FakeClock",
    "Counter", "Gauge", "Histogram", "Registry", "NullRegistry", "DEFAULT_BUCKETS",
    "Span", "Tracer", "NullTracer",
    "Event", "EventLog", "NullEventLog",
    "enabled", "set_enabled", "configure",
    "registry", "tracer", "events", "clock",
    "counter", "gauge", "histogram", "span", "event",
    "reset", "preregister_default_families",
]

_OFF_VALUES = {"off", "0", "false", "no", "disabled"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "on").strip().lower() not in _OFF_VALUES


_clock: Clock = SystemClock()
_enabled: bool = _env_enabled()
if _enabled:
    _registry: Registry = Registry()
    _tracer: Tracer = Tracer(clock=_clock)
    _events: EventLog = EventLog(clock=_clock)
else:
    _registry = Registry.disabled()
    _tracer = NullTracer(clock=_clock)
    _events = NullEventLog(clock=_clock)


def enabled() -> bool:
    """Whether the process-wide defaults are live (vs null objects)."""
    return _enabled


_stashed: tuple | None = None


def set_enabled(value: bool) -> None:
    """Swap the process defaults between live and null implementations.

    Components cache instrument/tracer handles at construction, so this
    only affects components constructed afterwards — benchmarks that
    compare enabled vs disabled cost build their services inside each
    scope.  Disabling stashes the live instances; re-enabling restores
    them, so a disable/enable round trip does not lose accumulated
    metrics.
    """
    global _enabled, _registry, _tracer, _events, _stashed
    if value == _enabled:
        return
    _enabled = bool(value)
    if _enabled:
        if _stashed is not None:
            _registry, _tracer, _events = _stashed
            _stashed = None
        else:
            _registry = Registry()
            _tracer = Tracer(clock=_clock)
            _events = EventLog(clock=_clock)
    else:
        _stashed = (_registry, _tracer, _events)
        _registry = Registry.disabled()
        _tracer = NullTracer(clock=_clock)
        _events = NullEventLog(clock=_clock)


def configure(clock: Clock | None = None,
              max_spans: int = 2048,
              max_events: int = 4096) -> None:
    """Rebuild the live defaults (fresh, empty) around a given clock.

    Used by tests to install a :class:`FakeClock` behind every span and
    event timestamp.  No-op for the null defaults except the clock swap.
    """
    global _clock, _registry, _tracer, _events
    if clock is not None:
        _clock = clock
    if _enabled:
        _registry = Registry()
        _tracer = Tracer(clock=_clock, max_spans=max_spans)
        _events = EventLog(clock=_clock, max_events=max_events)
    else:
        _tracer = NullTracer(clock=_clock)
        _events = NullEventLog(clock=_clock)


def registry() -> Registry:
    return _registry


def tracer() -> Tracer:
    return _tracer


def events() -> EventLog:
    return _events


def clock() -> Clock:
    return _clock


# -- convenience pass-throughs (module-default instances) -------------------

def counter(name: str, help: str = "", **labels) -> Counter:
    return _registry.counter(name, help, **labels)


def gauge(name: str, help: str = "", **labels) -> Gauge:
    return _registry.gauge(name, help, **labels)


def histogram(name: str, help: str = "", buckets=None, **labels) -> Histogram:
    return _registry.histogram(name, help, buckets=buckets, **labels)


def span(name: str, **attrs):
    return _tracer.span(name, **attrs)


def event(kind: str, /, **fields) -> None:
    _events.emit(kind, **fields)


def reset() -> None:
    """Zero metrics in place and clear span/event buffers.

    Metric handles cached by live components stay valid (values are
    zeroed, not replaced), so tests can reset between cases without
    rebuilding the object graph.
    """
    _registry.reset()
    _tracer.reset()
    _events.reset()


# -- default family pre-registration ---------------------------------------

def preregister_default_families(reg: Registry | None = None) -> None:
    """Ensure the core metric families exist (with zero values).

    ``mmlib stats`` calls this so the exposition output always covers the
    cache, retry, network, and quorum families even before any traffic.
    """
    reg = reg or _registry
    reg.counter("mmlib_chunk_cache_hits_total", "Chunk cache hits")
    reg.counter("mmlib_chunk_cache_misses_total", "Chunk cache misses")
    reg.counter("mmlib_chunk_cache_evictions_total", "Chunk cache LRU evictions")
    reg.counter("mmlib_chunk_cache_coalesced_total",
                "Chunk fetches coalesced by single-flight")
    reg.counter("mmlib_retry_attempts_total", "Retry attempts after failure", op="all")
    reg.counter("mmlib_retry_exhausted_total", "Calls that exhausted retries", op="all")
    reg.counter("mmlib_network_round_trips_total", "Simulated network round trips")
    reg.counter("mmlib_network_round_trips_saved_total",
                "Round trips avoided by request pipelining")
    reg.counter("mmlib_network_bytes_total", "Simulated bytes moved", direction="sent")
    reg.counter("mmlib_network_bytes_total", "Simulated bytes moved", direction="received")
    reg.counter("mmlib_cluster_quorum_write_failures_total",
                "Writes that missed quorum", plane="files")
    reg.counter("mmlib_cluster_degraded_writes_total",
                "Writes acked below full replication", plane="files")
    reg.counter("mmlib_cluster_failover_reads_total",
                "Reads served by a non-primary replica", plane="files")
    reg.counter("mmlib_cluster_read_repairs_total",
                "Replica copies healed during reads", plane="files")
    reg.counter("mmlib_hints_recorded_total", "Handoff hints recorded",
                kind="chunk")
    reg.counter("mmlib_hints_delivered_total", "Handoff hints resolved",
                outcome="delivered")
    reg.gauge("mmlib_antientropy_backlog",
              "Keys known divergent and not yet healed")
    reg.counter("mmlib_antientropy_repairs_total",
                "Replica sets healed by the anti-entropy scanner")
    reg.counter("mmlib_gateway_connections_total", "Accepted gateway connections")
    reg.counter("mmlib_gateway_requests_total",
                "Gateway requests by op, tenant, and outcome status",
                op="all", tenant="all", status="ok")
    reg.histogram("mmlib_gateway_request_seconds",
                  "Gateway request latency from admission to response",
                  op="all", tenant="all")
    reg.gauge("mmlib_gateway_queue_depth",
              "Admitted-but-unfinished gateway requests", tenant="all")
    reg.counter("mmlib_gateway_admission_total", "Gateway admission decisions",
                tenant="all", outcome="admitted")
    reg.counter("mmlib_gateway_maintenance_total",
                "Idle-loop maintenance sweeps", kind="compaction")
    reg.gauge("mmlib_recovery_depth_max",
              "Deepest delta chain replayed by a recover")
