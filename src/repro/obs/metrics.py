"""Thread-safe, zero-dependency metrics registry.

The paper evaluates MMlib entirely through measurement; this module gives
every subsystem one place to report what it did.  A :class:`Registry`
holds labeled *families* of counters, gauges, and fixed-bucket
histograms, and exports them as a JSON snapshot or Prometheus exposition
text.  Instruments are cheap (one lock, one float), get-or-create by
``(name, labels)``, and aggregate across component instances — the
per-instance attributes the subsystems already carry (``ChunkCache.hits``,
``RetryPolicy.stats`` …) remain the per-object view, while the registry
is the deployment-wide export path.

Naming scheme (documented in docs/ARCHITECTURE.md): counters end in
``_total``, gauges are bare nouns, histograms end in ``_seconds`` (or
another unit); everything is prefixed ``mmlib_<subsystem>_``.

``Registry.disabled()`` returns a process-wide null registry whose
instruments are shared no-op singletons — the ``REPRO_OBS=off`` mode
compiles instrumentation down to attribute lookups and empty calls.
"""

from __future__ import annotations

import json
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Registry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket boundaries (seconds): spans save/recover
#: latencies from sub-millisecond chunk ops to multi-second chain replays.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """Monotonically increasing value (one labeled child of a family)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A value that can go up and down (cache bytes, inflight requests)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-boundary histogram (cumulative buckets, Prometheus-style)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets=DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket boundary")
        self._counts = [0] * (len(self.buckets) + 1)  # +inf bucket last
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+inf`` last."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._sum = 0.0
            self._count = 0


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for the disabled registry."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    buckets = DEFAULT_BUCKETS

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> list:
        return []


_NULL_INSTRUMENT = _NullInstrument()

_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric with labeled children."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[tuple, object] = {}

    def child(self, labels: tuple):
        instrument = self.children.get(labels)
        if instrument is None:
            if self.kind == "histogram":
                instrument = Histogram(self.buckets or DEFAULT_BUCKETS)
            else:
                instrument = _KINDS[self.kind]()
            self.children[labels] = instrument
        return instrument


_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:")


def _check_name(name: str) -> None:
    if not name or name[0].isdigit() or not set(name) <= _NAME_OK:
        raise ValueError(f"invalid metric name {name!r}")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Registry:
    """Get-or-create registry of metric families.

    ``counter``/``gauge``/``histogram`` return the instrument for
    ``(name, labels)``, creating family and child on first use — the same
    call is both declaration and lookup, so instrumented code needs no
    registration phase.  A name keeps the kind it was created with;
    asking for it as a different kind raises.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    @property
    def enabled(self) -> bool:
        return True

    @staticmethod
    def disabled() -> "NullRegistry":
        """The shared no-op registry (``REPRO_OBS=off`` mode)."""
        return _NULL_REGISTRY

    # -- instrument access --------------------------------------------------

    def _get(self, name: str, kind: str, help_text: str, labels: dict, buckets=None):
        label_key = tuple(sorted(labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                _check_name(name)
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family.kind}, "
                    f"requested as a {kind}"
                )
            if help_text and not family.help:
                family.help = help_text
            return family.child(label_key)

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", help, labels)

    def histogram(self, name: str, help: str = "", buckets=None, **labels) -> Histogram:
        return self._get(name, "histogram", help, labels, buckets=buckets)

    # -- introspection ------------------------------------------------------

    def families(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def value(self, name: str, **labels) -> float:
        """Current value of one counter/gauge child (0.0 when absent)."""
        label_key = tuple(sorted(labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                return 0.0
            instrument = family.children.get(label_key)
        if instrument is None:
            return 0.0
        return instrument.value

    def reset(self) -> None:
        """Zero every instrument in place (instrument handles stay valid).

        Components cache their instruments at construction, so tests reset
        values rather than swapping registries out from under them.
        """
        with self._lock:
            families = list(self._families.values())
        for family in families:
            for instrument in family.children.values():
                instrument._reset()

    # -- exporters ----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-serializable view of every family and labeled child."""
        out: dict = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            series = []
            for label_key in sorted(family.children):
                instrument = family.children[label_key]
                entry: dict = {"labels": dict(label_key)}
                if family.kind == "histogram":
                    entry["count"] = instrument.count
                    entry["sum"] = instrument.sum
                    entry["buckets"] = [
                        [("+Inf" if bound == float("inf") else bound), count]
                        for bound, count in instrument.cumulative_counts()
                    ]
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            out[name] = {"type": family.kind, "help": family.help, "series": series}
        return out

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
        for name, family in families:
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for label_key in sorted(family.children):
                instrument = family.children[label_key]
                base_labels = dict(label_key)
                if family.kind == "histogram":
                    for bound, count in instrument.cumulative_counts():
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        lines.append(
                            f"{name}_bucket{_fmt_labels({**base_labels, 'le': le})} {count}"
                        )
                    lines.append(f"{name}_sum{_fmt_labels(base_labels)} {instrument.sum}")
                    lines.append(f"{name}_count{_fmt_labels(base_labels)} {instrument.count}")
                else:
                    value = instrument.value
                    if value == int(value):
                        value = int(value)
                    lines.append(f"{name}{_fmt_labels(base_labels)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class NullRegistry(Registry):
    """Registry whose instruments are shared no-ops (near-zero cost)."""

    def __init__(self):
        super().__init__()

    @property
    def enabled(self) -> bool:
        return False

    def _get(self, name, kind, help_text, labels, buckets=None):
        return _NULL_INSTRUMENT

    def value(self, name: str, **labels) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}

    def to_prometheus(self) -> str:
        return ""


_NULL_REGISTRY = NullRegistry()
