"""Hierarchical tracer: nested spans over save/recover request paths.

A :class:`Tracer` records :class:`Span` objects — named, attributed,
nested intervals with ids/parent-ids and both wall and monotonic
timestamps read from an injectable :class:`~repro.obs.clock.Clock`.
Span nesting is tracked per thread via thread-local stacks, so a serial
recover builds one tree on the calling thread; worker threads (the
prefetcher pool) join their submitter's tree via :meth:`Tracer.attach`,
which pushes an explicit parent id for the duration of the work item.

Completed spans land in a bounded ring buffer (oldest evicted first) and
export as JSON-lines — one object per span, children reference parents
by id, so a consumer can rebuild the tree of any ``trace_id``.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque
from contextlib import contextmanager

from .clock import Clock, SystemClock

__all__ = ["Span", "Tracer", "NullTracer"]


class Span:
    """One timed, attributed interval in a trace tree."""

    __slots__ = (
        "name", "span_id", "parent_id", "trace_id",
        "start_wall", "start_perf", "end_perf", "duration_s",
        "attrs", "status", "error",
    )

    def __init__(self, name: str, span_id: int, parent_id, trace_id: int,
                 start_wall: float, start_perf: float):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_wall = start_wall
        self.start_perf = start_perf
        self.end_perf = None
        self.duration_s = None
        self.attrs: dict = {}
        self.status = "ok"
        self.error = None

    def set(self, **attrs) -> "Span":
        """Attach key/value attributes to the span."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "start_wall": self.start_wall,
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "attrs": self.attrs,
        }

    def __repr__(self):  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id}, "
                f"dur={self.duration_s})")


class _NullSpan:
    """Reusable no-op span returned by a disabled tracer."""

    __slots__ = ()
    name = ""
    span_id = 0
    parent_id = None
    trace_id = 0
    duration_s = 0.0
    status = "ok"
    attrs: dict = {}

    def set(self, **attrs):
        return self

    def to_dict(self) -> dict:
        return {}


_NULL_SPAN = _NullSpan()


class _NullCtx:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self):
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_CTX = _NullCtx()


class Tracer:
    """Records nested spans into a bounded ring buffer.

    Usage::

        with tracer.span("service.recover_model", model_id=mid) as sp:
            ...
            sp.set(chunks=n)

    A span opened while another is active on the same thread becomes its
    child; a root span mints a fresh ``trace_id``.  Cross-thread work
    joins a tree explicitly::

        parent = tracer.current_id()          # on the submitting thread
        with tracer.attach(parent):           # on the worker thread
            with tracer.span("prefetch.file"):
                ...
    """

    def __init__(self, clock: Clock | None = None, max_spans: int = 2048):
        self.clock = clock or SystemClock()
        self._spans: deque[Span] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()

    @property
    def enabled(self) -> bool:
        return True

    # -- thread-local span stack --------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current_id(self):
        """(span_id, trace_id) of the innermost active span, or None.

        Capture this on a submitting thread and pass it to
        :meth:`attach` on the worker so the worker's spans join the tree.
        """
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return (top.span_id, top.trace_id)

    @contextmanager
    def attach(self, parent):
        """Adopt ``parent`` (from :meth:`current_id`) as this thread's root."""
        if parent is None:
            yield
            return
        stack = self._stack()
        span_id, trace_id = parent
        anchor = Span("<attached>", span_id, None, trace_id, 0.0, 0.0)
        stack.append(anchor)
        try:
            yield
        finally:
            if stack and stack[-1] is anchor:
                stack.pop()
            elif anchor in stack:  # pragma: no cover - unbalanced nesting
                stack.remove(anchor)

    # -- span lifecycle -----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        stack = self._stack()
        if stack:
            top = stack[-1]
            parent_id, trace_id = top.span_id, top.trace_id
        else:
            parent_id = None
            trace_id = None
        with self._lock:
            span_id = next(self._ids)
        if trace_id is None:
            trace_id = span_id
        sp = Span(name, span_id, parent_id, trace_id,
                  self.clock.now(), self.clock.perf())
        if attrs:
            sp.attrs.update(attrs)
        stack.append(sp)
        try:
            yield sp
        except BaseException as exc:
            sp.status = "error"
            sp.error = type(exc).__name__
            raise
        finally:
            sp.end_perf = self.clock.perf()
            sp.duration_s = sp.end_perf - sp.start_perf
            if stack and stack[-1] is sp:
                stack.pop()
            elif sp in stack:  # pragma: no cover - unbalanced nesting
                stack.remove(sp)
            with self._lock:
                self._spans.append(sp)

    # -- retention / export -------------------------------------------------

    def spans(self, last: int | None = None, trace_id: int | None = None) -> list[Span]:
        """Completed spans, oldest first; optionally the last N / one trace."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s.trace_id == trace_id]
        if last is not None:
            out = out[-last:]
        return out

    def trace_ids(self) -> list[int]:
        """Distinct trace ids in the buffer, oldest first."""
        seen: dict[int, None] = {}
        for sp in self.spans():
            seen.setdefault(sp.trace_id, None)
        return list(seen)

    def tree(self, trace_id: int) -> dict:
        """Nested ``{span, children: [...]}`` dicts for one trace."""
        spans = self.spans(trace_id=trace_id)
        nodes = {s.span_id: {"span": s.to_dict(), "children": []} for s in spans}
        roots = []
        for s in spans:
            node = nodes[s.span_id]
            parent = nodes.get(s.parent_id) if s.parent_id is not None else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return {"trace_id": trace_id, "roots": roots}

    def to_jsonl(self, last: int | None = None) -> str:
        """JSON-lines export: one span object per line, oldest first."""
        return "\n".join(json.dumps(s.to_dict(), sort_keys=True)
                         for s in self.spans(last=last))

    def reset(self) -> None:
        with self._lock:
            self._spans.clear()


class NullTracer(Tracer):
    """Disabled tracer: span() is a shared no-op context manager."""

    def __init__(self, clock: Clock | None = None):
        super().__init__(clock=clock, max_spans=1)

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, **attrs):
        return _NULL_CTX

    def current_id(self):
        return None

    def attach(self, parent):
        return _NULL_CTX

    def spans(self, last=None, trace_id=None):
        return []

    def to_jsonl(self, last=None) -> str:
        return ""
