"""Structured event log for notable state transitions.

Metrics answer "how many / how long"; the event log answers "what
happened, in order, with what context".  Components emit flat records —
a ``kind`` plus keyword fields — for transitions worth replaying later:
retry attempts with their cause, fault injections, cache evictions,
degraded writes, quorum failures, fsck repairs, rebalance moves.

Events are held in a bounded ring buffer (oldest evicted first) and
export as JSON-lines.  Timestamps come from the injectable clock so
fake-clock tests get deterministic event times too.
"""

from __future__ import annotations

import itertools
import json
import threading
from collections import deque

from .clock import Clock, SystemClock

__all__ = ["Event", "EventLog", "NullEventLog"]


class Event:
    """One structured record: kind, sequence number, timestamp, fields."""

    __slots__ = ("kind", "seq", "wall", "fields")

    def __init__(self, kind: str, seq: int, wall: float, fields: dict):
        self.kind = kind
        self.seq = seq
        self.wall = wall
        self.fields = fields

    def to_dict(self) -> dict:
        return {"kind": self.kind, "seq": self.seq, "wall": self.wall, **self.fields}

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"Event({self.kind!r}, seq={self.seq}, {self.fields})"


class EventLog:
    """Thread-safe bounded log of :class:`Event` records."""

    def __init__(self, clock: Clock | None = None, max_events: int = 4096):
        self.clock = clock or SystemClock()
        self._events: deque[Event] = deque(maxlen=max_events)
        self._lock = threading.Lock()
        self._seq = itertools.count(1)

    @property
    def enabled(self) -> bool:
        return True

    def emit(self, kind: str, /, **fields) -> None:
        event = Event(kind, 0, self.clock.now(), fields)
        with self._lock:
            event.seq = next(self._seq)
            self._events.append(event)

    def events(self, kind: str | None = None, last: int | None = None) -> list[Event]:
        """Recorded events oldest first; optionally one kind / the last N."""
        with self._lock:
            out = list(self._events)
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        if last is not None:
            out = out[-last:]
        return out

    def count(self, kind: str) -> int:
        return len(self.events(kind=kind))

    def to_jsonl(self, kind: str | None = None, last: int | None = None) -> str:
        return "\n".join(json.dumps(e.to_dict(), sort_keys=True)
                         for e in self.events(kind=kind, last=last))

    def reset(self) -> None:
        with self._lock:
            self._events.clear()


class NullEventLog(EventLog):
    """Disabled event log: emit() is a no-op."""

    def __init__(self, clock: Clock | None = None):
        super().__init__(clock=clock, max_events=1)

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, kind: str, /, **fields) -> None:
        pass

    def events(self, kind=None, last=None):
        return []
