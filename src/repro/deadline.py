"""Ambient per-operation deadlines, threaded through the storage stack.

A dead cluster member must cost one fast circuit-breaker trip, not a
full retry budget on every request.  Circuit breakers handle the steady
state; deadlines bound the *transition* — the first few requests that
discover a member died mid-operation.  Rather than adding a ``timeout=``
parameter to every method between a save service and a socket, the
deadline rides a :class:`contextvars.ContextVar`: the caller opens a
scope, and every retry loop, replica iteration, and client round-trip
underneath consults it::

    from repro import deadline

    with deadline.scope(0.5):          # this op gets 500 ms, total
        service.recover_model(model_id)

Consumers call :func:`remaining` (``None`` = no deadline) to cap their
own waits, or :func:`check` to raise the typed
:class:`~repro.errors.DeadlineExceededError` once time is spent.  Scopes
nest; an inner scope can only *tighten* the ambient deadline, never
extend it past the outer one.  Context variables propagate into
``ThreadPoolExecutor`` work only if the submitter copies the context —
the storage stack's fan-out helpers check the deadline at the submission
boundary instead, which keeps worker code deadline-free.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager

from . import obs
from .errors import DeadlineExceededError

__all__ = ["Deadline", "scope", "current", "remaining", "expired", "check"]

_current: contextvars.ContextVar["Deadline | None"] = contextvars.ContextVar(
    "repro_deadline", default=None
)


class Deadline:
    """An absolute expiry on the monotonic clock.

    Constructed from a relative budget; all comparisons use
    ``obs.clock().perf()`` so tests drive expiry with a
    :class:`~repro.obs.clock.FakeClock` instead of sleeping.
    """

    __slots__ = ("expires_at", "_clock")

    def __init__(self, seconds: float, clock=None):
        if seconds < 0:
            raise ValueError(f"deadline must be >= 0 seconds, got {seconds}")
        self._clock = clock or obs.clock()
        self.expires_at = self._clock.perf() + float(seconds)

    def remaining(self) -> float:
        """Seconds left, clamped at 0.0."""
        return max(0.0, self.expires_at - self._clock.perf())

    def expired(self) -> bool:
        return self._clock.perf() >= self.expires_at

    def check(self, op: str = "op") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is spent."""
        if self.expired():
            raise DeadlineExceededError(f"deadline expired during {op!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.4f}s)"


@contextmanager
def scope(seconds: float, clock=None):
    """Bind a deadline for the duration of the ``with`` block.

    Nested scopes keep whichever deadline is *tighter* — an inner
    ``scope(10)`` under an outer ``scope(0.1)`` does not grant more time.
    """
    new = Deadline(seconds, clock=clock)
    outer = _current.get()
    if outer is not None and outer.expires_at < new.expires_at:
        new = outer
    token = _current.set(new)
    try:
        yield new
    finally:
        _current.reset(token)


def current() -> Deadline | None:
    """The ambient deadline, or ``None`` outside any scope."""
    return _current.get()


def remaining() -> float | None:
    """Seconds left on the ambient deadline (``None`` = unbounded)."""
    ambient = _current.get()
    return None if ambient is None else ambient.remaining()


def expired() -> bool:
    """Whether the ambient deadline (if any) has already passed."""
    ambient = _current.get()
    return ambient is not None and ambient.expired()


def check(op: str = "op") -> None:
    """Raise :class:`DeadlineExceededError` if the ambient deadline passed."""
    ambient = _current.get()
    if ambient is not None:
        ambient.check(op)
