"""``repro.distsim`` — simulated distributed deployments and evaluation flows."""

from .environment import (
    SERVICE_CLASSES,
    Node,
    Participant,
    Server,
    SharedStores,
    make_service,
)
from .flows import DIST_5, DIST_10, DIST_20, FLOWS, STANDARD, FlowConfig, run_evaluation_flow
from .metrics import FlowMetrics, UseCaseRecord

__all__ = [
    "SERVICE_CLASSES",
    "Node",
    "Participant",
    "Server",
    "SharedStores",
    "make_service",
    "DIST_5",
    "DIST_10",
    "DIST_20",
    "FLOWS",
    "STANDARD",
    "FlowConfig",
    "run_evaluation_flow",
    "FlowMetrics",
    "UseCaseRecord",
]
