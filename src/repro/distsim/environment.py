"""Simulated distributed deployment: shared stores, a server, and nodes.

Mirrors the paper's setup (Section 4.1): one machine runs the document
store (MongoDB there), all machines share external file storage, and the
server and nodes each run MMlib against those shared stores.  Every
participant owns its *own* save-service instance — services hold no model
state, so this matches distinct processes on distinct machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..core.abstract import AbstractSaveService
from ..core.adaptive import AdaptiveSaveService
from ..core.baseline import BaselineSaveService
from ..core.param_update import ParameterUpdateSaveService
from ..core.provenance import ProvenanceSaveService
from ..core.schema import (
    APPROACH_BASELINE,
    APPROACH_PARAM_UPDATE,
    APPROACH_PROVENANCE,
)
from ..docstore.engine import DocumentStore
from ..faults import FaultInjector, FaultyDocumentStore
from ..filestore.network import NetworkModel, SimulatedNetworkFileStore
from ..filestore.store import FileStore
from ..retry import RetryPolicy

__all__ = ["SERVICE_CLASSES", "SharedStores", "Participant", "Server", "Node", "make_service"]

SERVICE_CLASSES = {
    APPROACH_BASELINE: BaselineSaveService,
    APPROACH_PARAM_UPDATE: ParameterUpdateSaveService,
    APPROACH_PROVENANCE: ProvenanceSaveService,
    "adaptive": AdaptiveSaveService,
}


@dataclass
class SharedStores:
    """The storage backends every participant connects to.

    Clustered deployments built with ``self_heal=True`` also carry the
    shared :class:`~repro.cluster.FailureDetector` and
    :class:`~repro.cluster.HintLog` wired into both sharded stores;
    :meth:`healers` constructs the matching background services.
    """

    documents: DocumentStore
    files: FileStore
    scratch_dir: Path
    retry: RetryPolicy | None = None
    detector: object | None = None
    hints: object | None = None

    @classmethod
    def at(
        cls,
        workdir: str | Path,
        network: NetworkModel | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        workers: int = 0,
        pipeline_depth: int = 8,
        chunk_cache_bytes: int = 0,
        layout: str | None = None,
        codec: str | None = None,
        cdc: bool | None = None,
    ) -> "SharedStores":
        """Create fresh stores under ``workdir``.

        With ``network`` set, file transfers are charged against the given
        link model (see :mod:`repro.filestore.network`).  ``faults`` turns
        the deployment into a chaos environment: both stores inject the
        configured failures, and ``retry`` (shared by every participant's
        service) absorbs the transient ones.

        The throughput knobs enable the parallel recovery plane:
        ``workers`` bounds concurrent chunk transfers per batch,
        ``pipeline_depth`` sets how many requests a simulated link keeps
        in flight per latency window, and ``chunk_cache_bytes`` (0 = off)
        sizes the in-process hot-chunk LRU.

        ``codec`` picks the at-rest chunk compression codec and ``cdc``
        enables content-defined sub-layer chunking; both default to their
        environment variables (``REPRO_CHUNK_CODEC``, ``REPRO_CDC``).
        """
        workdir = Path(workdir)
        documents = DocumentStore(workdir / "documents")
        if faults is not None:
            documents = FaultyDocumentStore(documents, faults)
        chunk_cache = chunk_cache_bytes if chunk_cache_bytes > 0 else None
        if network is None:
            files: FileStore = FileStore(
                workdir / "files",
                faults=faults,
                retry=retry,
                workers=workers,
                chunk_cache=chunk_cache,
                layout=layout,
                codec=codec,
                cdc=cdc,
            )
        else:
            files = SimulatedNetworkFileStore(
                workdir / "files",
                network,
                faults=faults,
                retry=retry,
                workers=workers,
                pipeline_depth=pipeline_depth,
                layout=layout,
                chunk_cache=chunk_cache,
                codec=codec,
                cdc=cdc,
            )
        scratch = workdir / "scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        return cls(documents=documents, files=files, scratch_dir=scratch, retry=retry)

    @classmethod
    def cluster_at(
        cls,
        workdir: str | Path,
        shards: int = 4,
        replicas: int = 2,
        write_quorum: int | None = None,
        network: NetworkModel | None = None,
        faults: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
        workers: int = 0,
        pipeline_depth: int = 8,
        chunk_cache_bytes: int = 0,
        layout: str | None = None,
        codec: str | None = None,
        cdc: bool | None = None,
        self_heal: bool = False,
        member_faults: dict[str, FaultInjector] | None = None,
    ) -> "SharedStores":
        """Create *sharded* stores under ``workdir``: ``shards`` member
        stores behind a :class:`~repro.cluster.ShardedFileStore` and a
        :class:`~repro.cluster.ShardedDocumentStore`, R-of-N replicated.

        Services, benchmarks, and fsck use the result exactly like the
        single-store :meth:`at` deployment — the cluster plane hides
        behind the same interfaces.  ``network``/``faults`` apply *per
        member* (each shard is its own machine with its own link);
        ``member_faults`` overrides the shared injector for named members
        (``{"shard-2": injector}``), which is how chaos runs kill one
        machine while the rest stay up.  ``retry`` is shared by the
        members, the sharded layers, and every participant's service.
        The hot-chunk cache sits on the sharded store, so a hit never
        touches a member link.  ``codec`` applies on each member (where
        chunk payloads rest); ``cdc`` applies on the sharded store
        itself (where state dicts are split).

        ``self_heal=True`` wires a shared
        :class:`~repro.cluster.FailureDetector` and durable
        :class:`~repro.cluster.HintLog` (under ``cluster-meta/hints``)
        into both sharded stores: quorum writes then breaker-skip members
        the detector holds down and leave hints for missed replicas.
        Background delivery/scanning is *not* started here — call
        :meth:`healers` and ``start()`` them, or drain in the foreground
        via ``ModelManager.heal()``.
        """
        from ..cluster import ShardedDocumentStore, ShardedFileStore

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        workdir = Path(workdir)
        member_faults = dict(member_faults or {})
        doc_members: dict[str, DocumentStore] = {}
        file_members: dict[str, FileStore] = {}
        for index in range(shards):
            name = f"shard-{index}"
            shard_faults = member_faults.get(name, faults)
            documents = DocumentStore(workdir / name / "documents")
            if shard_faults is not None:
                documents = FaultyDocumentStore(documents, shard_faults)
            doc_members[name] = documents
            if network is None:
                file_members[name] = FileStore(
                    workdir / name / "files", faults=shard_faults, retry=retry,
                    layout=layout, codec=codec,
                )
            else:
                file_members[name] = SimulatedNetworkFileStore(
                    workdir / name / "files",
                    network,
                    faults=shard_faults,
                    retry=retry,
                    pipeline_depth=pipeline_depth,
                    layout=layout,
                    codec=codec,
                )
        detector = hints = None
        if self_heal:
            from ..cluster import FailureDetector, HintLog

            detector = FailureDetector(members=sorted(file_members))
            hints = HintLog(workdir / "cluster-meta" / "hints")
        chunk_cache = chunk_cache_bytes if chunk_cache_bytes > 0 else None
        files = ShardedFileStore(
            workdir / "cluster-meta",
            file_members,
            replicas=replicas,
            write_quorum=write_quorum,
            retry=retry,
            workers=workers,
            chunk_cache=chunk_cache,
            detector=detector,
            hint_log=hints,
            cdc=cdc,
        )
        documents = ShardedDocumentStore(
            doc_members, replicas=replicas, write_quorum=write_quorum,
            detector=detector, hint_log=hints,
        )
        scratch = workdir / "scratch"
        scratch.mkdir(parents=True, exist_ok=True)
        return cls(
            documents=documents, files=files, scratch_dir=scratch,
            retry=retry, detector=detector, hints=hints,
        )

    def healers(
        self,
        deliver_interval_s: float = 0.25,
        scan_interval_s: float = 1.0,
        scan_batch: int = 64,
        probe_interval_s: float = 0.25,
    ) -> tuple:
        """Construct the self-heal services for a clustered deployment.

        Returns ``(deliverer, scanner, monitor)`` — the hinted-handoff
        :class:`~repro.cluster.HintDeliverer`, the
        :class:`~repro.cluster.AntiEntropyScanner`, and a
        :class:`~repro.cluster.HealthMonitor` probing each member's
        ``ping``.  None are started; call ``start()`` on each (and
        ``close()`` when done).  Requires ``cluster_at(...,
        self_heal=True)`` stores.
        """
        if self.hints is None or self.detector is None:
            raise ValueError(
                "self-heal services need cluster_at(..., self_heal=True) stores"
            )
        from ..cluster import AntiEntropyScanner, HealthMonitor, HintDeliverer

        appliers: dict = {}
        for store in (self.files, self.documents):
            factory = getattr(store, "hint_appliers", None)
            if callable(factory):
                appliers.update(factory())
        deliverer = HintDeliverer(
            self.hints, self.detector, appliers, interval_s=deliver_interval_s
        )
        scanner = AntiEntropyScanner(
            self.files, detector=self.detector,
            interval_s=scan_interval_s, batch_size=scan_batch,
        )
        probes = {
            name: member.ping
            for name, member in self.files.members.items()
            if callable(getattr(member, "ping", None))
        }
        monitor = HealthMonitor(
            self.detector, probes, interval_s=probe_interval_s
        )
        return deliverer, scanner, monitor

    def total_storage_bytes(self) -> int:
        return self.documents.storage_bytes() + self.files.total_bytes()


def make_service(
    approach: str,
    stores: SharedStores,
    dataset_codec: str | None = None,
    chunked: bool = True,
    prefetch_workers: int = 0,
) -> AbstractSaveService:
    """Instantiate the save service for an approach name.

    ``chunked=False`` forces the legacy monolithic parameter files (for
    ablations against the content-addressed chunk pipeline).
    ``prefetch_workers > 0`` attaches a
    :class:`~repro.core.prefetch.ChainPrefetcher` so base-chain chunk
    transfers overlap recovery work (requires a chunk cache on the file
    store to be effective).
    """
    if approach not in SERVICE_CLASSES:
        raise KeyError(f"unknown approach {approach!r}; options: {sorted(SERVICE_CLASSES)}")
    prefetcher = None
    if prefetch_workers > 0:
        from ..core.prefetch import ChainPrefetcher

        prefetcher = ChainPrefetcher(
            stores.documents,
            stores.files,
            workers=prefetch_workers,
            retry=stores.retry,
        )
    return SERVICE_CLASSES[approach](
        stores.documents,
        stores.files,
        scratch_dir=stores.scratch_dir,
        dataset_codec=dataset_codec,
        chunked=chunked,
        retry=stores.retry,
        prefetcher=prefetcher,
    )


class Participant:
    """A machine in the deployment (the server or one node)."""

    def __init__(
        self,
        name: str,
        approach: str,
        stores: SharedStores,
        dataset_codec: str | None = None,
        chunked: bool = True,
    ):
        self.name = name
        self.approach = approach
        self.stores = stores
        self.service = make_service(
            approach, stores, dataset_codec=dataset_codec, chunked=chunked
        )
        #: model ids this participant created, by use-case tag
        self.saved_models: dict[str, str] = {}

    def latest_model_id(self) -> str | None:
        if not self.saved_models:
            return None
        return next(reversed(list(self.saved_models.values())))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, approach={self.approach!r})"


class Server(Participant):
    """The central server: creates initial models, deploys updates (U_1/U_2)."""

    def __init__(
        self,
        approach: str,
        stores: SharedStores,
        dataset_codec: str | None = None,
        chunked: bool = True,
    ):
        super().__init__("server", approach, stores, dataset_codec, chunked=chunked)


class Node(Participant):
    """A distributed device: trains locally and registers updates (U_3)."""

    def __init__(
        self,
        index: int,
        approach: str,
        stores: SharedStores,
        dataset_codec: str | None = None,
        chunked: bool = True,
    ):
        super().__init__(f"node-{index}", approach, stores, dataset_codec, chunked=chunked)
        self.index = index
        #: id of the model this node currently runs (set by deployments)
        self.current_model_id: str | None = None
