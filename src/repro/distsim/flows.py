"""Evaluation flows: STANDARD and the distributed DIST-5/10/20 (§4.1, §4.6).

One flow execution walks the paper's use-case sequence:

* ``U_1`` — the server saves the initial model; every node recovers it.
* ``U_3-1-n`` — every node derives a model from its previous one (using the
  pre-built chain snapshots, exactly like the paper's pre-trained models)
  and saves it; ``n`` iterations.
* ``U_2`` — the server saves an improved version derived from ``U_1`` and
  deploys it to the nodes.
* ``U_3-2-n`` — node-side derivations continuing from ``U_2``.

TTS is measured around each ``save_model`` call, storage via the service's
accounting, and TTR (``U_4``) by recovering every saved model afterwards.
Model counts per flow match Table 3: ``2 + num_nodes * 2 * iterations``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..core.save_info import ModelSaveInfo
from ..core.schema import APPROACH_PROVENANCE
from ..workloads.pretrain import ModelChain
from .environment import Node, Server, SharedStores
from .metrics import FlowMetrics, UseCaseRecord

__all__ = ["FlowConfig", "STANDARD", "DIST_5", "DIST_10", "DIST_20", "FLOWS", "run_evaluation_flow"]


@dataclass(frozen=True)
class FlowConfig:
    """Shape of one evaluation flow (paper Table 3)."""

    name: str
    num_nodes: int
    iterations: int

    @property
    def model_count(self) -> int:
        return 2 + self.num_nodes * 2 * self.iterations


STANDARD = FlowConfig("STANDARD", num_nodes=1, iterations=4)
DIST_5 = FlowConfig("DIST-5", num_nodes=5, iterations=10)
DIST_10 = FlowConfig("DIST-10", num_nodes=10, iterations=10)
DIST_20 = FlowConfig("DIST-20", num_nodes=20, iterations=10)
FLOWS = {flow.name: flow for flow in (STANDARD, DIST_5, DIST_10, DIST_20)}


def _save_step(
    participant,
    chain: ModelChain,
    use_case: str,
    chain_use_case: str,
    base_model_id: str | None,
    approach: str,
    clock=None,
):
    """Save one chain snapshot through a participant's service; returns
    (model id, tts seconds)."""
    clock = clock if clock is not None else obs.clock()
    step = chain.step(chain_use_case)
    model = chain.build_model(chain_use_case)
    architecture = chain.config.architecture_ref()

    started = clock.perf()
    if approach == APPROACH_PROVENANCE and step.run is not None:
        save_info = step.run.to_provenance_info(
            base_model_id, trained_model=model, use_case=use_case
        )
        model_id = participant.service.save_model(save_info)
    else:
        model_id = participant.service.save_model(
            ModelSaveInfo(
                model=model,
                architecture=architecture,
                base_model_id=base_model_id,
                use_case=use_case,
            )
        )
    tts = clock.perf() - started
    participant.saved_models[use_case] = model_id
    return model_id, tts


def run_evaluation_flow(
    approach: str,
    chain: ModelChain,
    flow: FlowConfig,
    stores: SharedStores,
    measure_recover: bool = True,
    recover_verify: bool = True,
    dataset_codec: str | None = None,
    concurrent_nodes: bool = False,
    clock=None,
) -> FlowMetrics:
    """Execute one evaluation flow; returns all measurements.

    The chain must provide as many ``U_3`` iterations as the flow runs
    (derived provenance records are base-specific, so snapshots cannot be
    reused across iterations).  ``measure_recover=False`` skips the TTR
    phase (useful when only storage and TTS are of interest).

    ``concurrent_nodes=True`` runs every node's save of one U_3 iteration
    in its own thread — the deployment's real concurrency against the
    shared stores.  Per-node wall-clock times then include GIL contention,
    so use the sequential default when measuring clean per-save latencies
    (as the paper's per-machine measurements are).
    """
    if chain.config.iterations < flow.iterations:
        raise ValueError(
            f"flow {flow.name} needs {flow.iterations} U_3 iterations but the "
            f"chain provides only {chain.config.iterations}; rebuild the chain "
            f"with iterations={flow.iterations}"
        )
    clock = clock if clock is not None else obs.clock()
    metrics = FlowMetrics(approach=approach, flow_name=flow.name)
    server = Server(approach, stores, dataset_codec=dataset_codec)
    nodes = [Node(i, approach, stores, dataset_codec=dataset_codec) for i in range(flow.num_nodes)]

    def record_save(participant, use_case, chain_use_case, base_id):
        model_id, tts = _save_step(
            participant, chain, use_case, chain_use_case, base_id, approach,
            clock=clock,
        )
        breakdown = participant.service.model_save_size(model_id)
        metrics.add(
            UseCaseRecord(
                use_case=use_case,
                node=participant.name,
                model_id=model_id,
                tts_seconds=tts,
                storage_bytes=breakdown.total,
                storage_files=dict(breakdown.files),
            )
        )
        return model_id

    # U_1: initial model, saved once by the server, recovered by each node.
    u1_id = record_save(server, "U_1", "U_1", None)
    for node in nodes:
        node.current_model_id = u1_id

    def run_iteration(use_case: str, previous: dict) -> None:
        if not concurrent_nodes:
            for node in nodes:
                previous[node.name] = record_save(
                    node, use_case, use_case, previous[node.name]
                )
            return
        import threading

        errors: list[BaseException] = []

        def node_save(node) -> None:
            try:
                previous[node.name] = record_save(
                    node, use_case, use_case, previous[node.name]
                )
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=node_save, args=(node,)) for node in nodes]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]

    # U_3-1-n: every node updates its local model.
    previous: dict[str, str] = {node.name: u1_id for node in nodes}
    for n in range(1, flow.iterations + 1):
        run_iteration(f"U_3-1-{n}", previous)

    # U_2: server-side major update derived from the initial model.
    u2_id = record_save(server, "U_2", "U_2", u1_id)
    for node in nodes:
        node.current_model_id = u2_id

    # U_3-2-n: node updates continuing from the deployed U_2 model.
    previous = {node.name: u2_id for node in nodes}
    for n in range(1, flow.iterations + 1):
        run_iteration(f"U_3-2-{n}", previous)

    if measure_recover:
        # U_4: the server recovers every monitored model.
        for record in metrics.records:
            started = clock.perf()
            recovered = server.service.recover_model(
                record.model_id, verify=recover_verify
            )
            record.ttr_seconds = clock.perf() - started
            record.ttr_timings = dict(recovered.timings)
            record.recovery_depth = recovered.recovery_depth

    return metrics
