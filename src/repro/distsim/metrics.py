"""Measurement records and aggregation for evaluation flows.

The paper reports, per use case: storage consumption (constant across
runs), median time-to-save, and median time-to-recover, where medians are
taken across repetitions and — for distributed flows — across nodes
(Section 4.6).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

__all__ = ["UseCaseRecord", "FlowMetrics"]


@dataclass
class UseCaseRecord:
    """One measured save (and optional recover) of one model."""

    use_case: str
    node: str  # "server" or "node-<i>"
    model_id: str
    tts_seconds: float
    storage_bytes: int
    storage_files: dict = field(default_factory=dict)
    ttr_seconds: float | None = None
    ttr_timings: dict = field(default_factory=dict)
    recovery_depth: int = 0


@dataclass
class FlowMetrics:
    """All records of one evaluation-flow execution."""

    approach: str
    flow_name: str
    records: list[UseCaseRecord] = field(default_factory=list)

    def add(self, record: UseCaseRecord) -> None:
        self.records.append(record)

    @property
    def model_count(self) -> int:
        return len(self.records)

    def use_cases(self) -> list[str]:
        """Distinct use cases in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self.records:
            seen.setdefault(record.use_case, None)
        return list(seen)

    def _per_use_case(self, getter) -> dict[str, float]:
        grouped: dict[str, list[float]] = {}
        for record in self.records:
            value = getter(record)
            if value is not None:
                grouped.setdefault(record.use_case, []).append(value)
        return {
            use_case: statistics.median(values) for use_case, values in grouped.items()
        }

    def median_tts(self) -> dict[str, float]:
        """Median time-to-save per use case, across nodes."""
        return self._per_use_case(lambda r: r.tts_seconds)

    def median_ttr(self) -> dict[str, float]:
        """Median time-to-recover per use case, across nodes."""
        return self._per_use_case(lambda r: r.ttr_seconds)

    def storage(self) -> dict[str, float]:
        """Median storage bytes per use case (constant across nodes/runs)."""
        return self._per_use_case(lambda r: float(r.storage_bytes))

    def merge(self, other: "FlowMetrics") -> "FlowMetrics":
        """Combine records from a repeated execution (for cross-run medians)."""
        if (other.approach, other.flow_name) != (self.approach, self.flow_name):
            raise ValueError("can only merge metrics of the same experiment")
        merged = FlowMetrics(self.approach, self.flow_name)
        merged.records = self.records + other.records
        return merged
