"""Per-chunk compression codecs with self-describing payload framing.

Chunk *digests* are always computed over the **uncompressed** bytes, so
verification, read-repair, anti-entropy, and cross-store dedup are
unchanged by compression — only the bytes at rest differ.  A compressed
payload is framed as::

    MMCZ | codec id (u8) | uncompressed length (u64 LE) | body

(13 bytes of header).  Raw payloads are stored unframed; the one
ambiguity — raw bytes that happen to begin with the frame magic — is
resolved by the writer, which escape-frames them with the ``stored``
codec (id 0, body = raw bytes).  Decoding is therefore unambiguous: a
magic prefix always means "parse a frame".

The registry holds ``none`` (identity), ``zlib`` (stdlib), and ``lz4``
when the optional module is importable; nothing is ever installed.  A
cheap incompressibility sniff (compress a small sample first) skips
whole-chunk compression for high-entropy tensors, and compression is
abandoned whenever it fails to win back the frame header.
"""

from __future__ import annotations

import os
import struct
import zlib

from ..errors import StoreCorruptionError

__all__ = [
    "CODEC_ENV_VAR",
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "available_codecs",
    "decode",
    "encode",
    "resolve_codec",
]

#: environment variable consulted when no codec is passed explicitly
CODEC_ENV_VAR = "REPRO_CHUNK_CODEC"

FRAME_MAGIC = b"MMCZ"
_FRAME = struct.Struct("<4sBQ")  # magic, codec id, uncompressed length
FRAME_OVERHEAD = _FRAME.size

CODEC_STORED = 0  # escape frame: body is the raw bytes
CODEC_ZLIB = 1
CODEC_LZ4 = 2

_SNIFF_SAMPLE_BYTES = 4096
#: a sample must shrink below this fraction of itself to bother compressing
_SNIFF_THRESHOLD = 0.9

try:  # optional accelerator; never installed, only used when present
    import lz4.frame as _lz4  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on the environment
    _lz4 = None


def available_codecs() -> tuple[str, ...]:
    """Codec names usable in this environment (``lz4`` only if importable)."""
    names = ["none", "zlib"]
    if _lz4 is not None:
        names.append("lz4")
    return tuple(names)


def resolve_codec(name: str | None) -> str:
    """Validate ``name``, falling back to ``$REPRO_CHUNK_CODEC`` then ``none``."""
    if name is None:
        name = os.environ.get(CODEC_ENV_VAR) or "none"
    name = name.strip().lower()
    if name not in available_codecs():
        raise ValueError(
            f"unknown chunk codec {name!r}; available: {available_codecs()}"
        )
    return name


def _as_bytes(buffer) -> bytes:
    if isinstance(buffer, bytes):
        return buffer
    return memoryview(buffer).cast("B").tobytes()


def _sniff_compressible(raw: bytes) -> bool:
    """Compress a small prefix; incompressible data fails even at level 1."""
    sample = raw[:_SNIFF_SAMPLE_BYTES]
    if not sample:
        return False
    squeezed = zlib.compress(sample, 1)
    return len(squeezed) < len(sample) * _SNIFF_THRESHOLD


def _frame(codec_id: int, body: bytes, raw_length: int) -> bytes:
    return _FRAME.pack(FRAME_MAGIC, codec_id, raw_length) + body


def _store_raw(raw: bytes) -> bytes:
    """Raw payloads go out unframed unless they collide with the magic."""
    if raw[:4] == FRAME_MAGIC:
        return _frame(CODEC_STORED, raw, len(raw))
    return raw


def encode(codec: str, buffer) -> bytes:
    """Return the at-rest payload for ``buffer`` under ``codec``.

    Always a net win or a no-op: compression output is kept only when it
    beats raw-plus-framing, so ``decode(encode(x)) == x`` and the stored
    payload is never larger than the escape-framed raw bytes.
    """
    raw = _as_bytes(buffer)
    if codec == "none" or not _sniff_compressible(raw):
        return _store_raw(raw)
    if codec == "zlib":
        body = zlib.compress(raw, 6)
        codec_id = CODEC_ZLIB
    elif codec == "lz4":
        if _lz4 is None:
            raise ValueError("lz4 codec requested but lz4 is not importable")
        body = _lz4.compress(raw)
        codec_id = CODEC_LZ4
    else:
        raise ValueError(f"unknown chunk codec {codec!r}")
    if len(body) + FRAME_OVERHEAD >= len(raw):
        return _store_raw(raw)
    return _frame(codec_id, body, len(raw))


def decode(payload) -> bytes:
    """Return the uncompressed chunk bytes for an at-rest ``payload``.

    Raises :class:`~repro.errors.StoreCorruptionError` on malformed
    frames, unknown codec ids, or decompressed-length mismatches —
    callers treat these exactly like a digest mismatch.
    """
    data = _as_bytes(payload)
    if data[:4] != FRAME_MAGIC:
        return data
    if len(data) < FRAME_OVERHEAD:
        raise StoreCorruptionError(
            f"truncated chunk codec frame: {len(data)} bytes"
        )
    _magic, codec_id, raw_length = _FRAME.unpack_from(data)
    body = data[FRAME_OVERHEAD:]
    if codec_id == CODEC_STORED:
        raw = body
    elif codec_id == CODEC_ZLIB:
        try:
            raw = zlib.decompress(body)
        except zlib.error as exc:
            raise StoreCorruptionError(
                f"corrupt zlib chunk payload: {exc}"
            ) from exc
    elif codec_id == CODEC_LZ4:
        if _lz4 is None:
            raise StoreCorruptionError(
                "chunk was stored with the lz4 codec but lz4 is not importable"
            )
        try:
            raw = _lz4.decompress(body)
        except Exception as exc:  # lz4 raises its own error types
            raise StoreCorruptionError(
                f"corrupt lz4 chunk payload: {exc}"
            ) from exc
    else:
        raise StoreCorruptionError(
            f"unknown chunk codec id {codec_id} in payload frame"
        )
    if len(raw) != raw_length:
        raise StoreCorruptionError(
            f"chunk codec frame length mismatch: frame says {raw_length}, "
            f"decoded {len(raw)} bytes"
        )
    return raw
