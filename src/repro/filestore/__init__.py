"""``repro.filestore`` — shared external file storage substrate."""

from .network import (
    CELLULAR_LTE,
    INFINIBAND_100G,
    NetworkModel,
    SimulatedNetworkFileStore,
)
from .segments import (
    DEFAULT_SEGMENT_BYTES,
    SegmentChunkStore,
    SegmentCompactor,
)
from .store import (
    ChunkCache,
    ChunkNotFoundError,
    ChunkStore,
    FileNotFoundInStoreError,
    FileStore,
)

__all__ = [
    "CELLULAR_LTE",
    "INFINIBAND_100G",
    "NetworkModel",
    "SimulatedNetworkFileStore",
    "ChunkCache",
    "ChunkNotFoundError",
    "ChunkStore",
    "DEFAULT_SEGMENT_BYTES",
    "FileNotFoundInStoreError",
    "FileStore",
    "SegmentChunkStore",
    "SegmentCompactor",
]
