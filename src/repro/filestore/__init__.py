"""``repro.filestore`` — shared external file storage substrate."""

from .cdc import gear_table, split_buffer
from .codecs import available_codecs, resolve_codec
from .network import (
    CELLULAR_LTE,
    INFINIBAND_100G,
    NetworkModel,
    SimulatedNetworkFileStore,
)
from .segments import (
    DEFAULT_SEGMENT_BYTES,
    SegmentChunkStore,
    SegmentCompactor,
)
from .store import (
    ChunkCache,
    ChunkNotFoundError,
    ChunkStore,
    FileNotFoundInStoreError,
    FileStore,
)

__all__ = [
    "CELLULAR_LTE",
    "INFINIBAND_100G",
    "NetworkModel",
    "SimulatedNetworkFileStore",
    "ChunkCache",
    "ChunkNotFoundError",
    "ChunkStore",
    "DEFAULT_SEGMENT_BYTES",
    "FileNotFoundInStoreError",
    "FileStore",
    "SegmentChunkStore",
    "SegmentCompactor",
    "available_codecs",
    "resolve_codec",
    "gear_table",
    "split_buffer",
]
