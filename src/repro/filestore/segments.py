"""Append-only segment backend for the content-addressed chunk store.

The file-per-chunk :class:`~repro.filestore.store.ChunkStore` pays one
``open`` + ``write`` + ``rename`` (and, with durability, one ``fsync``)
per chunk.  This backend instead appends chunk records to large
append-only *segment* files and locates them through an in-memory index
(``digest -> (segment, offset, length, crc)``), LSM-style:

* **Group fsync** — appends are acknowledged immediately and made
  durable by one batched :meth:`SegmentChunkStore.flush` per save (the
  store's ``"group"`` durability), so a thousand-chunk save costs one
  fsync instead of a thousand.
* **Sealed segments carry a footer** — a catalog of their records — so
  reopening a store bulk-loads the index from footers instead of
  rescanning payloads.  The index is also checkpointed incrementally to
  ``index.json``; on open, only bytes beyond each segment's checkpointed
  scan offset are re-examined, which both bounds recovery work and
  prevents deliberately deleted records from being resurrected.
* **Compaction** — segments whose live ratio drops below a threshold
  are rewritten into a fresh sealed segment.  The rewrite is journaled
  (``compaction.json``) and resumable: the atomic rename of the
  destination segment is the commit point, a crash before it rolls
  back, a crash after it rolls forward.

On-disk format (all integers little-endian):

* segment header: ``MMSEG1\\n\\0`` magic, u32 version, u64 sequence,
  zero-padded to 32 bytes;
* record: ``MMRC`` magic, u16 digest length, u16 flags, u32 payload
  crc32, u64 payload length, then the digest bytes and the payload;
* footer (sealed segments only): ``MMFT`` magic, u32 catalog length,
  the JSON catalog, then a fixed tail of u64 records-end offset, u32
  catalog crc32, and ``MMSE`` end magic — parseable backwards from EOF.

A torn append is detected by the record crc at scan time and never
advances the logical end, so a retry overwrites the tear in place.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import uuid
import zlib
from pathlib import Path

from .. import obs
from ..errors import StoreCorruptionError
from .store import (
    DEFAULT_TMP_GRACE_S,
    ChunkNotFoundError,
    ChunkStore,
    _buffer_nbytes,
)

__all__ = ["SegmentChunkStore", "SegmentCompactor", "DEFAULT_SEGMENT_BYTES"]

#: Segments roll (seal + start a new one) once records cross this size.
DEFAULT_SEGMENT_BYTES = 64 * 1024 * 1024

#: Compaction rewrites sealed segments whose live ratio falls below this.
DEFAULT_COMPACT_THRESHOLD = 0.5

SEGMENT_SUFFIX = ".seg"
SEGMENT_MAGIC = b"MMSEG1\n\x00"
SEGMENT_VERSION = 1
#: Fixed-size segment header: magic + version + sequence, zero-padded.
HEADER = struct.Struct("<8sIQ12x")
RECORD_MAGIC = b"MMRC"
#: Record header: magic, digest length, flags, payload crc32, payload length.
RECORD_HEADER = struct.Struct("<4sHHIQ")
FOOTER_MAGIC = b"MMFT"
FOOTER_END_MAGIC = b"MMSE"
#: Footer tail: records-end offset, catalog crc32, end magic.
FOOTER_TAIL = struct.Struct("<QI4s")


def _parse_seq(name: str) -> int | None:
    parts = name.split("-")
    if len(parts) >= 2 and parts[0] == "seg":
        try:
            return int(parts[1])
        except ValueError:
            return None
    return None


def _new_meta() -> dict:
    return {"scanned": 0, "total": 0, "sealed": False, "bad": False}


class SegmentChunkStore(ChunkStore):
    """Chunk store that appends records to large append-only segments.

    Drop-in replacement for the file-per-chunk :class:`ChunkStore`: the
    refcount plane (flock-serialized ``refcounts.json``), GC contract,
    and the whole public surface are inherited; only the physical
    payload primitives differ.  See the module docstring for the format
    and durability model.
    """

    def __init__(
        self,
        root,
        tmp_grace_s: float = DEFAULT_TMP_GRACE_S,
        durability: str = "group",
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compact_threshold: float = DEFAULT_COMPACT_THRESHOLD,
        codec: str | None = None,
    ):
        self.segment_bytes = int(segment_bytes)
        self.compact_threshold = float(compact_threshold)
        super().__init__(
            root, tmp_grace_s=tmp_grace_s, durability=durability, codec=codec
        )

    # -- open / index maintenance -------------------------------------------

    def _init_physical(self) -> None:
        self.segments_dir = self.root / "segments"
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self._checkpoint_path = self.root / "index.json"
        self._compaction_path = self.root / "compaction.json"
        self._mutex = threading.RLock()
        self._index: dict[str, tuple[str, int, int, int]] = {}
        self._segmeta: dict[str, dict] = {}
        self._active_name: str | None = None
        self._active_file = None
        self._active_end = 0
        self._dirty = False  # unsynced appends in the active segment
        self._index_dirty = False  # index mutations not yet checkpointed
        self._read_files: dict[str, object] = {}
        self._seq = 0
        registry = obs.registry()
        self._obs_appends = registry.counter(
            "mmlib_segment_appends_total", "Chunk records appended to segments")
        self._obs_batches = registry.counter(
            "mmlib_segment_fsync_batches_total", "Group fsync batches flushed")
        self._obs_rolls = registry.counter(
            "mmlib_segment_rolls_total", "Segment files sealed and rolled")
        self._obs_moves = registry.counter(
            "mmlib_segment_compaction_moves_total",
            "Live records rewritten by compaction")
        self._obs_seg_count = registry.gauge(
            "mmlib_segment_count", "Segment files on disk")
        self._obs_live_ratio = registry.gauge(
            "mmlib_segment_live_ratio",
            "Live payload bytes / total payload bytes across segments")
        self._obs_dead = registry.gauge(
            "mmlib_segment_dead_bytes",
            "Dead (compactable) payload bytes across segments")
        with self._mutex:
            self._load_checkpoint()
            self._resume_compaction_locked()
            self._refresh_locked()
            self._update_gauges_locked()

    def _load_checkpoint(self) -> None:
        try:
            data = json.loads(self._checkpoint_path.read_text())
        except (FileNotFoundError, OSError, json.JSONDecodeError):
            return
        if not isinstance(data, dict) or data.get("version") != 1:
            return
        for digest, entry in data.get("entries", {}).items():
            if isinstance(entry, list) and len(entry) == 4:
                self._index[digest] = (
                    str(entry[0]), int(entry[1]), int(entry[2]), int(entry[3]))
        for name, meta in data.get("segments", {}).items():
            self._segmeta[name] = {
                "scanned": int(meta.get("scanned", 0)),
                "total": int(meta.get("total", 0)),
                "sealed": bool(meta.get("sealed", False)),
                "bad": False,
            }

    def _write_checkpoint_locked(self) -> None:
        segments = {}
        for name, meta in self._segmeta.items():
            scanned = self._active_end if name == self._active_name else meta["scanned"]
            segments[name] = {
                "scanned": scanned, "total": meta["total"], "sealed": meta["sealed"]}
        payload = {
            "version": 1,
            "entries": {d: list(entry) for d, entry in self._index.items()},
            "segments": segments,
        }
        self._write_json_atomic(self._checkpoint_path, payload)
        self._index_dirty = False

    def _write_json_atomic(self, path: Path, payload: dict) -> None:
        tmp = path.with_name(f"{path.name}-{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)

    def _refresh_locked(self) -> int:
        """Absorb on-disk changes beyond each segment's scan offset.

        Returns the number of index entries added.  Deliberately deleted
        records are *not* resurrected: the checkpoint advances ``scanned``
        past them, so only genuinely new bytes are examined.  Segments
        whose files vanished (compacted away) are dropped along with any
        index entries still pointing at them.
        """
        on_disk: dict[str, Path] = {}
        for path in self.segments_dir.glob(f"*{SEGMENT_SUFFIX}"):
            on_disk[path.name] = path
            seq = _parse_seq(path.name)
            if seq is not None and seq > self._seq:
                self._seq = seq
        for name in list(self._segmeta):
            if name not in on_disk and name != self._active_name:
                del self._segmeta[name]
                self._close_read_file(name)
                self._index_dirty = True
        for digest, entry in list(self._index.items()):
            if entry[0] not in self._segmeta:
                del self._index[digest]
                self._index_dirty = True
        added = 0
        for name in sorted(on_disk):
            if name == self._active_name:
                continue  # our own writer: the in-memory index is authoritative
            meta = self._segmeta.setdefault(name, _new_meta())
            added += self._absorb_segment_locked(on_disk[name], meta)
        return added

    def _absorb_segment_locked(self, path: Path, meta: dict) -> int:
        name = path.name
        if meta["bad"]:
            return 0
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return 0
        if meta["scanned"] >= size:
            return 0
        if size < HEADER.size:
            return 0  # header still being written: nothing to absorb yet
        added = 0
        try:
            with open(path, "rb") as fileobj:
                if meta["scanned"] < HEADER.size:
                    magic, version, _seq = HEADER.unpack(fileobj.read(HEADER.size))
                    if magic != SEGMENT_MAGIC or version != SEGMENT_VERSION:
                        meta["bad"] = True
                        return 0
                    meta["scanned"] = HEADER.size
                catalog = self._read_footer(fileobj, size)
                if catalog is not None:
                    # sealed: bulk-load the catalog, skipping already-scanned
                    # (possibly deleted) record ranges
                    for digest, off, length, crc in catalog.get("records", []):
                        start = off - RECORD_HEADER.size - len(str(digest).encode())
                        if start < meta["scanned"]:
                            continue
                        meta["total"] += int(length)
                        if digest not in self._index:
                            self._index[digest] = (
                                name, int(off), int(length), int(crc))
                            added += 1
                            self._index_dirty = True
                    meta["scanned"] = size
                    meta["sealed"] = True
                    return added
                added += self._scan_records_locked(fileobj, name, meta)
        except OSError:
            meta["bad"] = True
        return added

    def _scan_records_locked(self, fileobj, name: str, meta: dict) -> int:
        """Sequentially absorb crc-valid records; stop at the first tear."""
        added = 0
        offset = meta["scanned"]
        fileobj.seek(offset)
        while True:
            head = fileobj.read(RECORD_HEADER.size)
            if len(head) < RECORD_HEADER.size:
                break
            magic, dlen, _flags, crc, plen = RECORD_HEADER.unpack(head)
            if magic != RECORD_MAGIC:
                break  # footer or torn garbage: the valid prefix ends here
            digest_raw = fileobj.read(dlen)
            if len(digest_raw) < dlen:
                break
            payload = fileobj.read(plen)
            if len(payload) < plen or zlib.crc32(payload) != crc:
                break  # torn append: the record never completed
            digest = digest_raw.decode("utf-8", "replace")
            payload_off = offset + RECORD_HEADER.size + dlen
            meta["total"] += plen
            if digest not in self._index:
                self._index[digest] = (name, payload_off, plen, crc)
                added += 1
                self._index_dirty = True
            offset = payload_off + plen
        meta["scanned"] = offset
        return added

    def _read_footer(self, fileobj, size: int) -> dict | None:
        if size < HEADER.size + 8 + FOOTER_TAIL.size:
            return None
        fileobj.seek(size - FOOTER_TAIL.size)
        tail = fileobj.read(FOOTER_TAIL.size)
        if len(tail) < FOOTER_TAIL.size:
            return None
        records_end, crc, end_magic = FOOTER_TAIL.unpack(tail)
        if end_magic != FOOTER_END_MAGIC:
            return None
        if records_end < HEADER.size or records_end + 8 > size:
            return None
        fileobj.seek(records_end)
        head = fileobj.read(8)
        if len(head) < 8 or head[:4] != FOOTER_MAGIC:
            return None
        (length,) = struct.unpack("<I", head[4:])
        blob = fileobj.read(length)
        if len(blob) < length or zlib.crc32(blob) != crc:
            return None
        try:
            catalog = json.loads(blob.decode())
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(catalog, dict) or "records" not in catalog:
            return None
        return catalog

    def _close_read_file(self, name: str) -> None:
        fileobj = self._read_files.pop(name, None)
        if fileobj is not None:
            try:
                fileobj.close()
            except OSError:
                pass

    # -- append path ---------------------------------------------------------

    def _hook(self, op: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(op)

    def _next_segment_name(self) -> str:
        self._seq += 1
        return f"seg-{self._seq:010d}-{uuid.uuid4().hex[:8]}{SEGMENT_SUFFIX}"

    def _ensure_active_locked(self) -> None:
        if self._active_file is not None:
            return
        name = self._next_segment_name()
        path = self.segments_dir / name
        fileobj = open(path, "wb", buffering=0)  # every append lands in the OS
        fileobj.write(HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, self._seq))
        self._active_name = name
        self._active_file = fileobj
        self._active_end = HEADER.size
        meta = _new_meta()
        meta["scanned"] = HEADER.size
        self._segmeta[name] = meta

    @staticmethod
    def _write_all(fileobj, data) -> None:
        view = memoryview(data)
        while view.nbytes:
            written = fileobj.write(view)
            if written is None or written >= view.nbytes:
                return
            view = view[written:]

    def put(self, digest: str, buffer) -> bool:
        self._check_digest(digest)
        with self._mutex:
            if digest in self._index:
                self._account_put(_buffer_nbytes(buffer))
                return False
            self._ensure_active_locked()
            digest_raw = digest.encode("utf-8")
            view = memoryview(buffer)
            if view.ndim != 1 or view.format != "B":
                view = (view.cast("B") if view.contiguous
                        else memoryview(bytes(view)))
            raw_nbytes = view.nbytes
            # records hold the *at-rest* payload: CRCs, index lengths, and
            # compaction all see framed bytes; get() decodes after the CRC
            encoded = self._encode(view)
            eview = encoded if isinstance(encoded, memoryview) else memoryview(encoded)
            crc = zlib.crc32(eview)
            head = RECORD_HEADER.pack(
                RECORD_MAGIC, len(digest_raw), 0, crc, eview.nbytes)
            fileobj = self._active_file
            fileobj.seek(self._active_end)  # overwrite any earlier torn tail
            self._write_all(fileobj, head)
            self._write_all(fileobj, digest_raw)
            self._write_all(fileobj, eview)
            payload_off = self._active_end + len(head) + len(digest_raw)
            self._index[digest] = (self._active_name, payload_off, eview.nbytes, crc)
            meta = self._segmeta[self._active_name]
            meta["total"] += eview.nbytes
            self._active_end = payload_off + eview.nbytes
            meta["scanned"] = self._active_end
            self._account_put(raw_nbytes, stored_nbytes=eview.nbytes)
            self._dirty = True
            self._index_dirty = True
            self._obs_appends.inc()
            if self.durability == "chunk":
                os.fsync(fileobj.fileno())
                self._obs_fsyncs.inc()
                self._dirty = False
            if self._active_end >= self.segment_bytes:
                self._roll_locked()
        return True

    def write_torn(self, digest: str, buffer) -> Path:
        """Simulate a torn append: half a record lands past the logical end.

        The end pointer does not advance, so a retry overwrites the tear
        in place — and after a crash the scan's crc check rejects it.
        """
        self._check_digest(digest)
        data = bytes(buffer)
        with self._mutex:
            self._ensure_active_locked()
            digest_raw = digest.encode("utf-8")
            head = RECORD_HEADER.pack(
                RECORD_MAGIC, len(digest_raw), 0, zlib.crc32(data), len(data))
            record = head + digest_raw + data
            fileobj = self._active_file
            fileobj.seek(self._active_end)
            self._write_all(fileobj, record[: max(1, len(record) // 2)])
            return self.segments_dir / self._active_name

    def flush(self) -> int:
        """One group fsync for every append since the last flush."""
        with self._mutex:
            synced = 0
            if self._dirty and self._active_file is not None:
                os.fsync(self._active_file.fileno())
                self._dirty = False
                synced = 1
                self._obs_fsyncs.inc()
                self._obs_batches.inc()
            if self._index_dirty:
                self._write_checkpoint_locked()
            self._update_gauges_locked()
            return synced

    def _roll_locked(self) -> None:
        name = self._active_name
        fileobj = self._active_file
        meta = self._segmeta[name]
        fileobj.truncate(self._active_end)  # drop torn garbage past the end
        records = sorted(
            [d, e[1], e[2], e[3]]
            for d, e in self._index.items()
            if e[0] == name
        )
        footer = self._pack_footer({"end": self._active_end, "records": records})
        fileobj.seek(self._active_end)
        self._write_all(fileobj, footer)
        if self.durability != "none":
            os.fsync(fileobj.fileno())
            self._obs_fsyncs.inc()
            if self._dirty:
                self._obs_batches.inc()
        fileobj.close()
        meta["sealed"] = True
        meta["scanned"] = self._active_end + len(footer)
        self._active_name = None
        self._active_file = None
        self._active_end = 0
        self._dirty = False
        self._obs_rolls.inc()
        self._write_checkpoint_locked()

    @staticmethod
    def _pack_footer(catalog: dict) -> bytes:
        blob = json.dumps(catalog, sort_keys=True).encode()
        return (
            FOOTER_MAGIC
            + struct.pack("<I", len(blob))
            + blob
            + FOOTER_TAIL.pack(catalog["end"], zlib.crc32(blob), FOOTER_END_MAGIC)
        )

    # -- read path -----------------------------------------------------------

    def has(self, digest: str) -> bool:
        self._check_digest(digest)
        with self._mutex:
            return digest in self._index

    def get(self, digest: str) -> bytes:
        self._check_digest(digest)
        refreshed = False
        while True:
            with self._mutex:
                entry = self._index.get(digest)
                if entry is None and not refreshed:
                    self._refresh_locked()  # another process may have appended
                    refreshed = True
                    entry = self._index.get(digest)
                if entry is None:
                    raise ChunkNotFoundError(
                        f"no stored chunk with digest {digest!r}")
                data = self._read_entry_locked(entry)
                if data is None and not refreshed:
                    self._refresh_locked()  # the segment moved (compaction)
                    refreshed = True
                    continue
            if data is None:
                raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}")
            if zlib.crc32(data) != entry[3]:
                raise StoreCorruptionError(
                    f"chunk {digest!r} is corrupt: segment record failed its "
                    f"CRC check")
            return self._decode(data)

    def _read_entry_locked(self, entry) -> bytes | None:
        name, off, length, _crc = entry
        fileobj = self._read_files.get(name)
        if fileobj is None:
            try:
                fileobj = open(self.segments_dir / name, "rb")
            except FileNotFoundError:
                return None
            self._read_files[name] = fileobj
        try:
            data = os.pread(fileobj.fileno(), length, off)
        except OSError:
            return None
        if len(data) != length:
            return None
        return data

    def size_of(self, digest: str) -> int | None:
        self._check_digest(digest)
        with self._mutex:
            entry = self._index.get(digest)
        return None if entry is None else entry[2]

    def locate(self, digest: str) -> tuple[Path, int, int]:
        with self._mutex:
            entry = self._index.get(digest)
            if entry is None:
                raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}")
            return self.segments_dir / entry[0], entry[1], entry[2]

    # -- physical primitives behind the inherited refcount/GC plane ----------

    def _delete_payload(self, digest: str) -> int:
        with self._mutex:
            entry = self._index.pop(digest, None)
            if entry is None:
                return 0
            self._index_dirty = True
            return entry[2]

    def _flush_index(self) -> None:
        with self._mutex:
            if self._index_dirty:
                self._write_checkpoint_locked()
                self._update_gauges_locked()

    def _payload_entries(self) -> dict[str, int]:
        with self._mutex:
            return {digest: entry[2] for digest, entry in self._index.items()}

    def _sweep_unreferenced(self, live: set) -> tuple[int, int]:
        removed = 0
        freed = 0
        with self._mutex:
            for digest in [d for d in self._index if d not in live]:
                freed += self._delete_payload(digest)
                removed += 1
            # orphaned partial segments left by a crash mid-roll or
            # mid-compaction get the same grace-age sweep as chunk tmps
            for path in self.segments_dir.glob("*.tmp"):
                if not self._tmp_expired(path):
                    continue
                try:
                    size = path.stat().st_size
                except FileNotFoundError:
                    continue
                path.unlink(missing_ok=True)
                removed += 1
                freed += size
            self._drop_dead_segments_locked()
            self._write_checkpoint_locked()
            self._update_gauges_locked()
        return removed, freed

    def _drop_dead_segments_locked(self) -> None:
        """Unlink segments no index entry references.

        Unsealed segments only fall once they outlive the tmp grace age:
        a concurrent writer refreshes its segment's mtime with every
        append, so a young unsealed segment may be someone's live tail.
        """
        live_segments = {entry[0] for entry in self._index.values()}
        for name, meta in list(self._segmeta.items()):
            if name == self._active_name or name in live_segments:
                continue
            path = self.segments_dir / name
            if not meta["sealed"] and not self._tmp_expired(path):
                continue
            self._close_read_file(name)
            path.unlink(missing_ok=True)
            del self._segmeta[name]
            self._index_dirty = True

    def gc(self) -> dict[str, int]:
        stats = super().gc()
        stats["segments_compacted"] = self.compact()["segments_compacted"]
        return stats

    # -- compaction -----------------------------------------------------------

    def compact(self, threshold: float | None = None) -> dict:
        """Rewrite low-live-ratio sealed segments into one fresh segment.

        Journaled and resumable: ``compaction.json`` names the victims
        and the destination; the destination's atomic rename is the
        commit point.  Returns move/reclaim statistics.
        """
        threshold = self.compact_threshold if threshold is None else float(threshold)
        stats = {"segments_compacted": 0, "records_moved": 0, "bytes_reclaimed": 0}
        with self._mutex:
            if self._compaction_path.exists():
                self._resume_compaction_locked()
            self._drop_dead_segments_locked()
            victims = self._compaction_victims_locked(threshold)
            if not victims:
                if self._index_dirty:
                    self._write_checkpoint_locked()
                self._update_gauges_locked()
                return stats
            return self._compact_locked(victims)

    def _compaction_victims_locked(self, threshold: float) -> list[str]:
        live_by_seg: dict[str, int] = {}
        for seg, _off, length, _crc in self._index.values():
            live_by_seg[seg] = live_by_seg.get(seg, 0) + length
        victims = []
        for name, meta in sorted(self._segmeta.items()):
            if name == self._active_name or meta["bad"] or not meta["sealed"]:
                continue
            seg_live = live_by_seg.get(name, 0)
            seg_total = max(meta["total"], seg_live)
            if seg_total == 0 or seg_live == 0:
                continue  # fully dead: _drop_dead_segments handles it
            if seg_live / seg_total < threshold:
                victims.append(name)
        return victims

    def _compact_locked(self, victims: list[str]) -> dict:
        self._hook("chunk.compact")
        dest = self._next_segment_name()
        self._write_json_atomic(
            self._compaction_path, {"victims": victims, "dest": dest})
        self._hook("chunk.compact")
        victim_set = set(victims)
        moves = [
            (digest, entry)
            for digest, entry in sorted(self._index.items())
            if entry[0] in victim_set
        ]
        dead = sum(self._segmeta[v]["total"] for v in victims) - sum(
            entry[2] for _d, entry in moves)
        tmp_path = self.segments_dir / (dest + ".tmp")
        new_entries: dict[str, tuple[str, int, int, int]] = {}
        offset = HEADER.size
        total_live = 0
        try:
            with open(tmp_path, "wb") as out:
                out.write(HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, self._seq))
                for digest, entry in moves:
                    payload = self._read_entry_locked(entry)
                    if payload is None or zlib.crc32(payload) != entry[3]:
                        raise StoreCorruptionError(
                            f"chunk {digest!r} is corrupt: compaction read "
                            f"failed its CRC check")
                    digest_raw = digest.encode("utf-8")
                    out.write(RECORD_HEADER.pack(
                        RECORD_MAGIC, len(digest_raw), 0, entry[3], entry[2]))
                    out.write(digest_raw)
                    out.write(payload)
                    payload_off = offset + RECORD_HEADER.size + len(digest_raw)
                    new_entries[digest] = (dest, payload_off, entry[2], entry[3])
                    offset = payload_off + entry[2]
                    total_live += entry[2]
                    self._obs_moves.inc()
                    self._hook("chunk.compact")
                records = sorted(
                    [d, e[1], e[2], e[3]] for d, e in new_entries.items())
                out.write(self._pack_footer({"end": offset, "records": records}))
                out.flush()
                if self.durability != "none":
                    os.fsync(out.fileno())
                    self._obs_fsyncs.inc()
        except BaseException:
            # crash/corruption before the commit point: the journal and a
            # partial tmp remain; resume (or the grace sweep) rolls back
            raise
        self._hook("chunk.compact")
        tmp_path.replace(self.segments_dir / dest)  # commit point
        self._hook("chunk.compact")
        size = (self.segments_dir / dest).stat().st_size
        self._segmeta[dest] = {
            "scanned": size, "total": total_live, "sealed": True, "bad": False}
        self._index.update(new_entries)
        self._index_dirty = True
        self._write_checkpoint_locked()
        self._hook("chunk.compact")
        for name in victims:
            self._close_read_file(name)
            (self.segments_dir / name).unlink(missing_ok=True)
            self._segmeta.pop(name, None)
        self._compaction_path.unlink(missing_ok=True)
        self._write_checkpoint_locked()
        self._update_gauges_locked()
        return {
            "segments_compacted": len(victims),
            "records_moved": len(moves),
            "bytes_reclaimed": max(0, dead),
        }

    def _resume_compaction_locked(self) -> str | None:
        """Finish or undo an interrupted compaction; returns the action."""
        try:
            journal = json.loads(self._compaction_path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._compaction_path.unlink(missing_ok=True)
            return "rolled_back"
        dest = journal.get("dest")
        victims = set(journal.get("victims", []))
        if not dest:
            self._compaction_path.unlink(missing_ok=True)
            return "rolled_back"
        dest_path = self.segments_dir / dest
        tmp_path = self.segments_dir / (dest + ".tmp")
        if not dest_path.exists():
            # the rename never committed: forget the attempt entirely
            tmp_path.unlink(missing_ok=True)
            self._compaction_path.unlink(missing_ok=True)
            return "rolled_back"
        # committed: repoint victim entries at the destination and finish
        catalog = None
        try:
            size = dest_path.stat().st_size
            with open(dest_path, "rb") as fileobj:
                catalog = self._read_footer(fileobj, size)
        except OSError:
            catalog = None
        if catalog is not None:
            meta = self._segmeta.setdefault(dest, _new_meta())
            meta.update(scanned=size, sealed=True, bad=False)
            total = 0
            for digest, off, length, crc in catalog.get("records", []):
                total += int(length)
                current = self._index.get(digest)
                if current is None or current[0] in victims:
                    self._index[digest] = (dest, int(off), int(length), int(crc))
            meta["total"] = total
            seq = _parse_seq(dest)
            if seq is not None and seq > self._seq:
                self._seq = seq
        for digest, entry in list(self._index.items()):
            if entry[0] in victims:
                del self._index[digest]  # not in the catalog: was dead data
        for name in victims:
            self._close_read_file(name)
            (self.segments_dir / name).unlink(missing_ok=True)
            self._segmeta.pop(name, None)
        self._index_dirty = True
        self._write_checkpoint_locked()
        self._compaction_path.unlink(missing_ok=True)
        return "rolled_forward"

    # -- audit / stats ---------------------------------------------------------

    def audit(self, repair: bool = True, verify: bool = False) -> dict:
        """Segment-layer fsck step: footers, tears, index bounds, crcs.

        Resumes an interrupted compaction (with ``repair``), absorbs any
        unindexed records, truncates torn tails, drops index entries that
        point outside their segment, and reaps expired partial segments.
        With ``verify`` every live record's payload is crc-checked.
        """
        outcome = {
            "layout": "segments",
            "segments_checked": 0,
            "torn_segments": [],
            "tmp_segments_removed": 0,
            "entries_added": 0,
            "entries_dropped": [],
            "crc_failures": [],
            "compaction": None,
        }
        with self._mutex:
            if self._compaction_path.exists():
                if repair:
                    outcome["compaction"] = self._resume_compaction_locked()
                else:
                    outcome["compaction"] = "pending"
            outcome["entries_added"] = self._refresh_locked()
            for name, meta in sorted(self._segmeta.items()):
                outcome["segments_checked"] += 1
                path = self.segments_dir / name
                if meta["bad"]:
                    outcome["torn_segments"].append(name)
                    if repair and name != self._active_name:
                        self._close_read_file(name)
                        path.unlink(missing_ok=True)
                        del self._segmeta[name]
                        self._index_dirty = True
                    continue
                try:
                    size = path.stat().st_size
                except FileNotFoundError:
                    continue
                if name == self._active_name:
                    logical = self._active_end
                    if size > logical:
                        outcome["torn_segments"].append(name)
                        if repair:
                            self._active_file.truncate(logical)
                elif not meta["sealed"] and size > meta["scanned"]:
                    # trailing garbage from a dead writer; a *live* writer
                    # keeps its mtime fresh, so respect the grace age
                    if self._tmp_expired(path):
                        outcome["torn_segments"].append(name)
                        if repair:
                            os.truncate(path, meta["scanned"])
            for digest, entry in sorted(self._index.items()):
                name, off, length, _crc = entry
                meta = self._segmeta.get(name)
                out_of_bounds = meta is None or meta["bad"]
                if not out_of_bounds:
                    try:
                        size = (self.segments_dir / name).stat().st_size
                    except FileNotFoundError:
                        size = -1
                    out_of_bounds = off + length > size
                if out_of_bounds:
                    outcome["entries_dropped"].append(digest)
                    if repair:
                        del self._index[digest]
                        self._index_dirty = True
                    continue
                if verify:
                    data = self._read_entry_locked(entry)
                    if data is None or zlib.crc32(data) != entry[3]:
                        outcome["crc_failures"].append(digest)
            for path in self.segments_dir.glob("*.tmp"):
                if self._tmp_expired(path):
                    outcome["tmp_segments_removed"] += 1
                    if repair:
                        path.unlink(missing_ok=True)
            if repair:
                if self._index_dirty:
                    self._write_checkpoint_locked()
                self._update_gauges_locked()
        return outcome

    def segment_stats(self) -> dict:
        """Gauge-style snapshot: counts, live ratio, compaction debt."""
        with self._mutex:
            live_by_seg: dict[str, int] = {}
            for seg, _off, length, _crc in self._index.values():
                live_by_seg[seg] = live_by_seg.get(seg, 0) + length
            live = sum(live_by_seg.values())
            total = 0
            debt = 0
            for name, meta in self._segmeta.items():
                seg_live = live_by_seg.get(name, 0)
                seg_total = max(meta["total"], seg_live)
                total += seg_total
                if name == self._active_name or seg_total == 0:
                    continue
                if seg_live / seg_total < self.compact_threshold:
                    debt += seg_total - seg_live
            return {
                "layout": "segments",
                "segment_count": len(self._segmeta),
                "sealed_segments": sum(
                    1 for m in self._segmeta.values() if m["sealed"]),
                "chunks": len(self._index),
                "live_bytes": live,
                "dead_bytes": max(0, total - live),
                "live_ratio": (live / total) if total else 1.0,
                "compaction_debt_bytes": debt,
                "pending_compaction": self._compaction_path.exists(),
            }

    def _update_gauges_locked(self) -> None:
        stats = self.segment_stats()
        self._obs_seg_count.set(stats["segment_count"])
        self._obs_live_ratio.set(stats["live_ratio"])
        self._obs_dead.set(stats["dead_bytes"])

    def close(self) -> None:
        """Seal nothing, just release file handles (tests/bench hygiene)."""
        with self._mutex:
            if self._active_file is not None:
                if self._dirty and self.durability != "none":
                    os.fsync(self._active_file.fileno())
                    self._obs_fsyncs.inc()
                    self._dirty = False
                self._active_file.close()
                self._active_file = None
                self._active_name = None
                self._active_end = 0
            for name in list(self._read_files):
                self._close_read_file(name)
            if self._index_dirty:
                self._write_checkpoint_locked()


class SegmentCompactor:
    """Background thread that periodically compacts a segment store.

    Mirrors the cluster rebalancer's lifecycle: ``start``/``stop`` (or a
    ``with`` block) around a loop of :meth:`run_once` calls, each of
    which delegates to :meth:`SegmentChunkStore.compact` and records the
    result.  Compaction errors are reported as obs events, never raised
    into the host process.
    """

    def __init__(self, store, interval_s: float = 30.0,
                 threshold: float | None = None):
        self.store = store
        self.interval_s = float(interval_s)
        self.threshold = threshold
        self.runs = 0
        self.errors = 0
        self.last_result: dict | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def run_once(self) -> dict:
        if self.threshold is None:
            result = self.store.compact()
        else:
            result = self.store.compact(self.threshold)
        self.runs += 1
        self.last_result = result
        return result

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.run_once()
            except Exception as exc:  # keep the host process alive
                self.errors += 1
                obs.events().emit("compactor_error", error=str(exc))

    def start(self) -> "SegmentCompactor":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="segment-compactor", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def __enter__(self) -> "SegmentCompactor":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
