"""File store variant that models network transfer cost.

The paper's machines reach the shared external storage over 100G
InfiniBand, so transfers are fast but not free.  This wrapper charges a
configurable latency per operation plus bytes/bandwidth of transfer time,
letting distributed evaluation flows account for slower links (e.g. the
motivating vehicle fleet on cellular uplinks) without changing any MMlib
code — it is a drop-in :class:`~repro.filestore.store.FileStore`.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from .. import obs
from .store import FileStore

__all__ = ["NetworkModel", "SimulatedNetworkFileStore", "INFINIBAND_100G", "CELLULAR_LTE"]


class NetworkModel:
    """Latency + bandwidth model for a storage link."""

    def __init__(self, bandwidth_bytes_per_s: float, latency_s: float = 0.0):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)
        self.latency_s = float(latency_s)

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` over this link."""
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def __repr__(self) -> str:
        gbit = self.bandwidth_bytes_per_s * 8 / 1e9
        return f"NetworkModel({gbit:.2f} Gbit/s, latency={self.latency_s * 1e3:.2f} ms)"


#: The evaluation cluster's interconnect (Section 4.1).
INFINIBAND_100G = NetworkModel(bandwidth_bytes_per_s=100e9 / 8, latency_s=5e-6)

#: A pessimistic vehicle-fleet uplink for the motivating BMS example.
CELLULAR_LTE = NetworkModel(bandwidth_bytes_per_s=20e6 / 8, latency_s=50e-3)


class SimulatedNetworkFileStore(FileStore):
    """A :class:`FileStore` whose transfers consume simulated link time.

    ``sleep=True`` makes operations actually take the modelled wall-clock
    time (for end-to-end timing experiments); with ``sleep=False`` the cost
    is only accumulated in :attr:`simulated_seconds` so large sweeps stay
    fast while still reporting transfer budgets.

    Batched chunk fetches (:meth:`FileStore.get_chunks`) are charged as a
    *pipelined* transfer: latency is paid once per window of
    ``pipeline_depth`` in-flight requests while the bandwidth term stays
    the sum of all payload bytes — bandwidth is shared across concurrent
    streams, not multiplied by them.  :attr:`round_trips` counts the
    link-latency round-trips actually paid; :attr:`round_trips_saved`
    counts the ones pipelining avoided versus a fully serial client.
    """

    #: Bytes exchanged to ask the server "do you already hold this chunk?"
    #: (a hex SHA-256 digest) — the cost of a deduplicated chunk upload.
    CHUNK_QUERY_BYTES = 64

    def __init__(
        self,
        root: str | Path,
        network: NetworkModel,
        sleep: bool = False,
        faults=None,
        retry=None,
        tmp_grace_s: float | None = None,
        verify_reads: bool | None = None,
        pipeline_depth: int = 8,
        workers: int = 0,
        chunk_cache=None,
        layout: str | None = None,
        durability: str | None = None,
        segment_bytes: int | None = None,
        codec: str | None = None,
        cdc: bool | None = None,
        cdc_target_bytes: int | None = None,
    ):
        kwargs = {
            "faults": faults,
            "retry": retry,
            "verify_reads": verify_reads,
            "workers": workers,
            "chunk_cache": chunk_cache,
            "layout": layout,
            "durability": durability,
            "segment_bytes": segment_bytes,
            "codec": codec,
            "cdc": cdc,
            "cdc_target_bytes": cdc_target_bytes,
        }
        if tmp_grace_s is not None:
            kwargs["tmp_grace_s"] = tmp_grace_s
        super().__init__(root, **kwargs)
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.network = network
        self.sleep = sleep
        self.pipeline_depth = int(pipeline_depth)
        self._accounting_lock = threading.Lock()
        self.simulated_seconds = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.chunks_deduplicated = 0
        self.chunk_bytes_deduplicated = 0
        self.round_trips = 0
        self.round_trips_saved = 0
        registry = obs.registry()
        self._obs_round_trips = registry.counter(
            "mmlib_network_round_trips_total", "Simulated network round trips")
        self._obs_round_trips_saved = registry.counter(
            "mmlib_network_round_trips_saved_total",
            "Round trips avoided by request pipelining")
        self._obs_bytes_sent = registry.counter(
            "mmlib_network_bytes_total", "Simulated bytes moved", direction="sent")
        self._obs_bytes_received = registry.counter(
            "mmlib_network_bytes_total", "Simulated bytes moved", direction="received")
        self._obs_dedup_chunks = registry.counter(
            "mmlib_network_chunks_deduplicated_total",
            "Chunk uploads skipped because the server held the content")
        self._obs_sim_seconds = registry.counter(
            "mmlib_network_simulated_seconds_total",
            "Simulated link time consumed by transfers")

    def _charge(self, num_bytes: int, round_trips: int = 1) -> None:
        cost = (
            round_trips * self.network.latency_s
            + num_bytes / self.network.bandwidth_bytes_per_s
        )
        with self._obs_tracer.span(
            "net.transfer", nbytes=num_bytes, round_trips=round_trips,
            simulated_s=cost,
        ):
            with self._accounting_lock:
                self.simulated_seconds += cost
                self.round_trips += round_trips
            self._obs_round_trips.inc(round_trips)
            self._obs_sim_seconds.inc(cost)
            if self.sleep:
                time.sleep(cost)

    def _write_blob(self, file_id: str, data: bytes) -> None:
        """Persist a payload, charging its upload against the link.

        The charge lands only once the write has succeeded — a failed
        upload must not inflate ``bytes_sent``/``simulated_seconds``, or
        chaos runs would report transfer budgets for data that never
        crossed the link.  Charging the write primitive (not
        :meth:`save_bytes`) means replicated writes from a sharded store
        are charged per member link, like any other client.
        """
        super()._write_blob(file_id, data)
        self._charge(len(data))
        with self._accounting_lock:
            self.bytes_sent += len(data)
        self._obs_bytes_sent.inc(len(data))

    def recover_bytes(self, file_id: str) -> bytes:
        """Load a payload, charging its download against the link."""
        data = super().recover_bytes(file_id)
        self._charge(len(data))
        with self._accounting_lock:
            self.bytes_received += len(data)
        self._obs_bytes_received.inc(len(data))
        return data

    def _put_chunk_data(self, digest: str, buffer) -> bool:
        """Upload one chunk, paying only for content the server lacks.

        Every put costs one digest round-trip (the existence query); the
        payload itself crosses the link only when the server does not
        already hold the chunk — dedup turns repeat uploads into
        near-free no-ops, exactly the delta-transfer win chunked saves
        are after.  Overriding the write primitive (not :meth:`put_chunk`)
        means parallel savers are charged identically to serial ones.
        """
        self._charge(self.CHUNK_QUERY_BYTES)
        with self._accounting_lock:
            self.bytes_sent += self.CHUNK_QUERY_BYTES
        self._obs_bytes_sent.inc(self.CHUNK_QUERY_BYTES)
        nbytes = buffer.nbytes if isinstance(buffer, memoryview) else len(buffer)
        wrote = super()._put_chunk_data(digest, buffer)
        if wrote:
            self._charge(nbytes)
            with self._accounting_lock:
                self.bytes_sent += nbytes
            self._obs_bytes_sent.inc(nbytes)
        else:
            with self._accounting_lock:
                self.chunks_deduplicated += 1
                self.chunk_bytes_deduplicated += nbytes
            self._obs_dedup_chunks.inc()
        return wrote

    def _charged_read(self, digest: str) -> bytes:
        """Download one chunk, charging its payload against the link.

        Hot-chunk cache hits never reach this hook, so cached recoveries
        are free — the whole point of sharing the cache with the recovery
        plane.
        """
        data = super()._charged_read(digest)
        self._charge(len(data))
        with self._accounting_lock:
            self.bytes_received += len(data)
        self._obs_bytes_received.inc(len(data))
        return data

    def _charged_read_many(self, digests, workers) -> dict:
        """Download a batch of chunks as one pipelined transfer.

        Latency is paid once per window of ``pipeline_depth`` requests in
        flight; payload bytes all cross the (shared-bandwidth) link.  The
        difference between ``len(digests)`` serial round-trips and the
        windows actually paid lands in :attr:`round_trips_saved`.
        """
        payloads = self._fetch_many(list(digests), workers)
        n = len(payloads)
        if n == 0:
            return payloads
        total = sum(len(data) for data in payloads.values())
        windows = -(-n // self.pipeline_depth)  # ceil division
        self._charge(total, round_trips=windows)
        with self._accounting_lock:
            self.bytes_received += total
            self.round_trips_saved += n - windows
        self._obs_bytes_received.inc(total)
        self._obs_round_trips_saved.inc(n - windows)
        return payloads

    def has_chunk(self, digest: str) -> bool:
        """Existence probe; costs one digest round-trip."""
        self._charge(self.CHUNK_QUERY_BYTES)
        with self._accounting_lock:
            self.bytes_sent += self.CHUNK_QUERY_BYTES
        self._obs_bytes_sent.inc(self.CHUNK_QUERY_BYTES)
        return super().has_chunk(digest)

    def reset_accounting(self) -> None:
        """Zero the accumulated transfer time and byte counters."""
        with self._accounting_lock:
            self.simulated_seconds = 0.0
            self.bytes_sent = 0
            self.bytes_received = 0
            self.chunks_deduplicated = 0
            self.chunk_bytes_deduplicated = 0
            self.round_trips = 0
            self.round_trips_saved = 0
