"""File store variant that models network transfer cost.

The paper's machines reach the shared external storage over 100G
InfiniBand, so transfers are fast but not free.  This wrapper charges a
configurable latency per operation plus bytes/bandwidth of transfer time,
letting distributed evaluation flows account for slower links (e.g. the
motivating vehicle fleet on cellular uplinks) without changing any MMlib
code — it is a drop-in :class:`~repro.filestore.store.FileStore`.
"""

from __future__ import annotations

import time
from pathlib import Path

from .store import FileStore

__all__ = ["NetworkModel", "SimulatedNetworkFileStore", "INFINIBAND_100G", "CELLULAR_LTE"]


class NetworkModel:
    """Latency + bandwidth model for a storage link."""

    def __init__(self, bandwidth_bytes_per_s: float, latency_s: float = 0.0):
        if bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.bandwidth_bytes_per_s = float(bandwidth_bytes_per_s)
        self.latency_s = float(latency_s)

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` over this link."""
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def __repr__(self) -> str:
        gbit = self.bandwidth_bytes_per_s * 8 / 1e9
        return f"NetworkModel({gbit:.2f} Gbit/s, latency={self.latency_s * 1e3:.2f} ms)"


#: The evaluation cluster's interconnect (Section 4.1).
INFINIBAND_100G = NetworkModel(bandwidth_bytes_per_s=100e9 / 8, latency_s=5e-6)

#: A pessimistic vehicle-fleet uplink for the motivating BMS example.
CELLULAR_LTE = NetworkModel(bandwidth_bytes_per_s=20e6 / 8, latency_s=50e-3)


class SimulatedNetworkFileStore(FileStore):
    """A :class:`FileStore` whose transfers consume simulated link time.

    ``sleep=True`` makes operations actually take the modelled wall-clock
    time (for end-to-end timing experiments); with ``sleep=False`` the cost
    is only accumulated in :attr:`simulated_seconds` so large sweeps stay
    fast while still reporting transfer budgets.
    """

    #: Bytes exchanged to ask the server "do you already hold this chunk?"
    #: (a hex SHA-256 digest) — the cost of a deduplicated chunk upload.
    CHUNK_QUERY_BYTES = 64

    def __init__(
        self,
        root: str | Path,
        network: NetworkModel,
        sleep: bool = False,
        faults=None,
        retry=None,
        tmp_grace_s: float | None = None,
        verify_reads: bool | None = None,
    ):
        kwargs = {"faults": faults, "retry": retry, "verify_reads": verify_reads}
        if tmp_grace_s is not None:
            kwargs["tmp_grace_s"] = tmp_grace_s
        super().__init__(root, **kwargs)
        self.network = network
        self.sleep = sleep
        self.simulated_seconds = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.chunks_deduplicated = 0
        self.chunk_bytes_deduplicated = 0

    def _charge(self, num_bytes: int) -> None:
        cost = self.network.transfer_time(num_bytes)
        self.simulated_seconds += cost
        if self.sleep:
            time.sleep(cost)

    def save_bytes(self, data: bytes, suffix: str = "") -> str:
        """Persist a payload, charging its upload against the link.

        The charge lands only once the write has succeeded — a failed
        upload must not inflate ``bytes_sent``/``simulated_seconds``, or
        chaos runs would report transfer budgets for data that never
        crossed the link.
        """
        file_id = super().save_bytes(data, suffix=suffix)
        self._charge(len(data))
        self.bytes_sent += len(data)
        return file_id

    def recover_bytes(self, file_id: str) -> bytes:
        """Load a payload, charging its download against the link."""
        data = super().recover_bytes(file_id)
        self._charge(len(data))
        self.bytes_received += len(data)
        return data

    def put_chunk(self, digest: str, buffer) -> bool:
        """Upload one chunk, paying only for content the server lacks.

        Every put costs one digest round-trip (the existence query); the
        payload itself crosses the link only when the server does not
        already hold the chunk — dedup turns repeat uploads into
        near-free no-ops, exactly the delta-transfer win chunked saves
        are after.
        """
        self._charge(self.CHUNK_QUERY_BYTES)
        self.bytes_sent += self.CHUNK_QUERY_BYTES
        nbytes = buffer.nbytes if isinstance(buffer, memoryview) else len(buffer)
        wrote = super().put_chunk(digest, buffer)
        if wrote:
            self._charge(nbytes)
            self.bytes_sent += nbytes
        else:
            self.chunks_deduplicated += 1
            self.chunk_bytes_deduplicated += nbytes
        return wrote

    def get_chunk(self, digest: str) -> bytes:
        """Download one chunk, charging its payload against the link."""
        data = super().get_chunk(digest)
        self._charge(len(data))
        self.bytes_received += len(data)
        return data

    def has_chunk(self, digest: str) -> bool:
        """Existence probe; costs one digest round-trip."""
        self._charge(self.CHUNK_QUERY_BYTES)
        self.bytes_sent += self.CHUNK_QUERY_BYTES
        return super().has_chunk(digest)

    def reset_accounting(self) -> None:
        """Zero the accumulated transfer time and byte counters."""
        self.simulated_seconds = 0.0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.chunks_deduplicated = 0
        self.chunk_bytes_deduplicated = 0
