"""Shared file storage: the paper's "external storage" substrate.

Models get split into metadata (documents) and files (code, serialized
parameters, compressed datasets).  The :class:`FileStore` persists files
under generated identifiers in a shared directory, exactly like the
evaluation's shared external storage that all machines can access.

On top of the flat blob namespace sits a content-addressed
:class:`ChunkStore`: model parameters can be saved as a *manifest* of
per-layer chunks keyed by the Merkle leaf hashes computed at save time.
Bit-identical layers across models (BA chain snapshots, PUA bases,
replicated deployments) are stored once; chunks are ref-counted by their
manifests and garbage-collected when the last manifest goes away.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

try:
    import fcntl
except ImportError:  # non-posix platform: single-process locking only
    fcntl = None

__all__ = ["FileStore", "ChunkStore", "FileNotFoundInStoreError", "ChunkNotFoundError"]

#: File-id suffix that marks a blob as a chunked-state manifest.
MANIFEST_SUFFIX = ".manifest"

#: Format tag inside every manifest payload.
MANIFEST_FORMAT = "mmlib-chunked-state-v1"

#: Directory (under the store root) holding the content-addressed chunks.
CHUNK_DIR_NAME = "chunks"


class FileNotFoundInStoreError(KeyError):
    """Raised when recovering a file id that was never saved (or deleted)."""


class ChunkNotFoundError(KeyError):
    """Raised when fetching a chunk digest the store does not hold."""


def _buffer_nbytes(buffer) -> int:
    if isinstance(buffer, memoryview):
        return buffer.nbytes
    return len(buffer)


class ChunkStore:
    """Content-addressed, ref-counted chunk storage.

    Chunks live under ``root/objects/<digest>`` and are written exactly
    once per distinct digest (writes are atomic tmp+rename, so concurrent
    writers of the same content converge on one file).  Reference counts
    track how many manifests point at each chunk; :meth:`release_refs`
    deletes chunks whose count drops to zero, and :meth:`gc` sweeps
    orphans (e.g. chunks written by a save that crashed before its
    manifest).  Refcount updates are serialized through an ``flock``-held
    lock file, so multiple processes can share one store directory.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._refs_path = self.root / "refcounts.json"
        self._lock_path = self.root / ".lock"

    # -- locking / refcount persistence ------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        if fcntl is None:
            yield
            return
        with open(self._lock_path, "a+") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    def _load_refs(self) -> dict[str, int]:
        try:
            return json.loads(self._refs_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def _write_refs(self, refs: dict[str, int]) -> None:
        tmp = self._refs_path.with_name(f"refcounts-{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(refs, sort_keys=True))
        tmp.replace(self._refs_path)

    # -- chunk data ---------------------------------------------------------

    def _chunk_path(self, digest: str) -> Path:
        if not digest or "/" in digest or digest.startswith("."):
            raise ValueError(f"invalid chunk digest: {digest!r}")
        return self.objects_dir / digest

    def has(self, digest: str) -> bool:
        return self._chunk_path(digest).exists()

    def put(self, digest: str, buffer) -> bool:
        """Store ``buffer`` under ``digest`` if absent; True iff written.

        ``buffer`` may be any bytes-like object (``memoryview``s are
        written without an intermediate copy).  Content-addressing makes
        the write idempotent: an existing chunk is never rewritten.
        """
        path = self._chunk_path(digest)
        if path.exists():
            return False
        tmp = path.with_name(f"{path.name}-{uuid.uuid4().hex[:8]}.tmp")
        with open(tmp, "wb") as fileobj:
            fileobj.write(buffer)
        tmp.replace(path)
        return True

    def get(self, digest: str) -> bytes:
        path = self._chunk_path(digest)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}") from None

    # -- reference counting --------------------------------------------------

    def add_refs(self, digests: Iterable[str]) -> None:
        """Increment refcounts for ``digests`` (one batched update)."""
        digests = list(digests)
        if not digests:
            return
        with self._locked():
            refs = self._load_refs()
            for digest in digests:
                refs[digest] = refs.get(digest, 0) + 1
            self._write_refs(refs)

    def release_refs(self, digests: Iterable[str]) -> list[str]:
        """Decrement refcounts; delete and return chunks that hit zero."""
        digests = list(digests)
        if not digests:
            return []
        removed: list[str] = []
        with self._locked():
            refs = self._load_refs()
            for digest in digests:
                count = refs.get(digest, 0) - 1
                if count > 0:
                    refs[digest] = count
                else:
                    refs.pop(digest, None)
                    removed.append(digest)
            self._write_refs(refs)
            for digest in removed:
                self._chunk_path(digest).unlink(missing_ok=True)
        return removed

    def refcount(self, digest: str) -> int:
        return self._load_refs().get(digest, 0)

    def gc(self) -> dict[str, int]:
        """Delete unreferenced chunks and leftover tmp files; stats dict."""
        removed = 0
        freed = 0
        with self._locked():
            refs = self._load_refs()
            live = {d for d, count in refs.items() if count > 0}
            if live != set(refs):
                self._write_refs({d: refs[d] for d in live})
            for path in self.objects_dir.iterdir():
                if not path.is_file():
                    continue
                if path.name.endswith(".tmp") or path.name not in live:
                    freed += path.stat().st_size
                    path.unlink(missing_ok=True)
                    removed += 1
        return {"chunks_removed": removed, "bytes_freed": freed}

    # -- accounting -----------------------------------------------------------

    def chunk_ids(self) -> list[str]:
        return sorted(
            p.name
            for p in self.objects_dir.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )

    def total_bytes(self) -> int:
        """Physical bytes held by chunks (deduplicated storage)."""
        return sum(
            p.stat().st_size
            for p in self.objects_dir.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )

    def __len__(self) -> int:
        return len(self.chunk_ids())


class FileStore:
    """Directory-backed blob store addressed by generated file ids.

    File ids embed a content digest prefix, which gives cheap corruption
    detection on recovery without a separate checksum channel.

    State dicts can additionally be saved *chunked* through
    :meth:`save_state_chunks`: each layer becomes a content-addressed
    chunk (keyed by its precomputed tensor hash) and only a small JSON
    manifest enters the flat blob namespace.  Identical layers across
    saves are stored once.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._chunks: ChunkStore | None = None
        self._clean_orphaned_tmp_files()

    def _clean_orphaned_tmp_files(self) -> None:
        """Drop ``*.tmp`` leftovers from saves interrupted mid-write."""
        for path in self.root.iterdir():
            if path.is_file() and path.name.endswith(".tmp"):
                path.unlink(missing_ok=True)

    @property
    def chunks(self) -> ChunkStore:
        """The store's content-addressed chunk substore (lazily created)."""
        if self._chunks is None:
            self._chunks = ChunkStore(self.root / CHUNK_DIR_NAME)
        return self._chunks

    # -- save ------------------------------------------------------------------

    def save_bytes(self, data: bytes, suffix: str = "") -> str:
        """Persist a byte payload; returns the generated file id."""
        digest = hashlib.sha256(data).hexdigest()[:16]
        file_id = f"{digest}-{uuid.uuid4().hex[:12]}{suffix}"
        path = self._path(file_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(path)
        return file_id

    def save_file(self, source: str | Path) -> str:
        """Copy an existing file into the store; returns the file id."""
        source = Path(source)
        data = source.read_bytes()
        return self.save_bytes(data, suffix=source.suffix)

    # -- chunked state save/recover ---------------------------------------------

    def put_chunk(self, digest: str, buffer) -> bool:
        """Store one content-addressed chunk; True iff bytes were written."""
        return self.chunks.put(digest, buffer)

    def get_chunk(self, digest: str) -> bytes:
        """Fetch one chunk's payload by digest."""
        return self.chunks.get(digest)

    def has_chunk(self, digest: str) -> bool:
        return self.chunks.has(digest)

    def save_state_chunks(
        self,
        state: Mapping[str, np.ndarray],
        layer_hashes: Mapping[str, str],
        suffix: str = ".params" + MANIFEST_SUFFIX,
    ) -> str:
        """Save a flat state dict as per-layer chunks plus a manifest.

        ``layer_hashes`` maps each layer name to its already-computed
        tensor hash (the Merkle leaves) — the chunk ids.  Nothing is
        re-hashed here, and already-contiguous arrays are written from a
        ``memoryview`` without copying.  Returns the manifest's file id,
        which carries the ``.manifest`` suffix so recovery, deletion, and
        sizing recognize it.
        """
        if not suffix.endswith(MANIFEST_SUFFIX):
            raise ValueError(f"manifest suffix must end with {MANIFEST_SUFFIX!r}")
        entries = []
        digests = []
        for name, array in state.items():
            digest = layer_hashes[name]
            payload = array if array.flags.c_contiguous else np.ascontiguousarray(array)
            if payload.ndim and payload.nbytes:
                buffer = memoryview(payload).cast("B")
            else:  # 0-d and empty arrays cannot be cast; both are tiny
                buffer = payload.tobytes()
            self.put_chunk(digest, buffer)
            entries.append(
                [name, {"chunk": digest, "dtype": array.dtype.str, "shape": list(array.shape)}]
            )
            digests.append(digest)
        self.chunks.add_refs(digests)
        manifest = json.dumps(
            {"format": MANIFEST_FORMAT, "layers": entries}, sort_keys=True
        ).encode()
        return self.save_bytes(manifest, suffix=suffix)

    def recover_state_chunks(self, file_id: str) -> "OrderedDict[str, np.ndarray]":
        """Rebuild the state dict a manifest describes (bitwise identical)."""
        manifest = self.read_manifest(file_id)
        state: "OrderedDict[str, np.ndarray]" = OrderedDict()
        for name, meta in manifest["layers"]:
            raw = self.get_chunk(meta["chunk"])
            array = np.frombuffer(raw, dtype=np.dtype(meta["dtype"]))
            state[name] = array.reshape(meta["shape"]).copy()
        return state

    def read_manifest(self, file_id: str) -> dict:
        """Load and validate a manifest blob."""
        payload = json.loads(self.recover_bytes(file_id).decode())
        if payload.get("format") != MANIFEST_FORMAT:
            raise IOError(
                f"file {file_id!r} is not a {MANIFEST_FORMAT} manifest"
            )
        return payload

    @staticmethod
    def is_manifest_id(file_id: str) -> bool:
        return file_id.endswith(MANIFEST_SUFFIX)

    # -- recover -----------------------------------------------------------------

    def _path(self, file_id: str) -> Path:
        if "/" in file_id or file_id.startswith("."):
            raise ValueError(f"invalid file id: {file_id!r}")
        return self.root / file_id

    def recover_bytes(self, file_id: str) -> bytes:
        """Load a payload by file id, verifying the embedded digest."""
        path = self._path(file_id)
        if not path.exists():
            raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")
        data = path.read_bytes()
        expected = file_id.split("-", 1)[0]
        actual = hashlib.sha256(data).hexdigest()[: len(expected)]
        if actual != expected:
            raise IOError(
                f"stored file {file_id!r} is corrupt: digest {actual} != {expected}"
            )
        return data

    def recover_to(self, file_id: str, destination: str | Path) -> Path:
        """Copy a stored file out of the store to ``destination``."""
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_bytes(self.recover_bytes(file_id))
        return destination

    # -- management ---------------------------------------------------------------

    def exists(self, file_id: str) -> bool:
        return self._path(file_id).exists()

    def delete(self, file_id: str) -> bool:
        """Remove a stored file; returns whether it existed.

        Deleting a manifest releases its chunk references; chunks no other
        manifest still points at are deleted with it.
        """
        path = self._path(file_id)
        if not path.exists():
            return False
        if self.is_manifest_id(file_id):
            try:
                manifest = self.read_manifest(file_id)
            except (IOError, ValueError, json.JSONDecodeError):
                manifest = None  # corrupt manifest: drop the blob, keep chunks
            if manifest is not None:
                self.chunks.release_refs(
                    meta["chunk"] for _, meta in manifest["layers"]
                )
        path.unlink()
        return True

    def size(self, file_id: str) -> int:
        """Logical size in bytes of one stored file.

        For a manifest this is the manifest blob plus every referenced
        chunk — the bytes a recovery transfers — independent of how much
        of it is deduplicated on disk (see :meth:`total_bytes` for the
        physical view).
        """
        path = self._path(file_id)
        if not path.exists():
            raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")
        size = path.stat().st_size
        if self.is_manifest_id(file_id):
            manifest = self.read_manifest(file_id)
            for _, meta in manifest["layers"]:
                chunk_path = self.chunks._chunk_path(meta["chunk"])
                if chunk_path.exists():
                    size += chunk_path.stat().st_size
        return size

    def total_bytes(self) -> int:
        """Total *physical* bytes stored (deduplicated chunks counted once).

        In-flight ``*.tmp`` files are not stored blobs and are excluded.
        """
        total = sum(
            p.stat().st_size
            for p in self.root.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )
        chunk_dir = self.root / CHUNK_DIR_NAME
        if chunk_dir.exists():
            total += self.chunks.total_bytes()
            refs = self.chunks._refs_path
            if refs.exists():
                total += refs.stat().st_size
        return total

    def file_ids(self) -> list[str]:
        """Ids of stored blobs (excluding in-flight ``*.tmp`` files)."""
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )

    def gc_chunks(self) -> dict[str, int]:
        """Sweep unreferenced chunks (see :meth:`ChunkStore.gc`)."""
        if (self.root / CHUNK_DIR_NAME).exists():
            return self.chunks.gc()
        return {"chunks_removed": 0, "bytes_freed": 0}

    def clear(self) -> None:
        shutil.rmtree(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._chunks = None
