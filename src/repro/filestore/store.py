"""Shared file storage: the paper's "external storage" substrate.

Models get split into metadata (documents) and files (code, serialized
parameters, compressed datasets).  The :class:`FileStore` persists files
under generated identifiers in a shared directory, exactly like the
evaluation's shared external storage that all machines can access.

On top of the flat blob namespace sits a content-addressed
:class:`ChunkStore`: model parameters can be saved as a *manifest* of
per-layer chunks keyed by the Merkle leaf hashes computed at save time.
Bit-identical layers across models (BA chain snapshots, PUA bases,
replicated deployments) are stored once; chunks are ref-counted by their
manifests and garbage-collected when the last manifest goes away.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from .. import obs
from ..errors import StoreCorruptionError, TransientStoreError
from . import codecs as chunk_codecs
from .cdc import DEFAULT_TARGET_BYTES as DEFAULT_CDC_TARGET_BYTES
from .cdc import split_buffer
from .journal import JOURNAL_SUFFIX, SaveJournal

try:
    import fcntl
except ImportError:  # non-posix platform: single-process locking only
    fcntl = None

__all__ = [
    "FileStore",
    "ChunkStore",
    "ChunkCache",
    "FileNotFoundInStoreError",
    "ChunkNotFoundError",
    "layer_chunk_digests",
    "manifest_chunk_digests",
]

#: File-id suffix that marks a blob as a chunked-state manifest.
MANIFEST_SUFFIX = ".manifest"

#: Format tag inside every whole-layer (v1) manifest payload.
MANIFEST_FORMAT = "mmlib-chunked-state-v1"

#: Format tag for content-defined (v2) manifests: each layer carries a
#: *list* of chunk digests (sha256 of the uncompressed chunk bytes) plus
#: its tensor hash, instead of one whole-layer chunk.
MANIFEST_FORMAT_V2 = "mmlib-chunked-state-v2"

#: Every manifest format the read paths accept.
MANIFEST_FORMATS = (MANIFEST_FORMAT, MANIFEST_FORMAT_V2)

#: Environment override enabling content-defined chunking for new saves.
CDC_ENV_VAR = "REPRO_CDC"

#: Directory (under the store root) holding the content-addressed chunks.
CHUNK_DIR_NAME = "chunks"

#: Directory (under the store root) holding per-save intent journals.
JOURNAL_DIR_NAME = "journal"

#: Tmp files younger than this are assumed in-flight and never reaped —
#: a concurrent saver may still be writing them (see PR-2 satellite fix).
DEFAULT_TMP_GRACE_S = 600.0

#: Durability levels for chunk writes.  ``"none"`` never fsyncs (the
#: historical file-per-chunk behavior), ``"chunk"`` fsyncs every write
#: before acknowledging it, and ``"group"`` defers durability to one
#: batched :meth:`ChunkStore.flush` per save — fsync-before-ack at the
#: manifest boundary instead of per chunk.
DURABILITY_MODES = ("none", "group", "chunk")

#: Supported physical chunk layouts behind :class:`FileStore`.
CHUNK_LAYOUTS = ("files", "segments")

#: Layout used for brand-new stores when none is requested explicitly.
DEFAULT_LAYOUT = "segments"

#: Environment override for the default layout of brand-new stores.
LAYOUT_ENV_VAR = "REPRO_CHUNK_LAYOUT"

#: Default byte budget for an in-process hot-chunk LRU (see :class:`ChunkCache`).
DEFAULT_CHUNK_CACHE_BYTES = 256 * 1024 * 1024


class FileNotFoundInStoreError(KeyError):
    """Raised when recovering a file id that was never saved (or deleted)."""


class ChunkNotFoundError(KeyError):
    """Raised when fetching a chunk digest the store does not hold."""


def _buffer_nbytes(buffer) -> int:
    if isinstance(buffer, memoryview):
        return buffer.nbytes
    return len(buffer)


def layer_chunk_digests(meta: Mapping) -> list[str]:
    """Chunk digests for one manifest layer entry, v1 or v2.

    v1 entries hold one whole-layer chunk under ``"chunk"``; v2 entries
    hold an ordered run of content-defined chunks under ``"chunks"``.
    Every reader of manifest layers (recovery, deletion, sizing, fsck,
    prefetch, cluster repair) goes through this helper, which is what
    keeps old manifests readable next to new ones.
    """
    chunks = meta.get("chunks")
    if chunks is not None:
        return list(chunks)
    return [meta["chunk"]]


def manifest_chunk_digests(manifest: Mapping) -> list[str]:
    """Every chunk digest a manifest references, with multiplicity.

    Multiplicity matters: refcounts are incremented once per reference,
    so releases must mirror the same counting.
    """
    digests: list[str] = []
    for _name, meta in manifest["layers"]:
        digests.extend(layer_chunk_digests(meta))
    return digests


class ChunkCache:
    """Thread-safe LRU over chunk payloads, bounded by total bytes.

    The recovery plane shares one instance between a :class:`FileStore`
    (which consults it on every chunk read), the chain prefetcher (which
    warms it ahead of the recovery cursor), and a
    :class:`~repro.core.cache.RecoveryCache` (which carries it across
    ``recover_model`` calls).  Chunks are immutable — content-addressed by
    digest — so cached payloads never go stale; eviction is purely a
    memory-budget decision.
    """

    def __init__(self, max_bytes: int = DEFAULT_CHUNK_CACHE_BYTES):
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self._lock = threading.Lock()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        registry = obs.registry()
        self._obs_hits = registry.counter(
            "mmlib_chunk_cache_hits_total", "Chunk cache hits")
        self._obs_misses = registry.counter(
            "mmlib_chunk_cache_misses_total", "Chunk cache misses")
        self._obs_evictions = registry.counter(
            "mmlib_chunk_cache_evictions_total", "Chunk cache LRU evictions")
        self._obs_bytes = registry.gauge(
            "mmlib_chunk_cache_bytes", "Bytes currently cached")
        self._obs_events = obs.events()

    def get(self, digest: str) -> bytes | None:
        with self._lock:
            data = self._entries.get(digest)
            if data is None:
                self.misses += 1
                self._obs_misses.inc()
                return None
            self._entries.move_to_end(digest)
            self.hits += 1
            self._obs_hits.inc()
            return data

    def put(self, digest: str, data) -> None:
        data = bytes(data)
        if len(data) > self.max_bytes:
            return  # would evict everything else for one cold chunk
        evicted_count = 0
        with self._lock:
            if digest in self._entries:
                self._entries.move_to_end(digest)
                return
            self._entries[digest] = data
            self.current_bytes += len(data)
            while self.current_bytes > self.max_bytes:
                evicted_digest, evicted = self._entries.popitem(last=False)
                self.current_bytes -= len(evicted)
                self.evictions += 1
                evicted_count += 1
                self._obs_events.emit(
                    "cache_evict", digest=evicted_digest, nbytes=len(evicted))
            self._obs_bytes.set(self.current_bytes)
        if evicted_count:
            self._obs_evictions.inc(evicted_count)

    def discard(self, digest: str) -> None:
        """Drop one entry (a payload that failed digest verification)."""
        with self._lock:
            data = self._entries.pop(digest, None)
            if data is not None:
                self.current_bytes -= len(data)
                self._obs_bytes.set(self.current_bytes)

    def __contains__(self, digest: str) -> bool:
        with self._lock:
            return digest in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self._obs_bytes.set(0)

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class _SingleFlight:
    """Collapse concurrent fetches of one key into a single leader fetch.

    The prefetcher and a recovery running in parallel routinely ask for
    the same chunk at the same moment; without coalescing, both would
    cross the (possibly simulated) link and the transfer would be charged
    twice.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: dict[str, threading.Event] = {}

    def begin(self, key: str) -> threading.Event | None:
        """Returns ``None`` when the caller is the leader (must call
        :meth:`done`), else the leader's event to wait on."""
        with self._lock:
            event = self._inflight.get(key)
            if event is not None:
                return event
            self._inflight[key] = threading.Event()
            return None

    def done(self, key: str) -> None:
        with self._lock:
            event = self._inflight.pop(key, None)
        if event is not None:
            event.set()


class ChunkStore:
    """Content-addressed, ref-counted chunk storage.

    Chunks live under ``root/objects/<digest>`` and are written exactly
    once per distinct digest (writes are atomic tmp+rename, so concurrent
    writers of the same content converge on one file).  Reference counts
    track how many manifests point at each chunk; :meth:`release_refs`
    deletes chunks whose count drops to zero, and :meth:`gc` sweeps
    orphans (e.g. chunks written by a save that crashed before its
    manifest).  Refcount updates are serialized through an ``flock``-held
    lock file, so multiple processes can share one store directory.
    """

    def __init__(
        self,
        root: str | Path,
        tmp_grace_s: float = DEFAULT_TMP_GRACE_S,
        durability: str = "none",
        codec: str | None = None,
    ):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._refs_path = self.root / "refcounts.json"
        self._lock_path = self.root / ".lock"
        self.tmp_grace_s = float(tmp_grace_s)
        self.durability = durability
        #: At-rest compression codec for new chunk payloads.  Digests are
        #: always over the uncompressed bytes, and decode is driven by the
        #: payload frame, so stores with different codecs interoperate.
        self.codec = chunk_codecs.resolve_codec(codec)
        #: Optional chaos hook with the ``FaultInjector.fail_point``
        #: signature, consulted by long-running maintenance (compaction).
        self.fault_hook = None
        # dedup/compression accounting (in-process, like the network
        # store's transfer accounting): logical bytes offered by callers,
        # bytes skipped because the digest was already stored, and framed
        # bytes physically written
        self._acct_lock = threading.Lock()
        self.logical_bytes = 0
        self.dedup_bytes = 0
        self.stored_bytes = 0
        registry = obs.registry()
        self._obs_fsyncs = registry.counter(
            "mmlib_chunk_fsyncs_total", "fsync calls issued for chunk durability")
        self._obs_logical = registry.counter(
            "mmlib_chunks_logical_bytes_total",
            "Uncompressed bytes offered to ChunkStore.put")
        self._obs_dedup = registry.counter(
            "mmlib_chunks_dedup_bytes_total",
            "Uncompressed bytes skipped because the chunk already existed")
        self._obs_stored = registry.counter(
            "mmlib_chunks_stored_bytes_total",
            "Framed (possibly compressed) bytes physically written")
        self._init_physical()

    # -- codec framing / dedup accounting ------------------------------------

    def _encode(self, buffer):
        """At-rest payload for one chunk (see :mod:`repro.filestore.codecs`).

        With the ``none`` codec the raw bytes pass through zero-copy
        unless they collide with the frame magic, which the codec layer
        escape-frames so decoding stays unambiguous.
        """
        if self.codec == "none":
            view = buffer if isinstance(buffer, bytes) else memoryview(buffer).cast("B")
            if bytes(view[:4]) != chunk_codecs.FRAME_MAGIC:
                return buffer
        return chunk_codecs.encode(self.codec, buffer)

    @staticmethod
    def _decode(payload: bytes) -> bytes:
        """Uncompressed chunk bytes for one at-rest payload."""
        return chunk_codecs.decode(payload)

    def _account_put(self, raw_nbytes: int, stored_nbytes: int | None = None) -> None:
        """Record one put: deduped when ``stored_nbytes`` is ``None``."""
        with self._acct_lock:
            self.logical_bytes += raw_nbytes
            if stored_nbytes is None:
                self.dedup_bytes += raw_nbytes
            else:
                self.stored_bytes += stored_nbytes
        self._obs_logical.inc(raw_nbytes)
        if stored_nbytes is None:
            self._obs_dedup.inc(raw_nbytes)
        else:
            self._obs_stored.inc(stored_nbytes)

    def dedup_stats(self) -> dict:
        """Dedup and compression accounting since this store was opened."""
        with self._acct_lock:
            logical = self.logical_bytes
            dedup = self.dedup_bytes
            stored = self.stored_bytes
        written = logical - dedup
        return {
            "codec": self.codec,
            "logical_bytes": logical,
            "dedup_bytes": dedup,
            "stored_bytes": stored,
            "dedup_ratio": round(logical / written, 4) if written else None,
            "compression_ratio": round(written / stored, 4) if stored else None,
        }

    def _init_physical(self) -> None:
        """Create the physical layout (hook for alternate backends)."""
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._pending_sync: list[Path] = []
        self._pending_lock = threading.Lock()
        self._obs_files_created = obs.registry().counter(
            "mmlib_chunk_files_created_total",
            "Chunk files created (file-per-chunk layout)")

    def _tmp_expired(self, path: Path) -> bool:
        """In-flight tmp files get a grace age before they count as orphans."""
        try:
            return path.stat().st_mtime <= time.time() - self.tmp_grace_s
        except FileNotFoundError:
            return False

    # -- locking / refcount persistence ------------------------------------

    @contextlib.contextmanager
    def _locked(self):
        if fcntl is None:
            yield
            return
        with open(self._lock_path, "a+") as lock_file:
            fcntl.flock(lock_file.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file.fileno(), fcntl.LOCK_UN)

    def _load_refs(self) -> dict[str, int]:
        try:
            return json.loads(self._refs_path.read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            return {}

    def _write_refs(self, refs: dict[str, int]) -> None:
        tmp = self._refs_path.with_name(f"refcounts-{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_text(json.dumps(refs, sort_keys=True))
        tmp.replace(self._refs_path)

    # -- chunk data ---------------------------------------------------------

    @staticmethod
    def _check_digest(digest: str) -> None:
        if not digest or "/" in digest or digest.startswith("."):
            raise ValueError(f"invalid chunk digest: {digest!r}")

    def _chunk_path(self, digest: str) -> Path:
        self._check_digest(digest)
        return self.objects_dir / digest

    def has(self, digest: str) -> bool:
        return self._chunk_path(digest).exists()

    def put(self, digest: str, buffer) -> bool:
        """Store ``buffer`` under ``digest`` if absent; True iff written.

        ``buffer`` may be any bytes-like object (``memoryview``s are
        written without an intermediate copy).  Content-addressing makes
        the write idempotent: an existing chunk is never rewritten.
        """
        path = self._chunk_path(digest)
        raw_nbytes = _buffer_nbytes(buffer)
        if path.exists():
            self._account_put(raw_nbytes)
            return False
        payload = self._encode(buffer)
        tmp = path.with_name(f"{path.name}-{uuid.uuid4().hex[:8]}.tmp")
        with open(tmp, "wb") as fileobj:
            fileobj.write(payload)
            if self.durability == "chunk":
                fileobj.flush()
                os.fsync(fileobj.fileno())
                self._obs_fsyncs.inc()
        tmp.replace(path)
        self._account_put(raw_nbytes, stored_nbytes=_buffer_nbytes(payload))
        self._obs_files_created.inc()
        if self.durability == "group":
            with self._pending_lock:
                self._pending_sync.append(path)
        return True

    def flush(self) -> int:
        """Make every acknowledged-but-unsynced chunk durable; fsync count.

        ``"group"`` durability defers per-chunk fsyncs to this one batched
        call (a save flushes once before publishing its manifest).  Under
        the other modes nothing is ever pending and this is a no-op.
        """
        if self.durability != "group":
            return 0
        with self._pending_lock:
            pending, self._pending_sync = self._pending_sync, []
        synced = 0
        for path in pending:
            try:
                fd = os.open(path, os.O_RDONLY)
            except FileNotFoundError:
                continue  # raced with a delete: nothing left to sync
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
            synced += 1
        if synced:
            self._obs_fsyncs.inc(synced)
        return synced

    def locate(self, digest: str) -> tuple[Path, int, int]:
        """Physical location of one chunk: ``(path, offset, length)``.

        Lets layout-agnostic tooling (fsck damage drills, debuggers) find
        the stored bytes without knowing the backend's file geometry.
        """
        path = self._chunk_path(digest)
        try:
            return path, 0, path.stat().st_size
        except FileNotFoundError:
            raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}") from None

    def _delete_payload(self, digest: str) -> int:
        """Remove one chunk's stored bytes; returns the bytes freed."""
        path = self._chunk_path(digest)
        try:
            size = path.stat().st_size
        except FileNotFoundError:
            return 0
        path.unlink(missing_ok=True)
        return size

    def _flush_index(self) -> None:
        """Persist index mutations (no-op here: the filesystem is the index)."""

    def write_torn(self, digest: str, buffer) -> Path:
        """Simulate a torn write: persist only a partial tmp file.

        Used by fault injection — the final chunk file is never created,
        matching the atomic tmp+rename protocol, so the tear is exactly
        the leftover a real mid-write crash leaves behind.
        """
        path = self._chunk_path(digest)
        tmp = path.with_name(f"{path.name}-{uuid.uuid4().hex[:8]}.tmp")
        data = bytes(buffer)
        with open(tmp, "wb") as fileobj:
            fileobj.write(data[: max(1, len(data) // 2)])
        return tmp

    def get(self, digest: str) -> bytes:
        path = self._chunk_path(digest)
        try:
            payload = path.read_bytes()
        except FileNotFoundError:
            raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}") from None
        return self._decode(payload)

    def drop(self, digest: str) -> bool:
        """Unlink one chunk file regardless of refcounts; True iff removed.

        Low-level repair/rollback primitive — normal deletion goes through
        :meth:`release_refs`.
        """
        existed = self.has(digest)
        if existed:
            self._delete_payload(digest)
            self._flush_index()
        return existed

    def size_of(self, digest: str) -> int | None:
        """On-disk size of one chunk, or ``None`` when it is not stored."""
        try:
            return self._chunk_path(digest).stat().st_size
        except FileNotFoundError:
            return None

    # -- reference counting --------------------------------------------------

    def add_refs(self, digests: Iterable[str]) -> None:
        """Increment refcounts for ``digests`` (one batched update)."""
        digests = list(digests)
        if not digests:
            return
        with self._locked():
            refs = self._load_refs()
            for digest in digests:
                refs[digest] = refs.get(digest, 0) + 1
            self._write_refs(refs)

    def release_refs(self, digests: Iterable[str]) -> list[str]:
        """Decrement refcounts; delete and return chunks that hit zero."""
        digests = list(digests)
        if not digests:
            return []
        removed: list[str] = []
        with self._locked():
            refs = self._load_refs()
            for digest in digests:
                count = refs.get(digest, 0) - 1
                if count > 0:
                    refs[digest] = count
                else:
                    refs.pop(digest, None)
                    removed.append(digest)
            self._write_refs(refs)
            for digest in removed:
                self._delete_payload(digest)
            if removed:
                self._flush_index()
        return removed

    def refcount(self, digest: str) -> int:
        return self._load_refs().get(digest, 0)

    def export_refs(self) -> dict[str, int]:
        """Snapshot of every stored refcount (rebalance/repair plumbing)."""
        with self._locked():
            return self._load_refs()

    def import_refs(self, counts: Mapping[str, int]) -> None:
        """Set refcounts for the given digests (overwriting existing ones).

        Used when chunk ownership moves between stores: the receiving
        store inherits the relinquishing store's counts verbatim instead
        of replaying one :meth:`add_refs` per historical manifest.
        """
        counts = {d: int(c) for d, c in counts.items() if c > 0}
        if not counts:
            return
        with self._locked():
            refs = self._load_refs()
            refs.update(counts)
            self._write_refs(refs)

    def forget_refs(self, digests: Iterable[str]) -> None:
        """Drop refcount entries without touching chunk files.

        The relinquishing side of a chunk migration: the bytes were
        already handed to the new owner, so decrement-and-delete
        (:meth:`release_refs`) would be wrong.
        """
        digests = set(digests)
        if not digests:
            return
        with self._locked():
            refs = self._load_refs()
            remaining = {d: c for d, c in refs.items() if d not in digests}
            if len(remaining) != len(refs):
                self._write_refs(remaining)

    def gc(self) -> dict[str, int]:
        """Delete unreferenced chunks and *expired* tmp files; stats dict.

        Tmp files younger than ``tmp_grace_s`` are left alone: a
        concurrent in-flight saver may still be writing them, and reaping
        a live tmp file would tear that save's chunk from under it.
        """
        with self._locked():
            refs = self._load_refs()
            live = {d for d, count in refs.items() if count > 0}
            if live != set(refs):
                self._write_refs({d: refs[d] for d in live})
            removed, freed = self._sweep_unreferenced(live)
        return {"chunks_removed": removed, "bytes_freed": freed}

    def _sweep_unreferenced(self, live: set) -> tuple[int, int]:
        """Delete dead payloads and expired tmp files (runs under the lock)."""
        removed = 0
        freed = 0
        for path in self.objects_dir.iterdir():
            if not path.is_file():
                continue
            if path.name.endswith(".tmp"):
                if not self._tmp_expired(path):
                    continue
            elif path.name in live:
                continue
            freed += path.stat().st_size
            path.unlink(missing_ok=True)
            removed += 1
        return removed, freed

    def reconcile(self, expected_refs: Mapping[str, int], repair: bool = True) -> dict:
        """Cross-check stored refcounts against ``expected_refs`` (fsck).

        ``expected_refs`` is the ground truth recomputed from the live
        manifests.  Reports (and with ``repair`` fixes) leaked or missing
        refcounts and deletes orphan chunk files nothing references.
        """
        expected = {d: int(c) for d, c in expected_refs.items() if c > 0}
        with self._locked():
            refs = self._load_refs()
            ref_fixes = {
                digest: (refs.get(digest, 0), expected.get(digest, 0))
                for digest in set(refs) | set(expected)
                if refs.get(digest, 0) != expected.get(digest, 0)
            }
            entries = self._payload_entries()
            orphans = sorted(d for d in entries if d not in expected)
            orphan_bytes = sum(entries[d] for d in orphans)
            if repair:
                if ref_fixes:
                    self._write_refs(expected)
                for digest in orphans:
                    self._delete_payload(digest)
                if orphans:
                    self._flush_index()
        return {
            "ref_fixes": ref_fixes,
            "orphan_chunks_removed": orphans,
            "orphan_bytes": orphan_bytes,
        }

    # -- accounting -----------------------------------------------------------

    def _payload_entries(self) -> dict[str, int]:
        """Stored ``digest -> payload size`` map (accounting/fsck hook)."""
        return {
            p.name: p.stat().st_size
            for p in self.objects_dir.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        }

    def chunk_ids(self) -> list[str]:
        return sorted(self._payload_entries())

    def total_bytes(self) -> int:
        """Physical bytes held by chunk payloads (deduplicated storage)."""
        return sum(self._payload_entries().values())

    def __len__(self) -> int:
        return len(self.chunk_ids())


class FileStore:
    """Directory-backed blob store addressed by generated file ids.

    File ids embed a content digest prefix, which gives cheap corruption
    detection on recovery without a separate checksum channel.

    State dicts can additionally be saved *chunked* through
    :meth:`save_state_chunks`: each layer becomes a content-addressed
    chunk (keyed by its precomputed tensor hash) and only a small JSON
    manifest enters the flat blob namespace.  Identical layers across
    saves are stored once.

    Robustness plumbing (all optional, all off by default):

    * ``faults`` — a :class:`~repro.faults.FaultInjector` consulted at
      every operation boundary (chaos testing);
    * ``retry`` — a :class:`~repro.retry.RetryPolicy` applied around each
      primitive operation, so transient failures are absorbed here and
      callers only ever see a typed error once the budget is spent;
    * per-save write-ahead intent journals (:meth:`begin_journal`) that
      make multi-step saves all-or-nothing across crashes;
    * ``verify_reads`` — re-hash chunk payloads on recovery and re-fetch
      on mismatch; defaults to on exactly when ``faults``/``retry`` are
      configured (a chaos or production-robust deployment) so benchmark
      paths keep their cost profile.

    Parallel transfer plane (all off by default, so the serial cost
    profile of existing deployments is unchanged):

    * ``workers`` — default concurrency for chunk I/O: with ``workers > 1``
      :meth:`save_state_chunks`, :meth:`recover_state_chunks`, and
      :meth:`get_chunks` fan out over a bounded ``ThreadPoolExecutor``;
    * ``chunk_cache`` — an in-process hot-chunk LRU (a :class:`ChunkCache`
      or a byte budget), consulted before every chunk read and shared with
      the recovery-chain prefetcher.  Concurrent fetches of one digest are
      coalesced into a single transfer while the cache is attached.
    """

    def __init__(
        self,
        root: str | Path,
        faults=None,
        retry=None,
        tmp_grace_s: float = DEFAULT_TMP_GRACE_S,
        verify_reads: bool | None = None,
        workers: int = 0,
        chunk_cache: "ChunkCache | int | None" = None,
        layout: str | None = None,
        durability: str | None = None,
        segment_bytes: int | None = None,
        codec: str | None = None,
        cdc: bool | None = None,
        cdc_target_bytes: int | None = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.layout = self._resolve_layout(layout)
        self.codec = chunk_codecs.resolve_codec(codec)
        self.cdc = self._resolve_cdc(cdc)
        self.cdc_target_bytes = (
            int(cdc_target_bytes) if cdc_target_bytes else DEFAULT_CDC_TARGET_BYTES
        )
        if durability is not None and durability not in DURABILITY_MODES:
            raise ValueError(
                f"durability must be one of {DURABILITY_MODES}, got {durability!r}"
            )
        self.durability = durability or (
            "group" if self.layout == "segments" else "none"
        )
        self.segment_bytes = segment_bytes
        self.faults = faults
        self.retry = retry
        self.tmp_grace_s = float(tmp_grace_s)
        self.verify_reads = (
            bool(faults is not None or retry is not None)
            if verify_reads is None
            else bool(verify_reads)
        )
        self.workers = int(workers)
        if isinstance(chunk_cache, int):
            chunk_cache = ChunkCache(max_bytes=chunk_cache) if chunk_cache > 0 else None
        self.chunk_cache = chunk_cache
        self._singleflight = _SingleFlight()
        self._chunks: ChunkStore | None = None
        self._journal_local = threading.local()
        self._obs_tracer = obs.tracer()
        self._obs_coalesced = obs.registry().counter(
            "mmlib_chunk_cache_coalesced_total",
            "Chunk fetches coalesced by single-flight")
        self._clean_orphaned_tmp_files()

    def _clean_orphaned_tmp_files(self) -> None:
        """Drop *expired* ``*.tmp`` leftovers from interrupted saves.

        Young tmp files are spared: another process may be mid-write (the
        tmp+rename protocol means they vanish on their own on success).
        """
        grace = self.tmp_grace_s
        now = time.time()
        for path in self.root.iterdir():
            if not (path.is_file() and path.name.endswith(".tmp")):
                continue
            try:
                if path.stat().st_mtime <= now - grace:
                    path.unlink(missing_ok=True)
            except FileNotFoundError:
                pass

    def _resolve_layout(self, layout: str | None) -> str:
        """Pick the chunk layout: explicit > on-disk > env var > default.

        An existing store keeps whatever layout its chunk directory was
        created with, so reopening never silently migrates data.
        """
        if layout is not None:
            if layout not in CHUNK_LAYOUTS:
                raise ValueError(
                    f"layout must be one of {CHUNK_LAYOUTS}, got {layout!r}"
                )
            return layout
        chunk_root = self.root / CHUNK_DIR_NAME
        if (chunk_root / "segments").is_dir():
            return "segments"
        if (chunk_root / "objects").is_dir():
            return "files"
        env = os.environ.get(LAYOUT_ENV_VAR, "")
        if env in CHUNK_LAYOUTS:
            return env
        return DEFAULT_LAYOUT

    @staticmethod
    def _resolve_cdc(cdc: bool | None) -> bool:
        """Content-defined chunking: explicit flag > env var > off.

        Off by default — v1 whole-layer manifests stay the format existing
        deployments write; both formats are always readable.
        """
        if cdc is not None:
            return bool(cdc)
        return os.environ.get(CDC_ENV_VAR, "").strip().lower() in ("1", "true", "on")

    @property
    def chunks(self) -> ChunkStore:
        """The store's content-addressed chunk substore (lazily created)."""
        if self._chunks is None:
            if self.layout == "segments":
                from .segments import SegmentChunkStore

                kwargs = {}
                if self.segment_bytes is not None:
                    kwargs["segment_bytes"] = self.segment_bytes
                self._chunks = SegmentChunkStore(
                    self.root / CHUNK_DIR_NAME,
                    tmp_grace_s=self.tmp_grace_s,
                    durability=self.durability,
                    codec=self.codec,
                    **kwargs,
                )
            else:
                self._chunks = ChunkStore(
                    self.root / CHUNK_DIR_NAME,
                    tmp_grace_s=self.tmp_grace_s,
                    durability=self.durability,
                    codec=self.codec,
                )
        return self._chunks

    # -- fault/retry plumbing ---------------------------------------------------

    def _fault(self, op: str, nbytes: int = 0) -> None:
        if self.faults is not None:
            self.faults.fail_point(op, nbytes=nbytes)

    def _call(self, op: str, attempt, retry_on: tuple = (TransientStoreError,)):
        """Run one primitive operation under the store's retry policy."""
        if self.retry is None:
            return attempt()
        return self.retry.call(attempt, op=op, retry_on=retry_on)

    # -- parallel plane helpers --------------------------------------------------

    def _effective_workers(self, workers: int | None, n_items: int) -> int:
        """Concurrency for one batch: explicit override, else the store default."""
        limit = self.workers if workers is None else int(workers)
        if limit <= 1 or n_items <= 1:
            return 1
        return min(limit, n_items)

    def _cache_get(self, digest: str) -> bytes | None:
        if self.chunk_cache is None:
            return None
        return self.chunk_cache.get(digest)

    def _cache_put(self, digest: str, data: bytes) -> None:
        if self.chunk_cache is not None:
            self.chunk_cache.put(digest, data)

    def _cache_discard(self, digest: str) -> None:
        if self.chunk_cache is not None:
            self.chunk_cache.discard(digest)

    # -- write-ahead intent journal ---------------------------------------------

    @property
    def journal_dir(self) -> Path:
        return self.root / JOURNAL_DIR_NAME

    def begin_journal(self) -> SaveJournal:
        """Open a new intent journal and make it this thread's active one.

        Store operations on this thread record their intents into the
        active journal until :meth:`commit_journal` / :meth:`abort_journal`
        closes it.  The journal is per-thread, so concurrent savers
        sharing one store never interleave intents.
        """
        journal = SaveJournal.create(self.journal_dir)
        self._journal_local.active = journal
        return journal

    def _active_journal(self) -> SaveJournal | None:
        return getattr(self._journal_local, "active", None)

    def journal_active(self) -> bool:
        """True while this thread has an open save journal.

        Nested save transactions (a service delegating to another over the
        same store) use this to join the outer journal instead of opening
        a second one.
        """
        return self._active_journal() is not None

    def journal_record(self, op: str, **fields) -> None:
        """Record one intent into the active journal (no-op without one)."""
        journal = self._active_journal()
        if journal is not None:
            journal.record(op, **fields)

    def commit_journal(self) -> None:
        """Mark the active journal committed and drop it."""
        journal = self._active_journal()
        self._journal_local.active = None
        if journal is not None:
            journal.commit()

    def abandon_journal(self) -> None:
        """Detach the active journal, leaving its file on disk.

        Crash simulation uses this: the "dead" process stops journaling
        while the incomplete journal stays behind for fsck to find.
        """
        self._journal_local.active = None

    def abort_journal(self) -> dict:
        """Roll back the active journal's recorded steps (failed save)."""
        journal = self._active_journal()
        self._journal_local.active = None
        if journal is None:
            return {"blobs_removed": 0, "chunks_removed": 0, "refs_released": 0, "docs": []}
        return self.rollback_journal(journal)

    def incomplete_journals(self) -> list[SaveJournal]:
        """Journals of saves that never finished (crashed mid-save)."""
        if not self.journal_dir.exists():
            return []
        active = self._active_journal()
        journals = []
        for path in sorted(self.journal_dir.glob(f"*{JOURNAL_SUFFIX}")):
            if active is not None and path == active.path:
                continue  # this thread's own in-flight save
            journals.append(SaveJournal.load(path))
        return journals

    def rollback_journal(self, journal: SaveJournal) -> dict:
        """Undo a journal's recorded steps, newest first; returns stats.

        Blobs are unlinked raw (not via :meth:`delete`) because ref
        releases are rolled back through their own ``refs`` records —
        deleting a manifest the normal way would release them twice.
        Document intents cannot be undone here (the file store holds no
        document-store handle); they are returned under ``"docs"`` for
        the caller (the save transaction or fsck) to delete.
        """
        stats = {"blobs_removed": 0, "chunks_removed": 0, "refs_released": 0, "docs": []}
        for entry in reversed(journal.entries):
            op = entry.get("op")
            if op == "doc":
                stats["docs"].append((entry["collection"], entry["doc_id"]))
            elif op == "blob":
                if self._discard_blob(entry["file_id"]):
                    stats["blobs_removed"] += 1
            elif op == "refs":
                self.chunks.release_refs(entry["digests"])
                stats["refs_released"] += len(entry["digests"])
            elif op == "chunk":
                digest = entry["digest"]
                if self.chunks.refcount(digest) == 0 and self.chunks.has(digest):
                    self.chunks.drop(digest)
                    stats["chunks_removed"] += 1
        journal.discard()
        return stats

    # -- save ------------------------------------------------------------------

    @staticmethod
    def _new_file_id(data: bytes, suffix: str = "") -> str:
        """Generate a blob id: content-digest prefix + uniquifier + suffix."""
        digest = hashlib.sha256(data).hexdigest()[:16]
        return f"{digest}-{uuid.uuid4().hex[:12]}{suffix}"

    def _write_blob(self, file_id: str, data: bytes) -> None:
        """Write one blob under an explicit id (fault/retry wrapped).

        The write is atomic (tmp+rename) and idempotent under retries:
        every attempt targets the same file id.
        """
        path = self._path(file_id)
        tmp = path.with_name(path.name + ".tmp")

        def attempt() -> None:
            self._fault("file.write", nbytes=len(data))
            if self.faults is not None and self.faults.torn_write("file.write"):
                tmp.write_bytes(data[: max(1, len(data) // 2)])
                raise TransientStoreError(
                    f"injected torn write for {file_id!r} (partial tmp left behind)"
                )
            tmp.write_bytes(data)
            tmp.replace(path)

        self._call("file.write", attempt)

    def save_bytes(self, data: bytes, suffix: str = "") -> str:
        """Persist a byte payload; returns the generated file id.

        The file id embeds a content digest prefix, so reads can detect
        corruption without a separate checksum channel.
        """
        file_id = self._new_file_id(data, suffix)
        self._write_blob(file_id, data)
        self.journal_record("blob", file_id=file_id)
        return file_id

    def save_file(self, source: str | Path) -> str:
        """Copy an existing file into the store; returns the file id."""
        source = Path(source)
        data = source.read_bytes()
        return self.save_bytes(data, suffix=source.suffix)

    # -- chunked state save/recover ---------------------------------------------

    def _put_chunk_data(self, digest: str, buffer) -> bool:
        """Write one chunk (fault/retry wrapped) without journaling.

        The save journal is thread-local, so parallel savers write through
        this primitive and the calling thread records the intents.
        """

        def attempt() -> bool:
            self._fault("chunk.write", nbytes=_buffer_nbytes(buffer))
            if self.faults is not None and self.faults.torn_write("chunk.write"):
                self.chunks.write_torn(digest, buffer)
                raise TransientStoreError(
                    f"injected torn chunk write for {digest[:12]}… (partial tmp left)"
                )
            return self.chunks.put(digest, buffer)

        return self._call("chunk.write", attempt)

    def put_chunk(self, digest: str, buffer) -> bool:
        """Store one content-addressed chunk; True iff bytes were written.

        Idempotent under retries (content addressing): a repeated attempt
        after a torn write converges on the same chunk file.
        """
        wrote = self._put_chunk_data(digest, buffer)
        if wrote:
            self.journal_record("chunk", digest=digest)
        return wrote

    def _read_chunk(self, digest: str) -> bytes:
        """Fault/retry-wrapped chunk read, straight from the chunk store."""

        def attempt() -> bytes:
            self._fault("chunk.read")
            data = self.chunks.get(digest)
            if self.faults is not None:
                data = self.faults.corrupt("chunk.read", data)
            return data

        return self._call("chunk.read", attempt)

    def _charged_read(self, digest: str) -> bytes:
        """One chunk fetch crossing the link (transfer-accounting hook)."""
        return self._read_chunk(digest)

    def _charged_read_many(self, digests: list[str], workers: int | None) -> dict[str, bytes]:
        """One batched fetch crossing the link (transfer-accounting hook)."""
        return self._fetch_many(digests, workers)

    def _fetch_many(self, digests: list[str], workers: int | None) -> dict[str, bytes]:
        """Concurrently read chunks over a bounded worker pool."""
        n = self._effective_workers(workers, len(digests))
        if n <= 1:
            return {digest: self._read_chunk(digest) for digest in digests}
        with ThreadPoolExecutor(max_workers=n) as pool:
            payloads = list(pool.map(self._read_chunk, digests))
        return dict(zip(digests, payloads))

    def get_chunk(self, digest: str) -> bytes:
        """Fetch one chunk's payload by digest (hot-chunk cache first)."""
        cached = self._cache_get(digest)
        if cached is not None:
            return cached
        if self.chunk_cache is None:
            return self._charged_read(digest)
        leader_event = self._singleflight.begin(digest)
        if leader_event is None:
            try:
                data = self._charged_read(digest)
                self._cache_put(digest, data)
                return data
            finally:
                self._singleflight.done(digest)
        leader_event.wait()
        self._obs_coalesced.inc()
        cached = self._cache_get(digest)
        if cached is not None:
            return cached
        return self._charged_read(digest)  # leader failed or entry evicted

    def get_chunks(self, digests: Iterable[str], workers: int | None = None) -> dict[str, bytes]:
        """Fetch many chunks concurrently; returns digest -> payload.

        Duplicates are fetched once, cached chunks are served from the
        hot-chunk LRU without touching the store, and concurrent callers
        asking for the same digest share one transfer.  ``workers``
        overrides the store's default concurrency for this batch.
        """
        unique = list(dict.fromkeys(digests))
        with self._obs_tracer.span("store.get_chunks", n=len(unique)) as sp:
            results: dict[str, bytes] = {}
            misses: list[str] = []
            for digest in unique:
                cached = self._cache_get(digest)
                if cached is not None:
                    results[digest] = cached
                else:
                    misses.append(digest)
            sp.set(misses=len(misses))
            if not misses:
                return results
            if self.chunk_cache is None:
                results.update(self._charged_read_many(misses, workers))
                return results
            leaders: list[str] = []
            waits: list[tuple[str, threading.Event]] = []
            for digest in misses:
                event = self._singleflight.begin(digest)
                if event is None:
                    leaders.append(digest)
                else:
                    waits.append((digest, event))
            if waits:
                self._obs_coalesced.inc(len(waits))
                sp.set(coalesced=len(waits))
            try:
                if leaders:
                    fetched = self._charged_read_many(leaders, workers)
                    for digest, data in fetched.items():
                        self._cache_put(digest, data)
                    results.update(fetched)
            finally:
                for digest in leaders:
                    self._singleflight.done(digest)
            for digest, event in waits:
                event.wait()
                cached = self._cache_get(digest)
                results[digest] = cached if cached is not None else self._charged_read(digest)
            return results

    def has_chunk(self, digest: str) -> bool:
        return self.chunks.has(digest)

    def save_state_chunks(
        self,
        state: Mapping[str, np.ndarray],
        layer_hashes: Mapping[str, str],
        suffix: str = ".params" + MANIFEST_SUFFIX,
        workers: int | None = None,
    ) -> str:
        """Save a flat state dict as per-layer chunks plus a manifest.

        ``layer_hashes`` maps each layer name to its already-computed
        tensor hash (the Merkle leaves) — the chunk ids.  Nothing is
        re-hashed here, and already-contiguous arrays are written from a
        ``memoryview`` without copying.  With ``workers`` (default: the
        store's ``workers`` setting) distinct chunks are written
        concurrently; the crash-consistency journal is still recorded on
        the calling thread, since journals are thread-local.  Returns the
        manifest's file id, which carries the ``.manifest`` suffix so
        recovery, deletion, and sizing recognize it.
        """
        if not suffix.endswith(MANIFEST_SUFFIX):
            raise ValueError(f"manifest suffix must end with {MANIFEST_SUFFIX!r}")
        with self._obs_tracer.span("store.save_chunks", layers=len(state)):
            return self._save_state_chunks(state, layer_hashes, suffix, workers)

    @staticmethod
    def _layer_buffer(array: np.ndarray):
        payload = array if array.flags.c_contiguous else np.ascontiguousarray(array)
        if payload.ndim and payload.nbytes:
            return memoryview(payload).cast("B")
        # 0-d and empty arrays cannot be cast; both are tiny
        return payload.tobytes()

    def _save_state_chunks(self, state, layer_hashes, suffix, workers) -> str:
        if self.cdc:
            return self._save_state_chunks_cdc(state, layer_hashes, suffix, workers)
        entries = []
        digests = []
        buffers = {}
        for name, array in state.items():
            digest = layer_hashes[name]
            buffers.setdefault(digest, self._layer_buffer(array))
            entries.append(
                [name, {"chunk": digest, "dtype": array.dtype.str, "shape": list(array.shape)}]
            )
            digests.append(digest)
        return self._publish_chunk_manifest(
            MANIFEST_FORMAT, entries, digests, buffers, suffix, workers
        )

    def _save_state_chunks_cdc(self, state, layer_hashes, suffix, workers) -> str:
        """v2 manifest: each layer is a run of content-defined chunks.

        Chunk ids are sha256 digests of the *uncompressed* chunk bytes, so
        identical byte runs dedup across layers, models, and tenants even
        when the surrounding layer differs.  The layer's tensor hash is
        kept in the entry for provenance/diff tooling.
        """
        entries = []
        digests = []
        buffers = {}
        for name, array in state.items():
            buffer = self._layer_buffer(array)
            view = memoryview(buffer)
            layer_digests = []
            for start, end in split_buffer(buffer, target_bytes=self.cdc_target_bytes):
                piece = view[start:end]
                digest = hashlib.sha256(piece).hexdigest()
                buffers.setdefault(digest, piece)
                layer_digests.append(digest)
            entries.append(
                [
                    name,
                    {
                        "chunks": layer_digests,
                        "dtype": array.dtype.str,
                        "shape": list(array.shape),
                        "hash": layer_hashes[name],
                    },
                ]
            )
            digests.extend(layer_digests)
        return self._publish_chunk_manifest(
            MANIFEST_FORMAT_V2, entries, digests, buffers, suffix, workers
        )

    def _publish_chunk_manifest(
        self, fmt, entries, digests, buffers, suffix, workers
    ) -> str:
        """Write the chunk batch, take refs, and publish the manifest."""
        unique = list(buffers)
        n = self._effective_workers(workers, len(unique))
        if n <= 1:
            for digest in unique:
                self.put_chunk(digest, buffers[digest])
        else:
            with ThreadPoolExecutor(max_workers=n) as pool:
                wrote = list(
                    pool.map(lambda d: self._put_chunk_data(d, buffers[d]), unique)
                )
            # journal intents on the calling thread (journals are thread-local)
            for digest, written in zip(unique, wrote):
                if written:
                    self.journal_record("chunk", digest=digest)
        # group fsync: one durability barrier for the whole batch, before
        # the refs/manifest publish acknowledges the save
        self.chunks.flush()
        self.chunks.add_refs(digests)
        self.journal_record("refs", digests=digests)
        manifest = json.dumps(
            {"format": fmt, "layers": entries}, sort_keys=True
        ).encode()
        return self.save_bytes(manifest, suffix=suffix)

    def recover_state_chunks(
        self,
        file_id: str,
        verify: bool | None = None,
        workers: int | None = None,
    ) -> "OrderedDict[str, np.ndarray]":
        """Rebuild the state dict a manifest describes (bitwise identical).

        With ``verify`` (default: the store's ``verify_reads`` flag) every
        chunk payload is re-hashed against its content digest; a mismatch
        — in-transit corruption on a flaky link — is re-fetched up to the
        retry policy's attempt limit before surfacing as a typed
        :class:`StoreCorruptionError`.  With ``workers`` (default: the
        store's ``workers`` setting) chunks are fetched concurrently in one
        batch and digest verification runs off the fetch critical path;
        layer order in the returned dict always matches the manifest.
        """
        verify = self.verify_reads if verify is None else verify
        with self._obs_tracer.span("store.recover_chunks", file_id=file_id) as sp:
            manifest = self.read_manifest(file_id)
            layers = manifest["layers"]
            sp.set(layers=len(layers))
            state: "OrderedDict[str, np.ndarray]" = OrderedDict()
            n = self._effective_workers(workers, len(layers))
            if n <= 1:
                for name, meta in layers:
                    state[name] = self._recover_layer(meta, verify)
                return state
            payloads = self.get_chunks(
                [d for _, meta in layers for d in layer_chunk_digests(meta)],
                workers=n,
            )
            with ThreadPoolExecutor(max_workers=n) as pool:
                arrays = list(
                    pool.map(
                        lambda pair: self._recover_layer(pair[1], verify, payloads),
                        layers,
                    )
                )
            for (name, _), array in zip(layers, arrays):
                state[name] = array
            return state

    def _recover_layer(
        self, meta: dict, verify: bool, payloads: dict | None = None
    ) -> np.ndarray:
        """Rebuild one layer from a v1 or v2 manifest entry."""
        if "chunks" in meta:
            return self._recover_cdc_array(meta, verify, payloads)
        initial = payloads.get(meta["chunk"]) if payloads else None
        return self._recover_chunk_array(meta, verify, initial=initial)

    def _fetch_verified_chunk(
        self, digest: str, verify: bool, initial: bytes | None = None
    ) -> bytes:
        """Fetch one content-digest (v2) chunk, re-fetching on mismatch."""
        attempts = 1
        if verify and self.retry is not None:
            attempts = max(1, self.retry.max_attempts)
        raw = initial
        for _attempt in range(attempts):
            if raw is None:
                raw = self.get_chunk(digest)
            if not verify or hashlib.sha256(raw).hexdigest() == digest:
                return raw
            # a poisoned cache entry would make every re-fetch return the
            # same bad payload — drop it so the retry hits the store
            self._cache_discard(digest)
            raw = None
        raise StoreCorruptionError(
            f"chunk {digest!r} is corrupt: content digest mismatch persisted "
            f"across {attempts} fetch attempt(s)"
        )

    def _recover_cdc_array(
        self, meta: dict, verify: bool, payloads: dict | None = None
    ) -> np.ndarray:
        """Reassemble one layer from its content-defined chunk run (v2)."""
        parts = [
            self._fetch_verified_chunk(
                digest, verify, initial=payloads.get(digest) if payloads else None
            )
            for digest in meta["chunks"]
        ]
        data = parts[0] if len(parts) == 1 else b"".join(parts)
        try:
            array = np.frombuffer(data, dtype=np.dtype(meta["dtype"])).reshape(
                meta["shape"]
            )
        except ValueError as exc:  # reassembled size disagrees with the manifest
            raise StoreCorruptionError(
                f"layer reassembly mismatch for chunk run "
                f"{[d[:12] for d in meta['chunks']]}: {exc}"
            ) from exc
        return array.copy()

    def _recover_chunk_array(
        self, meta: dict, verify: bool, initial: bytes | None = None
    ) -> np.ndarray:
        digest = meta["chunk"]
        attempts = 1
        if verify and self.retry is not None:
            attempts = max(1, self.retry.max_attempts)
        raw = initial
        for attempt in range(1, attempts + 1):
            if raw is None:
                raw = self.get_chunk(digest)
            try:
                array = np.frombuffer(raw, dtype=np.dtype(meta["dtype"])).reshape(
                    meta["shape"]
                )
            except ValueError:  # payload size disagrees with the manifest
                array = None
            if array is not None:
                if not verify:
                    return array.copy()
                # lazy import: repro.core imports this module at package init
                from ..core.hashing import tensor_hash

                if tensor_hash(array) == digest:
                    return array.copy()
            # a poisoned cache entry would make every re-fetch return the
            # same bad payload — drop it so the retry hits the store
            self._cache_discard(digest)
            raw = None
        raise StoreCorruptionError(
            f"chunk {digest!r} is corrupt: payload mismatch persisted "
            f"across {attempts} fetch attempt(s)"
        )

    def read_manifest(self, file_id: str) -> dict:
        """Load and validate a manifest blob."""
        try:
            payload = json.loads(self.recover_bytes(file_id).decode())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"file {file_id!r} is corrupt: not a parsable manifest ({exc})"
            ) from exc
        fmt = payload.get("format") if isinstance(payload, dict) else None
        if fmt not in MANIFEST_FORMATS:
            raise StoreCorruptionError(
                f"file {file_id!r} is not a chunked-state manifest "
                f"(format {fmt!r}; accepted: {MANIFEST_FORMATS})"
            )
        return payload

    @staticmethod
    def is_manifest_id(file_id: str) -> bool:
        return file_id.endswith(MANIFEST_SUFFIX)

    # -- recover -----------------------------------------------------------------

    def _path(self, file_id: str) -> Path:
        if "/" in file_id or file_id.startswith("."):
            raise ValueError(f"invalid file id: {file_id!r}")
        return self.root / file_id

    # Raw blob primitives: no fault hooks, no journaling.  Rollback, fsck,
    # and replica repair operate on what is *stored*, not on what a flaky
    # link would deliver, and a sharded store overrides these to fan out
    # over its member stores.

    def _discard_blob(self, file_id: str) -> bool:
        """Unlink one blob; True iff it existed (rollback/repair path)."""
        path = self._path(file_id)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def _blob_size(self, file_id: str) -> int:
        """On-disk size of one blob."""
        try:
            return self._path(file_id).stat().st_size
        except FileNotFoundError:
            raise FileNotFoundInStoreError(
                f"no stored file with id {file_id!r}"
            ) from None

    def _read_blob_raw(self, file_id: str) -> bytes:
        """Read one blob straight from disk (no faults, no digest check)."""
        try:
            return self._path(file_id).read_bytes()
        except FileNotFoundError:
            raise FileNotFoundInStoreError(
                f"no stored file with id {file_id!r}"
            ) from None

    def _restore_blob(self, file_id: str, data: bytes) -> None:
        """Atomically write one blob outside the fault plane (repair path)."""
        path = self._path(file_id)
        tmp = path.with_name(f"{path.name}-{uuid.uuid4().hex[:8]}.tmp")
        tmp.write_bytes(data)
        tmp.replace(path)

    def recover_bytes(self, file_id: str) -> bytes:
        """Load a payload by file id, verifying the embedded digest.

        A digest mismatch raises the typed :class:`StoreCorruptionError`
        (an ``OSError`` subclass, so legacy ``IOError`` handlers still
        apply); with a retry policy the read is re-attempted first, which
        heals in-transit corruption from a chaos injector or flaky link.
        """
        path = self._path(file_id)

        def attempt() -> bytes:
            self._fault("file.read")
            if not path.exists():
                raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")
            data = path.read_bytes()
            if self.faults is not None:
                data = self.faults.corrupt("file.read", data)
            expected = file_id.split("-", 1)[0]
            actual = hashlib.sha256(data).hexdigest()[: len(expected)]
            if actual != expected:
                raise StoreCorruptionError(
                    f"stored file {file_id!r} is corrupt: digest {actual} != {expected}"
                )
            return data

        return self._call(
            "file.read", attempt, retry_on=(TransientStoreError, StoreCorruptionError)
        )

    def recover_to(self, file_id: str, destination: str | Path) -> Path:
        """Copy a stored file out of the store to ``destination``."""
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_bytes(self.recover_bytes(file_id))
        return destination

    # -- management ---------------------------------------------------------------

    def ping(self) -> bool:
        """Cheap liveness probe through the fault plane.

        Touches no payload data — the only cost is the injected-fault
        check — so failure detectors can poll members at a high rate.
        Returns ``True`` when the store is reachable; a down or flaky
        member raises its typed transient error instead.
        """
        self._fault("store.ping")
        return True

    def exists(self, file_id: str) -> bool:
        return self._path(file_id).exists()

    def delete(self, file_id: str) -> bool:
        """Remove a stored file; returns whether it existed.

        Deleting a manifest releases its chunk references; chunks no other
        manifest still points at are deleted with it.
        """
        if not self.exists(file_id):
            return False
        if self.is_manifest_id(file_id):
            try:
                manifest = self.read_manifest(file_id)
            except (IOError, ValueError, json.JSONDecodeError):
                manifest = None  # corrupt manifest: drop the blob, keep chunks
            if manifest is not None:
                self.chunks.release_refs(manifest_chunk_digests(manifest))
        return self._discard_blob(file_id)

    def size(self, file_id: str) -> int:
        """Logical size in bytes of one stored file.

        For a manifest this is the manifest blob plus the raw bytes of
        every referenced layer — the bytes a recovery materializes —
        independent of how much of it is deduplicated or compressed on
        disk (see :meth:`total_bytes` for the physical view).  Layer
        sizes come from the manifest's dtype/shape metadata, so the
        answer is the same on every layout and codec.
        """
        size = self._blob_size(file_id)
        if self.is_manifest_id(file_id):
            manifest = self.read_manifest(file_id)
            for _name, meta in manifest["layers"]:
                size += int(np.dtype(meta["dtype"]).itemsize) * int(
                    np.prod(meta["shape"], dtype=np.int64)
                )
        return size

    def total_bytes(self) -> int:
        """Total *physical* bytes stored (deduplicated chunks counted once).

        In-flight ``*.tmp`` files are not stored blobs and are excluded.
        """
        total = sum(
            p.stat().st_size
            for p in self.root.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )
        chunk_dir = self.root / CHUNK_DIR_NAME
        if chunk_dir.exists():
            total += self.chunks.total_bytes()
            refs = self.chunks._refs_path
            if refs.exists():
                total += refs.stat().st_size
        return total

    def file_ids(self) -> list[str]:
        """Ids of stored blobs (excluding in-flight ``*.tmp`` files)."""
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_file() and not p.name.endswith(".tmp")
        )

    def gc_chunks(self) -> dict[str, int]:
        """Sweep unreferenced chunks (see :meth:`ChunkStore.gc`)."""
        if (self.root / CHUNK_DIR_NAME).exists():
            return self.chunks.gc()
        return {"chunks_removed": 0, "bytes_freed": 0}

    def clear(self) -> None:
        shutil.rmtree(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._chunks = None
        self._journal_local = threading.local()
        if self.chunk_cache is not None:
            self.chunk_cache.clear()
