"""Shared file storage: the paper's "external storage" substrate.

Models get split into metadata (documents) and files (code, serialized
parameters, compressed datasets).  The :class:`FileStore` persists files
under generated identifiers in a shared directory, exactly like the
evaluation's shared external storage that all machines can access.
"""

from __future__ import annotations

import hashlib
import shutil
import uuid
from pathlib import Path

__all__ = ["FileStore", "FileNotFoundInStoreError"]


class FileNotFoundInStoreError(KeyError):
    """Raised when recovering a file id that was never saved (or deleted)."""


class FileStore:
    """Directory-backed blob store addressed by generated file ids.

    File ids embed a content digest prefix, which gives cheap corruption
    detection on recovery without a separate checksum channel.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- save ------------------------------------------------------------------

    def save_bytes(self, data: bytes, suffix: str = "") -> str:
        """Persist a byte payload; returns the generated file id."""
        digest = hashlib.sha256(data).hexdigest()[:16]
        file_id = f"{digest}-{uuid.uuid4().hex[:12]}{suffix}"
        path = self._path(file_id)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        tmp.replace(path)
        return file_id

    def save_file(self, source: str | Path) -> str:
        """Copy an existing file into the store; returns the file id."""
        source = Path(source)
        data = source.read_bytes()
        return self.save_bytes(data, suffix=source.suffix)

    # -- recover -----------------------------------------------------------------

    def _path(self, file_id: str) -> Path:
        if "/" in file_id or file_id.startswith("."):
            raise ValueError(f"invalid file id: {file_id!r}")
        return self.root / file_id

    def recover_bytes(self, file_id: str) -> bytes:
        """Load a payload by file id, verifying the embedded digest."""
        path = self._path(file_id)
        if not path.exists():
            raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")
        data = path.read_bytes()
        expected = file_id.split("-", 1)[0]
        actual = hashlib.sha256(data).hexdigest()[: len(expected)]
        if actual != expected:
            raise IOError(
                f"stored file {file_id!r} is corrupt: digest {actual} != {expected}"
            )
        return data

    def recover_to(self, file_id: str, destination: str | Path) -> Path:
        """Copy a stored file out of the store to ``destination``."""
        destination = Path(destination)
        destination.parent.mkdir(parents=True, exist_ok=True)
        destination.write_bytes(self.recover_bytes(file_id))
        return destination

    # -- management ---------------------------------------------------------------

    def exists(self, file_id: str) -> bool:
        return self._path(file_id).exists()

    def delete(self, file_id: str) -> bool:
        """Remove a stored file; returns whether it existed."""
        path = self._path(file_id)
        if path.exists():
            path.unlink()
            return True
        return False

    def size(self, file_id: str) -> int:
        """Stored size in bytes of one file."""
        path = self._path(file_id)
        if not path.exists():
            raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")
        return path.stat().st_size

    def total_bytes(self) -> int:
        """Total bytes across all stored files."""
        return sum(p.stat().st_size for p in self.root.iterdir() if p.is_file())

    def file_ids(self) -> list[str]:
        return sorted(p.name for p in self.root.iterdir() if p.is_file())

    def clear(self) -> None:
        shutil.rmtree(self.root)
        self.root.mkdir(parents=True, exist_ok=True)
