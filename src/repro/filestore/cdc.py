"""Content-defined chunking (Gear rolling hash) for sub-layer dedup.

A layer's byte stream is split where the low bits of a Gear rolling
hash are zero, so chunk boundaries depend on *content*, not position:
a one-byte edit re-chunks only the chunk it lands in (and at most its
successor, when the edit creates or destroys the boundary between
them), and every other chunk keeps its digest and dedups against the
unedited layer.

The hash at position ``i`` is ``sum(gear[b[i-j]] << j)`` over the
trailing window, with a *low-bit* boundary mask of ``bits =
log2(target)`` bits.  Because a ``<< j`` term for ``j >= bits``
contributes nothing to the low bits, the masked hash depends only on
the last ``bits`` bytes — which makes the scan vectorizable as
``bits`` shifted adds over numpy arrays instead of a per-byte Python
loop.  Boundary candidates are then walked once to enforce min/max
chunk bounds (defaults: 64 KiB target, 16 KiB min, 256 KiB max).

The gear table is derived from SHA-256 so boundaries are stable across
processes, platforms, and releases — a requirement for cross-model and
cross-tenant dedup.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = [
    "DEFAULT_TARGET_BYTES",
    "gear_table",
    "split_buffer",
]

DEFAULT_TARGET_BYTES = 64 * 1024
#: candidates are scanned in blocks to bound the vectorization workspace
_SCAN_BLOCK_BYTES = 1 << 22


def gear_table() -> np.ndarray:
    """The 256-entry Gear byte table, derived deterministically."""
    rows = [
        int.from_bytes(
            hashlib.sha256(b"repro-cdc-gear:%d" % index).digest()[:8], "little"
        )
        for index in range(256)
    ]
    return np.array(rows, dtype=np.uint64)


_GEAR = gear_table()


def _boundary_candidates(data: np.ndarray, bits: int) -> np.ndarray:
    """Positions whose masked rolling hash is zero (vectorized scan).

    Each block is scanned with ``bits - 1`` bytes of left context so the
    result is identical to one pass over the whole buffer.
    """
    mask = np.uint64((1 << bits) - 1)
    length = len(data)
    found: list[np.ndarray] = []
    for start in range(0, length, _SCAN_BLOCK_BYTES):
        end = min(length, start + _SCAN_BLOCK_BYTES)
        context = max(0, start - (bits - 1))
        gears = _GEAR[data[context:end]]
        span = end - context
        hashes = np.zeros(span, dtype=np.uint64)
        for shift in range(bits):
            hashes[shift:] += gears[: span - shift] << np.uint64(shift)
        hashes &= mask
        local = np.flatnonzero(hashes[start - context :] == 0)
        if len(local):
            found.append(local + start)
    if not found:
        return np.empty(0, dtype=np.int64)
    return np.concatenate(found)


def split_buffer(
    buffer,
    target_bytes: int = DEFAULT_TARGET_BYTES,
    min_bytes: int | None = None,
    max_bytes: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``buffer`` into content-defined ``(start, end)`` spans.

    Spans are contiguous and cover the buffer exactly.  Every span except
    the last is at least ``min_bytes`` (default ``target/4``); no span
    exceeds ``max_bytes`` (default ``target*4``).  Empty buffers yield a
    single empty span so every layer has at least one chunk.
    """
    if target_bytes < 64:
        raise ValueError(f"CDC target too small: {target_bytes}")
    if min_bytes is None:
        min_bytes = max(1, target_bytes // 4)
    if max_bytes is None:
        max_bytes = target_bytes * 4
    if not min_bytes <= target_bytes <= max_bytes:
        raise ValueError(
            f"CDC bounds out of order: {min_bytes} <= {target_bytes} "
            f"<= {max_bytes}"
        )

    data = np.frombuffer(memoryview(buffer).cast("B"), dtype=np.uint8)
    length = len(data)
    if length == 0:
        return [(0, 0)]
    if length <= min_bytes:
        return [(0, length)]

    bits = max(1, int(round(np.log2(target_bytes))))
    candidates = _boundary_candidates(data, bits)

    spans: list[tuple[int, int]] = []
    start = 0
    index = 0
    total = len(candidates)
    while start < length:
        # a boundary at position p cuts *after* p
        while index < total and candidates[index] + 1 - start < min_bytes:
            index += 1
        if index < total and candidates[index] + 1 - start <= max_bytes:
            cut = int(candidates[index]) + 1
            index += 1
        else:
            cut = min(start + max_bytes, length)
        spans.append((start, cut))
        start = cut
    return spans
