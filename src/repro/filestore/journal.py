"""Per-save write-ahead intent journals for crash-consistent saves.

A save that touches the shared stores is multi-step: chunks, refcounts,
blobs, documents.  A crash between any two steps would leak half a model.
Each save therefore appends its intents to a journal file under
``<store root>/journal/<save id>.jsonl`` — one JSON object per line — and
deletes the journal only after the final commit marker:

    {"op": "chunk", "digest": "..."}        chunk newly written
    {"op": "refs", "digests": ["...", …]}   refcounts incremented
    {"op": "blob", "file_id": "..."}        blob (params/manifest/code) written
    {"op": "doc", "collection": "models", "doc_id": "..."}
    {"op": "commit"}

A journal still present on disk is a save that did not finish: either it
lacks the commit marker (crashed mid-save → roll the steps back, newest
first) or it has one (crashed between commit and unlink → nothing to
undo).  ``fsck`` drives that recovery; the file store only provides the
mechanics.

Appends are flushed per record; a torn final line (the crash hit the
journal write itself) parses as "skip the tail", which is safe because an
unrecorded step is at worst an orphan the refcount cross-check repairs.
"""

from __future__ import annotations

import json
import uuid
from pathlib import Path

__all__ = ["SaveJournal", "JOURNAL_SUFFIX"]

JOURNAL_SUFFIX = ".jsonl"


class SaveJournal:
    """Append-only intent log for one in-flight save."""

    def __init__(self, path: Path, entries: list[dict] | None = None):
        self.path = Path(path)
        self.entries: list[dict] = list(entries or [])

    @classmethod
    def create(cls, directory: Path) -> "SaveJournal":
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"save-{uuid.uuid4().hex[:16]}{JOURNAL_SUFFIX}"
        path.touch()
        return cls(path)

    @classmethod
    def load(cls, path: Path) -> "SaveJournal":
        """Parse a journal from disk, tolerating a torn final line."""
        entries: list[dict] = []
        try:
            raw = Path(path).read_text()
        except FileNotFoundError:
            raw = ""
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                break  # torn tail from a crash mid-append: ignore the rest
        return cls(Path(path), entries)

    @property
    def save_id(self) -> str:
        return self.path.stem

    @property
    def committed(self) -> bool:
        return any(entry.get("op") == "commit" for entry in self.entries)

    def record(self, op: str, **fields) -> None:
        """Append one intent record and flush it to disk."""
        entry = {"op": op, **fields}
        self.entries.append(entry)
        # flushed, not fsynced: a lost tail means at worst an unrecorded
        # step, which the fsck refcount/orphan cross-checks repair anyway
        with open(self.path, "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            handle.flush()

    def commit(self) -> None:
        """Mark the save complete and drop the journal."""
        self.record("commit")
        self.path.unlink(missing_ok=True)

    def discard(self) -> None:
        """Remove the journal file without touching any recorded state."""
        self.path.unlink(missing_ok=True)

    def doc_entries(self) -> list[tuple[str, str]]:
        """(collection, doc_id) pairs recorded by the save, oldest first."""
        return [
            (entry["collection"], entry["doc_id"])
            for entry in self.entries
            if entry.get("op") == "doc"
        ]
