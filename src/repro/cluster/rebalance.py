"""Membership changes and replica-set health for the sharded file store.

Two maintenance planes share this module:

* :class:`ClusterRebalancer` — adds/removes members.  Consistent hashing
  means only keys whose owner set actually changed move; the rebalancer
  diffs the old and new rings over the cluster's key universe, streams
  exactly those chunks/blobs over a bounded worker pool, and records
  every completed move in an on-disk journal so an interrupted rebalance
  resumes without re-copying.
* :func:`replication_fsck` — cross-checks every replica set against the
  ring's R: under-replicated keys are repaired from a surviving copy
  (digest-verified first), stray replicas on non-owners are dropped once
  the owners are whole, and per-member refcounts are synced.  This is
  also what finishes quorum writes that succeeded degraded.  The per-key
  heal itself lives in :mod:`repro.cluster.antientropy`, shared with the
  online :class:`~repro.cluster.antientropy.AntiEntropyScanner` so
  offline and online repair semantics cannot diverge.

Both operate on the members' *raw* storage primitives — no fault hooks,
no link charges — because maintenance audits what is stored, not what a
flaky link would deliver.
"""

from __future__ import annotations

import json
import threading
import uuid
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from .. import obs
from .antientropy import (
    blob_universe as _blob_universe,
    chunk_universe as _chunk_universe,
    repair_blob,
    repair_chunk,
)
from .sharded_store import ShardedFileStore

__all__ = ["ClusterRebalancer", "replication_fsck"]

#: Directory (under the sharded store's meta root) holding rebalance journals.
REBALANCE_DIR_NAME = "rebalance"


class ClusterRebalancer:
    """Streams ring-ownership diffs when cluster membership changes.

    The move journal (``<meta root>/rebalance/<id>.jsonl``) records one
    line per completed move.  Re-running a rebalance with the same
    ``journal_id`` — after a crash mid-stream — skips everything already
    journaled and finishes the remainder; the journal is deleted on
    completion.
    """

    def __init__(self, store: ShardedFileStore, workers: int = 4):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.workers = int(workers)
        self.journal_dir = Path(store.root) / REBALANCE_DIR_NAME

    # -- membership entry points --------------------------------------------

    def add_member(self, name: str, member, journal_id: str | None = None) -> dict:
        """Join ``member`` to the cluster and stream its share of keys in."""
        if name in self.store.members:
            raise ValueError(f"member {name!r} is already in the cluster")
        old_ring = self.store.ring.copy()
        self.store.members[name] = member
        self.store.ring.add_member(name)
        return self._migrate(old_ring, journal_id=journal_id)

    def remove_member(self, name: str, journal_id: str | None = None) -> dict:
        """Drain ``name`` and drop it: ownership recomputes without it, its
        keys stream to their new owners (the leaving store still serves
        as a copy source during the drain), then it leaves.

        When any move fails the drain is *incomplete*: keys that did not
        copy may exist only on the leaver, so it stays in
        ``store.members`` (off the ring, still readable as a source) and
        the stats carry ``drained: False``.  Re-running ``remove_member``
        with the same ``journal_id`` — or ``resume`` followed by another
        ``remove_member`` — finishes the drain and then drops the member.
        """
        if name not in self.store.members:
            raise KeyError(f"member {name!r} is not in the cluster")
        if name in self.store.ring:
            old_ring = self.store.ring.copy()
            self.store.ring.remove_member(name)
        else:
            # retrying a previously-failed drain: the ring change already
            # happened, so plan from actual placement like resume() does
            old_ring = None
        stats = self._migrate(old_ring, journal_id=journal_id)
        if stats["failed"]:
            stats["drained"] = False
            return stats
        self.store.members.pop(name, None)
        stats["drained"] = True
        return stats

    def resume(self, journal_id: str) -> dict:
        """Finish an interrupted rebalance against the *current* ring.

        Membership was already switched by the interrupted call and the
        old ring is gone, so the remaining work is recomputed from actual
        placement: every key whose holder set still differs from the
        ring's owners gets its move, and journaled moves are skipped."""
        return self._migrate(None, journal_id=journal_id)

    # -- planning ------------------------------------------------------------

    def _plan(self, old_ring) -> list[dict]:
        """Moves for every key whose owner set changed, deterministic order.

        With ``old_ring`` (a membership change in progress) the plan is
        the ring diff — only ownership that moved.  Without it (a resume,
        where the pre-change ring no longer exists) the plan diffs what
        members actually hold against the current ring."""
        if old_ring is None:
            return self._plan_from_placement()
        store = self.store
        moves: list[dict] = []
        chunk_moved = old_ring.moved_keys(store.ring, sorted(_chunk_universe(store)))
        for digest, (old_owners, new_owners) in chunk_moved.items():
            moves.append(
                {"kind": "chunk", "key": digest, "old": old_owners, "new": new_owners}
            )
        blob_moved = old_ring.moved_keys(store.ring, sorted(_blob_universe(store)))
        for file_id, (old_owners, new_owners) in blob_moved.items():
            moves.append(
                {"kind": "blob", "key": file_id, "old": old_owners, "new": new_owners}
            )
        return moves

    def _plan_from_placement(self) -> list[dict]:
        store = self.store
        moves: list[dict] = []
        for digest in sorted(_chunk_universe(store)):
            owners = store.ring.owners(digest)
            holders = [
                n for n in sorted(store.members)
                if store.members[n].chunks.has(digest)
            ]
            if set(holders) != set(owners):
                moves.append(
                    {"kind": "chunk", "key": digest, "old": holders, "new": owners}
                )
        for file_id in sorted(_blob_universe(store)):
            owners = store.ring.owners(file_id)
            holders = [
                n for n in sorted(store.members)
                if store.members[n].exists(file_id)
            ]
            if set(holders) != set(owners):
                moves.append(
                    {"kind": "blob", "key": file_id, "old": holders, "new": owners}
                )
        return moves

    # -- execution -----------------------------------------------------------

    def _migrate(self, old_ring, journal_id: str | None = None) -> dict:
        journal_id = journal_id or uuid.uuid4().hex[:12]
        journal_path = self.journal_dir / f"{journal_id}.jsonl"
        done: set[tuple[str, str]] = set()
        if journal_path.exists():
            for line in journal_path.read_text().splitlines():
                if line.strip():
                    entry = json.loads(line)
                    done.add((entry["kind"], entry["key"]))
        moves = [m for m in self._plan(old_ring) if (m["kind"], m["key"]) not in done]

        stats = {
            "journal_id": journal_id,
            "planned": len(moves) + len(done),
            "resumed_skips": len(done),
            "chunks_moved": 0,
            "blobs_moved": 0,
            "replicas_dropped": 0,
            "bytes_copied": 0,
            "failed": 0,
        }
        if moves:
            self.journal_dir.mkdir(parents=True, exist_ok=True)
            journal_lock = threading.Lock()

            registry = obs.registry()
            obs_moves = registry.counter(
                "mmlib_rebalance_moves_total", "Rebalance moves completed")
            obs_failed = registry.counter(
                "mmlib_rebalance_failures_total", "Rebalance moves that failed")
            events = obs.events()

            def execute(move: dict) -> None:
                try:
                    if move["kind"] == "chunk":
                        copied, dropped = self._move_chunk(move["key"], move["new"])
                        key_stat = "chunks_moved"
                    else:
                        copied, dropped = self._move_blob(move["key"], move["new"])
                        key_stat = "blobs_moved"
                except (KeyError, OSError):
                    with journal_lock:
                        stats["failed"] += 1
                    obs_failed.inc()
                    return
                with journal_lock:
                    if copied:
                        stats[key_stat] += 1
                        stats["bytes_copied"] += copied
                    stats["replicas_dropped"] += dropped
                if copied:
                    obs_moves.inc()
                    events.emit(
                        "rebalance_move", kind=move["kind"], key=move["key"],
                        bytes_copied=copied, to=list(move["new"]))
                    with journal_path.open("a") as handle:
                        handle.write(
                            json.dumps({"kind": move["kind"], "key": move["key"]}) + "\n"
                        )

            if self.workers > 1 and len(moves) > 1:
                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    list(pool.map(execute, moves))
            else:
                for move in moves:
                    execute(move)

        if stats["failed"] == 0:
            journal_path.unlink(missing_ok=True)
        return stats

    def _move_chunk(self, digest: str, new_owners: list[str]) -> tuple[int, int]:
        """Copy one chunk to its new owners, then retire stale replicas.

        Returns ``(bytes_copied, replicas_dropped)``.  The copy uses raw
        chunk I/O: content addressing means a re-run (resume) converges
        instead of duplicating, and refcounts travel with the data via
        ``import_refs``/``forget_refs`` rather than being replayed."""
        members = self.store.members
        holders = [n for n in sorted(members) if n in members and members[n].chunks.has(digest)]
        if not holders:  # refcount entry with no data anywhere: nothing to move
            for name in sorted(members):
                members[name].chunks.forget_refs([digest])
            return 0, 0
        source = next((n for n in new_owners if n in holders), holders[0])
        data = members[source].chunks.get(digest)
        refcount = max(members[n].chunks.refcount(digest) for n in holders)
        copied = 0
        for name in new_owners:
            if name not in holders:
                members[name].chunks.put(digest, data)
                copied += len(data)
            if refcount > 0:
                members[name].chunks.import_refs({digest: refcount})
        dropped = 0
        for name in holders:
            if name in new_owners:
                continue
            members[name].chunks.drop(digest)
            members[name].chunks.forget_refs([digest])
            dropped += 1
        return copied, dropped

    def _move_blob(self, file_id: str, new_owners: list[str]) -> tuple[int, int]:
        members = self.store.members
        holders = [n for n in sorted(members) if members[n].exists(file_id)]
        if not holders:
            return 0, 0
        source = next((n for n in new_owners if n in holders), holders[0])
        data = members[source]._read_blob_raw(file_id)
        copied = 0
        for name in new_owners:
            if name not in holders:
                members[name]._restore_blob(file_id, data)
                copied += len(data)
        dropped = 0
        for name in holders:
            if name in new_owners:
                continue
            members[name]._discard_blob(file_id)
            dropped += 1
        return copied, dropped


def replication_fsck(store: ShardedFileStore, repair: bool = True) -> dict:
    """Audit (and with ``repair`` restore) every replica set to R copies.

    For each chunk and blob in the cluster's universe, the ring names the
    members that *should* hold it.  Missing replicas are restored from a
    surviving copy — chunk payloads tensor-hash-verified when manifest
    metadata is known, blob payloads always verified against the
    id-embedded digest, so corruption is never propagated; a copy that
    fails verification leaves the key ``unrepairable`` instead.  Replicas
    sitting on non-owners (left behind by an interrupted rebalance) are
    dropped once every owner holds the key.
    """
    report = {
        "chunks_checked": 0,
        "blobs_checked": 0,
        "under_replicated": [],
        "repaired": [],
        "strays_dropped": [],
        "unrepairable": [],
    }

    def fold(result: dict) -> None:
        kind, key = result["kind"], result["key"]
        gone = result["missing"] + result["unreachable"]
        if gone:
            report["under_replicated"].append(
                {
                    "kind": kind,
                    "key": key,
                    "have": len(result["owners"]) - len(gone),
                    "want": len(result["owners"]),
                    "missing": gone,
                }
            )
        if result["status"] == "unrepairable":
            report["unrepairable"].append({"kind": kind, "key": key})
        if result["repaired_to"] or result["corrupt_healed"]:
            report["repaired"].append({"kind": kind, "key": key})
            store._clear_degraded(kind, key)
        for member in result["strays_dropped"]:
            report["strays_dropped"].append(
                {"kind": kind, "key": key, "member": member}
            )

    for digest in sorted(_chunk_universe(store)):
        report["chunks_checked"] += 1
        fold(repair_chunk(store, digest, repair=repair))

    for file_id in sorted(_blob_universe(store)):
        report["blobs_checked"] += 1
        fold(repair_blob(store, file_id, repair=repair))

    return report
