"""Sharded, replicated document store with the engine's Collection API.

Metadata documents get the same treatment as payload bytes: each
document is placed on R member stores by ``collection/doc_id`` ring
hash, writes need a quorum of owners, reads fail over in ring order and
read-repair replicas found missing a document.  Queries have no routing
key, so :meth:`_ShardedCollection.find` scatter-gathers every member,
deduplicates replicas by ``_id``, and applies sort/skip/limit globally —
per-member sorts cannot simply concatenate.

Members are anything with the engine's ``collection(name)`` API: plain
:class:`~repro.docstore.engine.DocumentStore`s, chaos-wrapped
:class:`~repro.faults.FaultyDocumentStore`s, or TCP clients.  MMlib
services take the sharded store wherever they take a document store.
"""

from __future__ import annotations

import json
import threading
from typing import Mapping

from .. import deadline as deadline_mod
from .. import obs
from ..docstore.documents import new_object_id, validate_document
from ..docstore.engine import DuplicateKeyError, NotFoundError, _sort_key
from ..docstore.query import resolve_path
from ..errors import QuorumWriteError, TransientStoreError
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["ShardedDocumentStore", "TOMBSTONES"]

#: A replica that raises one of these did not deliver; the client fails
#: over (reads) or counts the replica un-acked (writes).
_REPLICA_FAILURES = (NotFoundError, OSError)

#: Per-member collection recording quorum-acked deletes.  A tombstone's
#: ``_id`` is ``"<collection>/<doc_id>"`` — exactly the deleted
#: document's ring key, so tombstones and their documents always share
#: owners.  Tombstones stop read-repair and rebalancing from
#: resurrecting a delete that a failed replica missed, and are purged
#: once no member holds the document anymore.
TOMBSTONES = "__cluster_tombstones__"


def _copy(document: dict) -> dict:
    return json.loads(json.dumps(document))


class _ShardedCollection:
    """One logical collection spread over the cluster's members."""

    def __init__(self, store: "ShardedDocumentStore", name: str):
        self._store = store
        self.name = name

    def _owners(self, doc_id: str):
        ring = self._store.ring
        for member_name in ring.owners(f"{self.name}/{doc_id}"):
            yield member_name, self._store.members[member_name].collection(self.name)

    def _all_collections(self):
        for member_name in sorted(self._store.members):
            yield self._store.members[member_name].collection(self.name)

    # -- tombstones ----------------------------------------------------------

    def _tombstone_key(self, doc_id: str) -> str:
        return f"{self.name}/{doc_id}"

    def _is_tombstoned(self, doc_id: str) -> bool:
        """Whether any reachable owner records a quorum-acked delete of
        ``doc_id``.  The tombstone id *is* the document's ring key, so
        the owners consulted here are the ones the delete wrote to."""
        tombstone_id = self._tombstone_key(doc_id)
        for member_name in self._store.ring.owners(tombstone_id):
            graves = self._store.members[member_name].collection(TOMBSTONES)
            try:
                graves.get(tombstone_id)
            except (NotFoundError, OSError):
                continue
            return True
        return False

    def _tombstoned_ids(self) -> set[str]:
        """Every doc id in this collection with a tombstone anywhere."""
        prefix = f"{self.name}/"
        ids: set[str] = set()
        for member_name in sorted(self._store.members):
            graves = self._store.members[member_name].collection(TOMBSTONES)
            try:
                stones = graves.find({})
            except OSError:
                continue
            for stone in stones:
                if stone["_id"].startswith(prefix):
                    ids.add(stone["_id"][len(prefix):])
        return ids

    def _clear_tombstone(self, doc_id: str) -> None:
        """Best-effort removal of a tombstone from the document's owners
        (a fresh insert under a previously-deleted id supersedes it)."""
        tombstone_id = self._tombstone_key(doc_id)
        for member_name in self._store.ring.owners(tombstone_id):
            graves = self._store.members[member_name].collection(TOMBSTONES)
            try:
                graves.delete_one(tombstone_id)
            except OSError:
                continue

    def _reap(self, doc_id: str) -> None:
        """Finish a quorum-acked delete on replicas that missed it."""
        for collection in self._all_collections():
            try:
                collection.delete_one(doc_id)
            except OSError:
                continue

    # -- writes --------------------------------------------------------------

    def insert_one(self, document: dict) -> str:
        """Quorum-insert one document; returns its (shared) ``_id``.

        The id is generated *here*, once, so every replica stores the
        same document.  A replica already holding the id acknowledges
        (idempotent retry of a partially-acked insert); only when no
        replica inserted anything fresh does the duplicate surface to the
        caller as the engine's :class:`DuplicateKeyError`.
        """
        document = validate_document(document)
        doc_id = str(document.get("_id") or new_object_id())
        document["_id"] = doc_id
        self._clear_tombstone(doc_id)
        acks = 0
        fresh = 0
        duplicates = 0
        owner_count = 0
        missed: list[str] = []
        last_error: Exception | None = None
        for member_name, collection in self._owners(doc_id):
            owner_count += 1
            deadline_mod.check("docs.insert_one")
            if not self._store._member_allowed(member_name):
                missed.append(member_name)
                continue
            try:
                collection.insert_one(_copy(document))
                fresh += 1
            except DuplicateKeyError:
                duplicates += 1
            except _REPLICA_FAILURES as exc:
                last_error = exc
                if isinstance(exc, OSError):
                    self._store._member_down(member_name)
                missed.append(member_name)
                continue
            self._store._member_up(member_name)
            acks += 1
        if acks < self._store.write_quorum:
            self._store._note_quorum_failure(self.name, doc_id, acks)
            raise QuorumWriteError(
                f"document {self.name}/{doc_id} reached {acks}/{owner_count} "
                f"replicas (write quorum {self._store.write_quorum})"
            ) from last_error
        if duplicates and not fresh:
            raise DuplicateKeyError(
                f"duplicate _id {doc_id!r} in collection {self.name!r}"
            )
        if missed:
            self._store._note_degraded(self.name, doc_id)
            for member_name in missed:
                self._store._hint(member_name, self.name, doc_id)
        return doc_id

    def insert_many(self, documents: list[dict]) -> list[str]:
        return [self.insert_one(document) for document in documents]

    def replace_one(self, doc_id: str, document: dict) -> None:
        """Replace on every owner; owners missing the document get it
        inserted (write-time repair).  Raises :class:`NotFoundError` when
        no replica holds ``doc_id`` at all."""
        self.get(doc_id)  # existence check with failover; raises NotFoundError
        document = validate_document(document)
        document["_id"] = str(doc_id)
        acks = 0
        owner_count = 0
        missed: list[str] = []
        last_error: Exception | None = None
        for member_name, collection in self._owners(doc_id):
            owner_count += 1
            deadline_mod.check("docs.replace_one")
            if not self._store._member_allowed(member_name):
                missed.append(member_name)
                continue
            try:
                try:
                    collection.replace_one(doc_id, _copy(document))
                except NotFoundError:
                    collection.insert_one(_copy(document))
            except _REPLICA_FAILURES as exc:
                last_error = exc
                if isinstance(exc, OSError):
                    self._store._member_down(member_name)
                missed.append(member_name)
                continue
            self._store._member_up(member_name)
            acks += 1
        if acks < self._store.write_quorum:
            self._store._note_quorum_failure(self.name, doc_id, acks)
            raise QuorumWriteError(
                f"document {self.name}/{doc_id} replace reached {acks}/"
                f"{owner_count} replicas (write quorum {self._store.write_quorum})"
            ) from last_error
        if missed:
            self._store._note_degraded(self.name, doc_id)
            for member_name in missed:
                self._store._hint(member_name, self.name, doc_id)

    def update_one(self, query: dict, changes: dict) -> bool:
        """Find the first match cluster-wide, then update it by ``_id`` on
        every owner — replicas must converge on the same document, so the
        query is resolved once, not once per member."""
        target = self.find_one(query)
        if target is None:
            return False
        doc_id = target["_id"]
        acks = 0
        owner_count = 0
        missed: list[str] = []
        last_error: Exception | None = None
        for member_name, collection in self._owners(doc_id):
            owner_count += 1
            deadline_mod.check("docs.update_one")
            if not self._store._member_allowed(member_name):
                missed.append(member_name)
                continue
            try:
                if not collection.update_one({"_id": doc_id}, dict(changes)):
                    # replica is missing the doc: repair it, with changes applied
                    repaired = dict(target)
                    repaired.update(validate_document(dict(changes)))
                    repaired["_id"] = doc_id
                    try:
                        collection.insert_one(_copy(repaired))
                    except DuplicateKeyError:
                        pass
            except _REPLICA_FAILURES as exc:
                last_error = exc
                if isinstance(exc, OSError):
                    self._store._member_down(member_name)
                missed.append(member_name)
                continue
            self._store._member_up(member_name)
            acks += 1
        if acks < self._store.write_quorum:
            self._store._note_quorum_failure(self.name, doc_id, acks)
            raise QuorumWriteError(
                f"document {self.name}/{doc_id} update reached {acks}/"
                f"{owner_count} replicas (write quorum {self._store.write_quorum})"
            ) from last_error
        if missed:
            self._store._note_degraded(self.name, doc_id)
            for member_name in missed:
                self._store._hint(member_name, self.name, doc_id)
        return True

    def delete_one(self, doc_id: str) -> bool:
        """Quorum-delete: each acking owner records a tombstone *and*
        drops its copy.  A replica that missed the delete keeps the
        document, but the tombstone stops read-repair and rebalancing
        from resurrecting it — they finish the delete instead.  Partial
        acks leave the key in the degraded set so maintenance retries."""
        doc_id = str(doc_id)
        tombstone_id = self._tombstone_key(doc_id)
        removed = False
        acks = 0
        owner_count = 0
        missed: list[str] = []
        last_error: Exception | None = None
        for member_name, collection in self._owners(doc_id):
            owner_count += 1
            deadline_mod.check("docs.delete_one")
            if not self._store._member_allowed(member_name):
                missed.append(member_name)
                continue
            graves = self._store.members[member_name].collection(TOMBSTONES)
            try:
                try:
                    graves.insert_one({"_id": tombstone_id})
                except DuplicateKeyError:
                    pass  # idempotent retry of a partially-acked delete
                removed = collection.delete_one(doc_id) or removed
            except _REPLICA_FAILURES as exc:
                last_error = exc
                if isinstance(exc, OSError):
                    self._store._member_down(member_name)
                missed.append(member_name)
                continue
            self._store._member_up(member_name)
            acks += 1
        if acks < self._store.write_quorum:
            self._store._note_quorum_failure(self.name, doc_id, acks)
            raise QuorumWriteError(
                f"document {self.name}/{doc_id} delete reached {acks}/"
                f"{owner_count} replicas (write quorum {self._store.write_quorum})"
            ) from last_error
        if missed:
            self._store._note_degraded(self.name, doc_id)
            # the hint's delivery consults the tombstone, so replaying it
            # finishes the delete on the member that missed it
            for member_name in missed:
                self._store._hint(member_name, self.name, doc_id)
        else:
            self._store._clear_degraded(self.name, doc_id)
        return removed

    def delete_many(self, query: dict) -> int:
        """Resolve the query cluster-wide, then delete each match by id on
        its owners; the count is logical documents, not replica files."""
        matched = self.find(query)
        for document in matched:
            self.delete_one(document["_id"])
        return len(matched)

    # -- reads ---------------------------------------------------------------

    def get(self, doc_id: str) -> dict:
        """Fetch by id with failover; a hit after misses read-repairs the
        replicas found without the document.

        A copy shadowed by a tombstone (a replica that missed a
        quorum-acked delete) is *not* returned — the delete is finished
        instead.  When replicas were unreachable and the document was
        not found, absence is unproven, so the retryable
        :class:`TransientStoreError` is raised rather than
        :class:`NotFoundError` — callers like ``fsck`` must not
        garbage-collect on the strength of a degraded read.
        """
        doc_id = str(doc_id)
        failed = []
        unreachable = 0
        for member_name, collection in self._owners(doc_id):
            deadline_mod.check("docs.get")
            if not self._store._member_allowed(member_name):
                unreachable += 1  # breaker open: absence stays unproven
                continue
            try:
                document = collection.get(doc_id)
            except NotFoundError:
                self._store._member_up(member_name)
                failed.append(collection)
                continue
            except OSError:
                self._store._member_down(member_name)
                unreachable += 1
                continue
            self._store._member_up(member_name)
            if self._is_tombstoned(doc_id):
                self._reap(doc_id)
                raise NotFoundError(f"no document {doc_id!r} in {self.name!r}")
            if failed or unreachable:
                self._store._bump("failover_reads")
                self._repair(failed, document)
            return document
        if unreachable:
            raise TransientStoreError(
                f"document {self.name}/{doc_id}: {unreachable} replica(s) "
                "unreachable and the document was not proven absent"
            )
        raise NotFoundError(f"no document {doc_id!r} in {self.name!r}")

    def _repair(self, collections, document: dict) -> None:
        for collection in collections:
            try:
                collection.insert_one(_copy(document))
            except DuplicateKeyError:
                continue
            except _REPLICA_FAILURES:
                self._store._bump("repair_failures")
                continue
            self._store._bump("read_repairs")
            self._store._obs_events.emit(
                "read_repair", plane="docs", collection=self.name,
                key=document["_id"])
        self._store._clear_degraded(self.name, document["_id"])

    def get_many(self, doc_ids: list[str]) -> list[dict]:
        """Batched fetch grouped by primary owner (one trip per member);
        ids the batch missed fall back to per-id failover reads."""
        groups: dict[str, list[str]] = {}
        for doc_id in doc_ids:
            primary = self._store.ring.primary(f"{self.name}/{doc_id}")
            groups.setdefault(primary, []).append(str(doc_id))
        found: dict[str, dict] = {}
        for member_name in sorted(groups):
            group = groups[member_name]
            collection = self._store.members[member_name].collection(self.name)
            try:
                for document in collection.get_many(group):
                    found[document["_id"]] = document
            except OSError:
                pass  # member down: the per-id fallback below fails over
            for doc_id in group:
                if doc_id in found:
                    continue
                try:
                    found[doc_id] = self.get(doc_id)
                except NotFoundError:
                    continue  # missing ids are skipped, like the engine
        return [found[str(doc_id)] for doc_id in doc_ids if str(doc_id) in found]

    def find(
        self,
        query: dict | None = None,
        sort: list | None = None,
        limit: int | None = None,
        skip: int = 0,
    ) -> list[dict]:
        """Scatter-gather query: every member is asked (replicas of a
        document may sit anywhere), results are deduplicated by ``_id``,
        and sort/skip/limit apply to the merged set so pagination is
        cluster-wide, not per-shard.  Up to R-1 unreachable members are
        tolerated — every document has R owners, so at least one replica
        of each still answers.  At R or more unreachable members some
        documents may have *no* reachable replica, and silently treating
        them as absent would let callers (``fsck`` above all) mistake an
        outage for deletion — that raises the retryable
        :class:`TransientStoreError` instead.  Documents shadowed by a
        tombstone (quorum-deleted, one stale replica left) are filtered
        out rather than resurrected."""
        merged: dict[str, dict] = {}
        unreachable = 0
        for member_name in sorted(self._store.members):
            collection = self._store.members[member_name].collection(self.name)
            deadline_mod.check("docs.find")
            if not self._store._member_allowed(member_name):
                self._store._bump("failover_reads")
                unreachable += 1  # breaker open: results may be incomplete
                continue
            try:
                results = collection.find(query)
            except OSError:
                self._store._member_down(member_name)
                self._store._bump("failover_reads")
                unreachable += 1
                continue
            self._store._member_up(member_name)
            for document in results:
                merged.setdefault(document["_id"], document)
        if unreachable >= self._store._effective_replicas():
            raise TransientStoreError(
                f"collection {self.name!r}: {unreachable} member(s) unreachable "
                f"(replication factor {self._store._effective_replicas()}) — "
                "query results cannot be proven complete"
            )
        if merged:
            for doc_id in self._tombstoned_ids():
                merged.pop(doc_id, None)
        results = [merged[doc_id] for doc_id in sorted(merged)]
        if sort:
            for field, direction in reversed(list(sort)):
                if direction not in (1, -1):
                    raise ValueError(f"sort direction must be 1 or -1, got {direction}")
                results.sort(
                    key=lambda document: _sort_key(resolve_path(document, field)),
                    reverse=direction == -1,
                )
        if skip:
            if skip < 0:
                raise ValueError(f"skip must be >= 0, got {skip}")
            results = results[skip:]
        if limit is not None:
            if limit < 0:
                raise ValueError(f"limit must be >= 0, got {limit}")
            results = results[:limit]
        return results

    def find_one(self, query: dict) -> dict | None:
        results = self.find(query, limit=1)
        return results[0] if results else None

    def count(self, query: dict | None = None) -> int:
        return len(self.find(query))

    def storage_bytes(self) -> int:
        """Physical bytes across the cluster — replicas counted per copy."""
        total = 0
        for collection in self._all_collections():
            try:
                total += collection.storage_bytes()
            except OSError:
                continue
        return total


class ShardedDocumentStore:
    """R-of-N replicated document store over named member stores.

    Drop-in for the engine's :class:`~repro.docstore.engine.DocumentStore`
    wherever MMlib takes one (services, save transactions, fsck): it has
    the same ``collection``/``collection_names``/``drop_collection``/
    ``storage_bytes`` surface, with replication underneath.
    """

    def __init__(
        self,
        members: Mapping[str, object],
        replicas: int = 2,
        write_quorum: int | None = None,
        vnodes: int = DEFAULT_VNODES,
        detector=None,
        hint_log=None,
    ):
        if not members:
            raise ValueError("a sharded document store needs at least one member")
        self.members = dict(members)
        self.detector = detector
        self.hints = hint_log
        if detector is not None:
            for name in self.members:
                detector.add_member(name)
        self.ring = HashRing(sorted(self.members), replicas=replicas, vnodes=vnodes)
        effective = min(replicas, len(self.members))
        if write_quorum is None:
            write_quorum = effective // 2 + 1
        if not 1 <= write_quorum <= effective:
            raise ValueError(
                f"write_quorum must be in [1, {effective}], got {write_quorum}"
            )
        self.write_quorum = int(write_quorum)
        self._stats_lock = threading.Lock()
        self.cluster_stats = {
            "failover_reads": 0,
            "read_repairs": 0,
            "degraded_writes": 0,
            "repair_failures": 0,
        }
        self.degraded_keys: set[tuple[str, str]] = set()
        self._collections: dict[str, _ShardedCollection] = {}
        self._collections_lock = threading.Lock()
        registry = obs.registry()
        self._obs_events = obs.events()
        self._obs_cluster = {
            "failover_reads": registry.counter(
                "mmlib_cluster_failover_reads_total",
                "Reads served by a non-primary replica", plane="docs"),
            "read_repairs": registry.counter(
                "mmlib_cluster_read_repairs_total",
                "Replica copies healed during reads", plane="docs"),
            "degraded_writes": registry.counter(
                "mmlib_cluster_degraded_writes_total",
                "Writes acked below full replication", plane="docs"),
            "repair_failures": registry.counter(
                "mmlib_cluster_repair_failures_total",
                "Read-repair attempts that failed", plane="docs"),
        }
        self._obs_quorum_failures = registry.counter(
            "mmlib_cluster_quorum_write_failures_total",
            "Writes that missed quorum", plane="docs")

    # -- stats bookkeeping (shared with _ShardedCollection) ------------------

    def _bump(self, stat: str, by: int = 1) -> None:
        with self._stats_lock:
            self.cluster_stats[stat] += by
        self._obs_cluster[stat].inc(by)

    def _note_degraded(self, collection: str, doc_id: str) -> None:
        with self._stats_lock:
            self.cluster_stats["degraded_writes"] += 1
            self.degraded_keys.add((collection, doc_id))
        self._obs_cluster["degraded_writes"].inc()
        self._obs_events.emit(
            "degraded_write", plane="docs", collection=collection, key=doc_id)

    def _clear_degraded(self, collection: str, doc_id: str) -> None:
        with self._stats_lock:
            self.degraded_keys.discard((collection, doc_id))

    def _note_quorum_failure(self, collection: str, doc_id: str, acks: int) -> None:
        self._obs_quorum_failures.inc()
        self._obs_events.emit(
            "quorum_write_failed", plane="docs", collection=collection,
            key=doc_id, acks=acks, quorum=self.write_quorum)

    def _effective_replicas(self) -> int:
        """The replica count actually achievable with current membership."""
        return min(self.ring.replicas, len(self.members))

    # -- failure-detector / hint feeds (all no-ops when not wired) -----------

    def _member_allowed(self, name: str) -> bool:
        return self.detector is None or self.detector.allow(name)

    def _member_up(self, name: str) -> None:
        if self.detector is not None:
            self.detector.record_success(name)

    def _member_down(self, name: str) -> None:
        if self.detector is not None:
            self.detector.record_failure(name)

    def _hint(self, name: str, collection: str, doc_id: str) -> None:
        if self.hints is not None:
            self.hints.record(name, "doc", str(doc_id), collection=collection)

    # -- hinted handoff delivery ---------------------------------------------

    def hint_appliers(self) -> dict:
        """Kind → applier callables for a :class:`~repro.cluster.hints.HintDeliverer`."""
        return {"doc": self._apply_doc_hint}

    def _apply_doc_hint(self, member_name: str, hint) -> bool:
        """Deliver one document IOU, tombstone-safely.

        Hints carry no document body; delivery decides from *current*
        cluster state.  A document tombstoned since the hint was recorded
        gets the tombstone (and the delete finished) — replaying a hint
        never resurrects a quorum-acked delete.  Otherwise the live copy
        is read from a surviving owner and replicated to the member.
        Returns ``False`` (stale) when the member or its ownership is
        gone, or no owner holds the document anymore; raises the member's
        transient errors through so the deliverer retries later.
        """
        collection_name = hint.get("collection")
        doc_id = str(hint["key"])
        member = self.members.get(member_name)
        if member is None or collection_name is None:
            return False
        ring_key = f"{collection_name}/{doc_id}"
        if member_name not in self.ring.owners(ring_key):
            return False  # ownership moved on (rebalance since the write)
        sharded = self.collection(collection_name)
        if sharded._is_tombstoned(doc_id):
            graves = member.collection(TOMBSTONES)
            try:
                graves.insert_one({"_id": ring_key})
            except DuplicateKeyError:
                pass
            member.collection(collection_name).delete_one(doc_id)
            self._clear_degraded(collection_name, doc_id)
            return True
        document = None
        for name in self.ring.owners(ring_key):
            if name == member_name:
                continue
            try:
                document = self.members[name].collection(collection_name).get(doc_id)
                break
            except (NotFoundError, OSError):
                continue
        if document is None:
            return False  # no surviving replica: delete converged or data lost
        target = member.collection(collection_name)
        try:
            target.insert_one(_copy(document))
        except DuplicateKeyError:
            target.replace_one(doc_id, _copy(document))
        self._clear_degraded(collection_name, doc_id)
        return True

    # -- store surface --------------------------------------------------------

    def collection(self, name: str) -> _ShardedCollection:
        with self._collections_lock:
            existing = self._collections.get(name)
            if existing is not None:
                return existing
            created = _ShardedCollection(self, name)
            self._collections[name] = created
            return created

    def __getitem__(self, name: str) -> _ShardedCollection:
        return self.collection(name)

    def collection_names(self) -> list[str]:
        names: set[str] = set()
        for member in self.members.values():
            try:
                names.update(member.collection_names())
            except OSError:
                continue
        names.discard(TOMBSTONES)  # bookkeeping, not user data
        return sorted(names)

    def drop_collection(self, name: str) -> None:
        prefix = f"{name}/"
        for member in self.members.values():
            member.drop_collection(name)
            graves = member.collection(TOMBSTONES)
            for stone in graves.find({}):
                if stone["_id"].startswith(prefix):
                    graves.delete_one(stone["_id"])
        with self._collections_lock:
            self._collections.pop(name, None)

    def storage_bytes(self) -> int:
        """Physical bytes across the cluster — replicas counted per copy."""
        total = 0
        for member in self.members.values():
            try:
                total += member.storage_bytes()
            except OSError:
                continue
        return total

    # -- membership (placement only; data movement is the rebalancer's) ------

    def rebalance_documents(self) -> dict:
        """Re-place every document according to the *current* ring: copy to
        new owners missing it, drop replicas from non-owners.  Used after
        membership changes; also heals under-replicated documents.

        Tombstoned documents are never re-propagated: a replica that
        missed a quorum-acked delete gets the delete finished here
        instead, and tombstones whose document is provably gone from
        every member are purged."""
        copied = 0
        dropped = 0
        # tombstones first: re-place each by its own id (which *is* the
        # deleted document's ring key) and learn what is deleted before
        # copying documents around
        tombstoned: set[str] = set()
        stone_holders: dict[str, set[str]] = {}
        for member_name in sorted(self.members):
            graves = self.members[member_name].collection(TOMBSTONES)
            try:
                stones = graves.find({})
            except OSError:
                continue
            for stone in stones:
                tombstoned.add(stone["_id"])
                stone_holders.setdefault(stone["_id"], set()).add(member_name)
        for tombstone_id, holding in stone_holders.items():
            owners = set(self.ring.owners(tombstone_id))
            for member_name in owners - holding:
                try:
                    self.members[member_name].collection(TOMBSTONES).insert_one(
                        {"_id": tombstone_id}
                    )
                except (DuplicateKeyError, OSError):
                    continue
            for member_name in holding - owners:
                try:
                    self.members[member_name].collection(TOMBSTONES).delete_one(
                        tombstone_id
                    )
                except OSError:
                    continue
        for name in self.collection_names():
            merged: dict[str, dict] = {}
            holders: dict[str, set[str]] = {}
            for member_name in sorted(self.members):
                collection = self.members[member_name].collection(name)
                try:
                    documents = collection.find({})
                except OSError:
                    continue
                for document in documents:
                    merged.setdefault(document["_id"], document)
                    holders.setdefault(document["_id"], set()).add(member_name)
            for doc_id, document in merged.items():
                if f"{name}/{doc_id}" in tombstoned:
                    # quorum-deleted: finish the delete, don't re-copy
                    for member_name in holders[doc_id]:
                        try:
                            if self.members[member_name].collection(name).delete_one(
                                doc_id
                            ):
                                dropped += 1
                        except OSError:
                            continue
                    self._clear_degraded(name, doc_id)
                    continue
                owners = set(self.ring.owners(f"{name}/{doc_id}"))
                for member_name in owners - holders[doc_id]:
                    try:
                        self.members[member_name].collection(name).insert_one(
                            _copy(document)
                        )
                        copied += 1
                    except (DuplicateKeyError, OSError):
                        continue
                for member_name in holders[doc_id] - owners:
                    try:
                        if self.members[member_name].collection(name).delete_one(doc_id):
                            dropped += 1
                    except OSError:
                        continue
                self._clear_degraded(name, doc_id)
        purged = self._purge_dead_tombstones(tombstoned)
        return {
            "documents_copied": copied,
            "replicas_dropped": dropped,
            "tombstones_purged": purged,
        }

    def _purge_dead_tombstones(self, tombstoned: set[str]) -> int:
        """Drop tombstones whose document no member holds anymore.

        A tombstone is only purged when *every* member definitively
        answered "not found" — an unreachable member might still hold a
        stale copy that the tombstone must keep shadowing."""
        purged = 0
        for tombstone_id in sorted(tombstoned):
            collection_name, _, doc_id = tombstone_id.partition("/")
            gone = True
            for member_name in sorted(self.members):
                try:
                    self.members[member_name].collection(collection_name).get(doc_id)
                except NotFoundError:
                    continue
                except OSError:
                    gone = False  # cannot prove the stale copy is gone
                    break
                gone = False
                break
            if not gone:
                continue
            for member_name in sorted(self.members):
                try:
                    self.members[member_name].collection(TOMBSTONES).delete_one(
                        tombstone_id
                    )
                except OSError:
                    continue
            purged += 1
        return purged

    def add_member(self, name: str, store) -> dict:
        """Add a member and re-place documents whose ownership moved."""
        self.members[name] = store
        self.ring.add_member(name)
        return self.rebalance_documents()

    def remove_member(self, name: str) -> dict:
        """Drain and drop a member: ownership recomputes without it, its
        documents stream to the new owners, then it leaves the cluster."""
        if name not in self.members:
            raise KeyError(f"member {name!r} is not in the cluster")
        self.ring.remove_member(name)
        stats = self.rebalance_documents()
        self.members.pop(name, None)
        return stats
