"""Consistent-hash placement ring: keys -> R-of-N member stores.

The cluster plane shards content-addressed chunks, blobs, and metadata
documents across member stores.  Placement must be (a) deterministic —
every client computes the same owners from the same membership, with no
coordination service; (b) balanced — each member owns roughly ``1/N`` of
the key space; and (c) stable — adding or removing one member moves only
the keys whose ownership actually changed, not the whole key space.

A classic consistent-hash ring with virtual nodes gives all three: each
member is hashed onto the ring at ``vnodes`` positions, a key's owners
are the first ``replicas`` *distinct* members found walking clockwise
from the key's own hash, and membership changes only reassign the arcs
adjacent to the touched member's tokens.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Mapping

__all__ = ["HashRing"]

#: Default virtual nodes per member.  64 tokens keep the per-member load
#: within a few percent of uniform for small clusters while the ring
#: stays tiny (N * 64 sorted ints).
DEFAULT_VNODES = 64


def _hash64(data: str) -> int:
    """Stable 64-bit position on the ring (leading SHA-256 bytes)."""
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """Deterministic key placement over a set of named members.

    ``replicas`` is the replication factor R: :meth:`owners` returns up
    to R distinct members per key, in ring (preference) order.  The ring
    is a pure placement function — it holds member *names*, never store
    handles, so snapshots are cheap and rebalance plans can diff two
    rings without touching any data.
    """

    def __init__(
        self,
        members: Iterable[str] | Mapping[str, object] = (),
        replicas: int = 2,
        vnodes: int = DEFAULT_VNODES,
    ):
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.replicas = int(replicas)
        self.vnodes = int(vnodes)
        self._members: set[str] = set()
        self._tokens: list[int] = []
        self._token_owner: dict[int, str] = {}
        for name in members:
            self.add_member(name)

    # -- membership --------------------------------------------------------

    def members(self) -> list[str]:
        return sorted(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, name: str) -> bool:
        return name in self._members

    def add_member(self, name: str) -> None:
        if not name:
            raise ValueError("member name must be non-empty")
        if name in self._members:
            raise ValueError(f"member {name!r} is already on the ring")
        self._members.add(name)
        for index in range(self.vnodes):
            token = _hash64(f"{name}#{index}")
            # 64-bit collisions are astronomically unlikely; resolve the
            # tie deterministically anyway so every client agrees
            while token in self._token_owner and self._token_owner[token] != name:
                token = (token + 1) % (1 << 64)
            if token not in self._token_owner:
                bisect.insort(self._tokens, token)
            self._token_owner[token] = name

    def remove_member(self, name: str) -> None:
        if name not in self._members:
            raise KeyError(f"member {name!r} is not on the ring")
        self._members.discard(name)
        dead = [t for t, owner in self._token_owner.items() if owner == name]
        for token in dead:
            del self._token_owner[token]
            index = bisect.bisect_left(self._tokens, token)
            if index < len(self._tokens) and self._tokens[index] == token:
                del self._tokens[index]

    # -- placement ---------------------------------------------------------

    def owners(self, key: str, count: int | None = None) -> list[str]:
        """The first ``count`` (default R) distinct members clockwise from
        ``key``'s ring position, in preference order.

        Fewer than ``count`` names come back when the ring has fewer
        members — a one-member "cluster" simply owns everything once.
        """
        if not self._members:
            return []
        wanted = self.replicas if count is None else int(count)
        wanted = min(wanted, len(self._members))
        start = bisect.bisect_right(self._tokens, _hash64(key))
        owners: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._tokens)):
            token = self._tokens[(start + offset) % len(self._tokens)]
            name = self._token_owner[token]
            if name in seen:
                continue
            seen.add(name)
            owners.append(name)
            if len(owners) == wanted:
                break
        return owners

    def primary(self, key: str) -> str | None:
        """The key's first-preference member (``owners(key)[0]``)."""
        owners = self.owners(key, count=1)
        return owners[0] if owners else None

    # -- snapshots / diffing ----------------------------------------------

    def copy(self) -> "HashRing":
        """Independent snapshot with identical membership and placement."""
        return HashRing(self.members(), replicas=self.replicas, vnodes=self.vnodes)

    def moved_keys(self, other: "HashRing", keys: Iterable[str]) -> dict[str, tuple[list[str], list[str]]]:
        """Keys whose owner set differs between ``self`` (old) and
        ``other`` (new); maps key -> (old_owners, new_owners).

        The rebalancer streams exactly these keys and nothing else.
        """
        moved: dict[str, tuple[list[str], list[str]]] = {}
        for key in keys:
            old = self.owners(key)
            new = other.owners(key)
            if set(old) != set(new):
                moved[key] = (old, new)
        return moved

    def __repr__(self) -> str:
        return (
            f"HashRing({len(self._members)} members, R={self.replicas}, "
            f"vnodes={self.vnodes})"
        )
