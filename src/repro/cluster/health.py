"""Per-member failure detection: scoreboard, flap damping, circuit breaker.

The sharded stores learn about member health twice over: every quorum
write and failover read reports its per-replica outcome here, and a
:class:`HealthMonitor` adds cheap periodic probes so an idle cluster
still notices a death.  The detector turns that stream into one of three
states per member:

``healthy``
    No recent failures; requests flow normally.
``suspect``
    Mixed signals — some failures since the last full recovery.  Requests
    still flow (the member may only be slow), but the scoreboard shows
    the streaks.
``down``
    ``failure_threshold`` failures accumulated without a full recovery.
    The member's circuit breaker opens: :meth:`FailureDetector.allow`
    fast-fails requests for ``breaker_cooldown_s``, then admits a single
    half-open trial.  A trial success moves the member back through
    ``suspect`` (``recovery_threshold`` consecutive successes reach
    ``healthy``); a trial failure re-trips the breaker.

Flap damping: each re-trip within ``flap_window_s`` of the previous one
doubles the cooldown (capped at ``max_cooldown_s``), so a member cycling
up and down pays exponentially growing quiet periods instead of dragging
every quorum write through its death throes.  A trip after a long stable
stretch resets the cooldown to its base value.

The scoreboard is exposed as obs gauges (``mmlib_member_state``, plus
fast-fail and trip counters) and as :meth:`FailureDetector.snapshot` for
``mmlib stats``.
"""

from __future__ import annotations

import threading
from typing import Callable, Mapping

from .. import obs

__all__ = [
    "STATE_HEALTHY",
    "STATE_SUSPECT",
    "STATE_DOWN",
    "FailureDetector",
    "HealthMonitor",
]

STATE_HEALTHY = "healthy"
STATE_SUSPECT = "suspect"
STATE_DOWN = "down"

#: Gauge encoding for the member-state metric.
_STATE_VALUES = {STATE_HEALTHY: 0, STATE_SUSPECT: 1, STATE_DOWN: 2}


class _Member:
    """Mutable scoreboard entry for one member (guarded by the detector)."""

    __slots__ = (
        "state", "failure_streak", "success_streak", "trips",
        "open_until", "cooldown_s", "last_trip_at", "probing",
        "last_failure_at", "last_success_at",
    )

    def __init__(self) -> None:
        self.state = STATE_HEALTHY
        self.failure_streak = 0
        self.success_streak = 0
        self.trips = 0
        self.open_until = 0.0
        self.cooldown_s = 0.0  # set on first trip
        self.last_trip_at: float | None = None
        self.probing = False  # a half-open trial is in flight
        self.last_failure_at: float | None = None
        self.last_success_at: float | None = None


class FailureDetector:
    """Health scoreboard + circuit breaker over named cluster members.

    Outcome feeding is push-based (:meth:`record_success` /
    :meth:`record_failure`) so the detector needs no knowledge of what a
    member *is* — file store, document store, or both report into the
    same entry, keyed by member name.  One detector instance is meant to
    be shared by every sharded layer of a deployment.
    """

    def __init__(
        self,
        members=(),
        failure_threshold: int = 3,
        recovery_threshold: int = 2,
        breaker_cooldown_s: float = 0.5,
        max_cooldown_s: float = 30.0,
        flap_window_s: float = 60.0,
        clock=None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if recovery_threshold < 1:
            raise ValueError("recovery_threshold must be >= 1")
        if breaker_cooldown_s < 0 or max_cooldown_s < breaker_cooldown_s:
            raise ValueError(
                "need 0 <= breaker_cooldown_s <= max_cooldown_s, got "
                f"{breaker_cooldown_s}/{max_cooldown_s}"
            )
        self.failure_threshold = int(failure_threshold)
        self.recovery_threshold = int(recovery_threshold)
        self.breaker_cooldown_s = float(breaker_cooldown_s)
        self.max_cooldown_s = float(max_cooldown_s)
        self.flap_window_s = float(flap_window_s)
        self._clock = clock or obs.clock()
        self._lock = threading.RLock()
        self._members: dict[str, _Member] = {}
        self._registry = obs.registry()
        self._events = obs.events()
        for name in members:
            self.add_member(name)

    # -- membership ----------------------------------------------------------

    def add_member(self, name: str) -> None:
        with self._lock:
            if name not in self._members:
                self._members[name] = _Member()
                self._gauge(name).set(_STATE_VALUES[STATE_HEALTHY])

    def remove_member(self, name: str) -> None:
        with self._lock:
            self._members.pop(name, None)

    def members(self) -> list[str]:
        with self._lock:
            return sorted(self._members)

    def _entry(self, name: str) -> _Member:
        entry = self._members.get(name)
        if entry is None:
            entry = self._members[name] = _Member()
            self._gauge(name).set(_STATE_VALUES[STATE_HEALTHY])
        return entry

    # -- obs helpers ---------------------------------------------------------

    def _gauge(self, name: str):
        return self._registry.gauge(
            "mmlib_member_state",
            "Member health (0 healthy, 1 suspect, 2 down)", member=name)

    def _set_state(self, name: str, entry: _Member, state: str) -> None:
        if entry.state == state:
            return
        entry.state = state
        self._gauge(name).set(_STATE_VALUES[state])
        self._events.emit("member_state", member=name, state=state)

    # -- outcome feed --------------------------------------------------------

    def record_success(self, name: str) -> None:
        """One operation against ``name`` succeeded."""
        with self._lock:
            entry = self._entry(name)
            now = self._clock.perf()
            entry.last_success_at = now
            entry.probing = False
            entry.success_streak += 1
            if entry.state == STATE_DOWN:
                # half-open trial succeeded: tentatively re-admit traffic
                self._set_state(name, entry, STATE_SUSPECT)
            if (
                entry.state == STATE_SUSPECT
                and entry.success_streak >= self.recovery_threshold
            ):
                entry.failure_streak = 0
                self._set_state(name, entry, STATE_HEALTHY)

    def record_failure(self, name: str) -> None:
        """One operation against ``name`` failed member-unreachably.

        Only *unreachability* belongs here — a member that answered with
        corrupt bytes is alive, and marking it down would hide the copy
        that anti-entropy must overwrite.
        """
        with self._lock:
            entry = self._entry(name)
            now = self._clock.perf()
            entry.last_failure_at = now
            entry.success_streak = 0
            entry.failure_streak += 1
            probing = entry.probing
            entry.probing = False
            if entry.state == STATE_HEALTHY:
                self._set_state(name, entry, STATE_SUSPECT)
            if entry.state == STATE_DOWN or (
                entry.failure_streak >= self.failure_threshold or probing
            ):
                self._trip(name, entry, now)

    def _trip(self, name: str, entry: _Member, now: float) -> None:
        """Open (or re-open) the breaker, doubling the cooldown on flaps."""
        if (
            entry.last_trip_at is not None
            and now - entry.last_trip_at <= self.flap_window_s
            and entry.cooldown_s > 0
        ):
            entry.cooldown_s = min(self.max_cooldown_s, entry.cooldown_s * 2)
        else:
            entry.cooldown_s = self.breaker_cooldown_s
        entry.last_trip_at = now
        entry.open_until = now + entry.cooldown_s
        entry.trips += 1
        first_trip = entry.state != STATE_DOWN
        self._set_state(name, entry, STATE_DOWN)
        if first_trip:
            self._registry.counter(
                "mmlib_member_breaker_trips_total",
                "Circuit-breaker trips", member=name).inc()

    # -- breaker gate --------------------------------------------------------

    def allow(self, name: str) -> bool:
        """Whether a request should be sent to ``name`` right now.

        ``healthy``/``suspect`` members always admit.  A ``down``
        member fast-fails until its cooldown elapses, then admits exactly
        one half-open trial (concurrent callers keep fast-failing while
        the trial is in flight); the trial's recorded outcome closes or
        re-opens the breaker.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.state != STATE_DOWN:
                return True
            now = self._clock.perf()
            if now < entry.open_until or entry.probing:
                self._registry.counter(
                    "mmlib_member_fast_fails_total",
                    "Requests fast-failed by an open breaker",
                    member=name).inc()
                return False
            entry.probing = True  # half-open: admit one trial
            return True

    def state(self, name: str) -> str:
        with self._lock:
            return self._entry(name).state

    def is_healthy(self, name: str) -> bool:
        return self.state(name) == STATE_HEALTHY

    def down_members(self) -> list[str]:
        with self._lock:
            return sorted(
                name for name, entry in self._members.items()
                if entry.state == STATE_DOWN
            )

    # -- reporting -----------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-able scoreboard for ``mmlib stats`` / bench reports."""
        with self._lock:
            now = self._clock.perf()
            return {
                name: {
                    "state": entry.state,
                    "failure_streak": entry.failure_streak,
                    "success_streak": entry.success_streak,
                    "breaker_trips": entry.trips,
                    "breaker_open_for_s": max(0.0, entry.open_until - now)
                    if entry.state == STATE_DOWN
                    else 0.0,
                    "cooldown_s": entry.cooldown_s,
                }
                for name, entry in sorted(self._members.items())
            }


class HealthMonitor:
    """Background prober feeding a :class:`FailureDetector`.

    ``probes`` maps member name → zero-argument callable; a probe that
    returns is a success, one that raises ``OSError``/``KeyError`` is a
    failure.  Probes respect the breaker (an open breaker skips the
    member until its half-open window), so a dead member costs one probe
    per cooldown, not one per interval.

    The monitor is optional — op outcomes alone keep the detector
    current under traffic; probes matter for idle clusters and for
    noticing *recovery* (a member coming back gets no organic traffic
    while its breaker is open).
    """

    def __init__(
        self,
        detector: FailureDetector,
        probes: Mapping[str, Callable[[], object]],
        interval_s: float = 0.25,
        clock=None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.detector = detector
        self.probes = dict(probes)
        self.interval_s = float(interval_s)
        self._clock = clock or obs.clock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats = {"probes": 0, "probe_failures": 0, "skipped_open": 0}
        self._stats_lock = threading.Lock()

    def probe_once(self) -> dict[str, bool | None]:
        """Probe every member once; ``None`` means breaker-skipped."""
        results: dict[str, bool | None] = {}
        for name, probe in sorted(self.probes.items()):
            if not self.detector.allow(name):
                with self._stats_lock:
                    self.stats["skipped_open"] += 1
                results[name] = None
                continue
            with self._stats_lock:
                self.stats["probes"] += 1
            try:
                probe()
            except (OSError, KeyError):
                with self._stats_lock:
                    self.stats["probe_failures"] += 1
                self.detector.record_failure(name)
                results[name] = False
            else:
                self.detector.record_success(name)
                results[name] = True
        return results

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HealthMonitor":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mmlib-health-monitor", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.probe_once()
            except Exception:  # pragma: no cover - defensive: keep probing
                pass

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
