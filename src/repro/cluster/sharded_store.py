"""Sharded, replicated file store: quorum writes, failover reads, repair.

:class:`ShardedFileStore` presents the exact :class:`~repro.filestore.store.FileStore`
interface — save services, the recovery pipeline, the chain prefetcher,
and ``fsck`` all run against it unchanged — while spreading chunks and
blobs over N member stores placed by a consistent-hash :class:`HashRing`.

Replication semantics:

* **Writes** go to all R ring owners of a key; the write succeeds once
  ``write_quorum`` (default a majority of R) members acknowledge, and a
  short-of-quorum write raises the retryable
  :class:`~repro.errors.QuorumWriteError`.  Chunk and blob writes are
  content-addressed or target a fixed id, so the whole quorum write is
  idempotent under the store's shared retry policy.  Writes that reach
  quorum but not all R owners are tracked as *degraded* for the
  replication fsck to finish.
* **Reads** try replicas in ring order and fail over past dead or
  corrupt members.  A successful failover read triggers *read-repair*:
  the payload is written back to owners found missing it — after digest
  verification, so a corrupt payload is never propagated.

The sharded store itself holds no payload data: its root directory
carries only the save-intent journals (and rebalance journals), which
stay cluster-wide rather than per-member so crash recovery sees one
consistent intent log.
"""

from __future__ import annotations

import hashlib
import threading
from pathlib import Path
from typing import Mapping

import numpy as np

from .. import deadline as deadline_mod
from .. import obs
from ..errors import QuorumWriteError, StoreCorruptionError, TransientStoreError
from ..filestore.store import (
    ChunkNotFoundError,
    FileNotFoundInStoreError,
    FileStore,
)
from .ring import DEFAULT_VNODES, HashRing

__all__ = ["ShardedFileStore"]

#: Exceptions that mean "this replica did not deliver" on a read or
#: write attempt: typed store errors are OSError subclasses, missing
#: blobs/chunks are KeyError subclasses.
_REPLICA_FAILURES = (KeyError, OSError)


def _classify_failure(exc: Exception) -> str:
    """What a per-replica failure says about the replica.

    ``corrupt``
        The member answered, but its copy failed digest verification —
        the member is *alive* and its copy needs overwriting, not the
        failure detector's attention.
    ``missing``
        The member answered "I don't have it" — alive, repairable by a
        plain copy.
    ``unreachable``
        The member did not answer (transient I/O, outage): feed the
        failure detector, never write repairs at it.
    """
    if isinstance(exc, StoreCorruptionError):
        return "corrupt"
    if isinstance(exc, KeyError):
        return "missing"
    return "unreachable"


def _verify_blob(file_id: str, data: bytes) -> bool:
    """Check ``data`` against the content-digest prefix embedded in the id."""
    import hashlib

    expected = file_id.split("-", 1)[0]
    return hashlib.sha256(data).hexdigest()[: len(expected)] == expected


class _ShardedChunkView:
    """Ring-routed facade over the member stores' :class:`ChunkStore`s.

    Quacks like a single ``ChunkStore`` so the inherited ``FileStore``
    machinery (manifest save/delete, journal rollback, fsck reconcile)
    works untouched: lookups fail over across a key's owners, mutations
    fan out to them, and aggregate views union every member.
    """

    def __init__(self, store: "ShardedFileStore"):
        self._store = store

    def _owners(self, digest: str):
        return self._store._owner_stores(digest)

    def _all_members(self, digest: str | None = None):
        """Member stores, a key's owners first (mid-rebalance data may
        still sit on former owners)."""
        store = self._store
        if digest is None:
            return [store.members[n] for n in sorted(store.members)]
        owners = store.ring.owners(digest)
        rest = sorted(set(store.members) - set(owners))
        return [store.members[n] for n in owners + rest]

    def _group(self, digests) -> dict[str, list[str]]:
        """Group digest occurrences by owning member (multiplicity kept:
        refcounts increment once per occurrence, exactly like the flat
        store)."""
        groups: dict[str, list[str]] = {}
        for digest in digests:
            for name in self._store.ring.owners(digest):
                groups.setdefault(name, []).append(digest)
        return groups

    # -- chunk data ---------------------------------------------------------

    def has(self, digest: str) -> bool:
        return any(m.chunks.has(digest) for m in self._all_members(digest))

    def get(self, digest: str) -> bytes:
        for member in self._all_members(digest):
            try:
                return member.chunks.get(digest)
            except ChunkNotFoundError:
                continue
        raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}")

    def put(self, digest: str, buffer) -> bool:
        wrote = False
        for _, member in self._owners(digest):
            wrote = member.chunks.put(digest, buffer) or wrote
        return wrote

    def drop(self, digest: str) -> bool:
        removed = False
        for member in self._all_members(digest):
            removed = member.chunks.drop(digest) or removed
        return removed

    def size_of(self, digest: str) -> int | None:
        for member in self._all_members(digest):
            size = member.chunks.size_of(digest)
            if size is not None:
                return size
        return None

    # -- reference counting -------------------------------------------------

    def refcount(self, digest: str) -> int:
        return max(
            (member.chunks.refcount(digest) for member in self._all_members(digest)),
            default=0,
        )

    def add_refs(self, digests) -> None:
        for name, group in self._group(list(digests)).items():
            self._store.members[name].chunks.add_refs(group)

    def release_refs(self, digests) -> list[str]:
        removed: set[str] = set()
        for name, group in self._group(list(digests)).items():
            removed.update(self._store.members[name].chunks.release_refs(group))
        return sorted(removed)

    def export_refs(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for member in self._all_members():
            for digest, count in member.chunks.export_refs().items():
                merged[digest] = max(merged.get(digest, 0), count)
        return merged

    def import_refs(self, counts: Mapping[str, int]) -> None:
        per_member: dict[str, dict[str, int]] = {}
        for digest, count in counts.items():
            for name in self._store.ring.owners(digest):
                per_member.setdefault(name, {})[digest] = count
        for name, member_counts in per_member.items():
            self._store.members[name].chunks.import_refs(member_counts)

    def forget_refs(self, digests) -> None:
        digests = set(digests)
        for member in self._all_members():
            member.chunks.forget_refs(digests)

    def flush(self) -> int:
        """Fan the group-fsync durability barrier out to every member."""
        return sum(member.chunks.flush() for member in self._all_members())

    def gc(self) -> dict[str, int]:
        stats = {"chunks_removed": 0, "bytes_freed": 0}
        for member in self._all_members():
            member_stats = member.chunks.gc()
            stats["chunks_removed"] += member_stats["chunks_removed"]
            stats["bytes_freed"] += member_stats["bytes_freed"]
        return stats

    def audit(self, repair: bool = True, verify: bool = False) -> dict:
        """Aggregate segment audits across members that support them.

        Listy fields are prefixed ``member:item`` like :meth:`reconcile`;
        members on the file-per-chunk layout contribute nothing.
        """
        merged = {
            "layout": "sharded",
            "segments_checked": 0,
            "torn_segments": [],
            "tmp_segments_removed": 0,
            "entries_added": 0,
            "entries_dropped": [],
            "crc_failures": [],
            "compaction": [],
        }
        audited = False
        store = self._store
        for name in sorted(store.members):
            audit = getattr(store.members[name].chunks, "audit", None)
            if not callable(audit):
                continue
            audited = True
            report = audit(repair=repair, verify=verify)
            merged["segments_checked"] += report["segments_checked"]
            merged["tmp_segments_removed"] += report["tmp_segments_removed"]
            merged["entries_added"] += report["entries_added"]
            for field in ("torn_segments", "entries_dropped", "crc_failures"):
                merged[field].extend(f"{name}:{item}" for item in report[field])
            if report["compaction"] is not None:
                merged["compaction"].append(f"{name}:{report['compaction']}")
        return merged if audited else None

    def segment_stats(self) -> dict | None:
        """Cluster-wide segment gauges, or ``None`` without segment members."""
        merged = {
            "layout": "sharded",
            "segment_count": 0,
            "sealed_segments": 0,
            "chunks": 0,
            "live_bytes": 0,
            "dead_bytes": 0,
            "compaction_debt_bytes": 0,
            "pending_compaction": False,
            "members": {},
        }
        store = self._store
        for name in sorted(store.members):
            stats_fn = getattr(store.members[name].chunks, "segment_stats", None)
            if not callable(stats_fn):
                continue
            stats = stats_fn()
            merged["members"][name] = stats
            for key in ("segment_count", "sealed_segments", "chunks",
                        "live_bytes", "dead_bytes", "compaction_debt_bytes"):
                merged[key] += stats[key]
            merged["pending_compaction"] |= stats["pending_compaction"]
        if not merged["members"]:
            return None
        total = merged["live_bytes"] + merged["dead_bytes"]
        merged["live_ratio"] = (merged["live_bytes"] / total) if total else 1.0
        return merged

    def dedup_stats(self) -> dict:
        """Cluster-wide dedup/compression accounting (summed over members)."""
        merged = {
            "codec": None,
            "logical_bytes": 0,
            "dedup_bytes": 0,
            "stored_bytes": 0,
            "members": {},
        }
        codecs_seen: set[str] = set()
        store = self._store
        for name in sorted(store.members):
            stats_fn = getattr(store.members[name].chunks, "dedup_stats", None)
            if not callable(stats_fn):
                continue
            stats = stats_fn()
            merged["members"][name] = stats
            codecs_seen.add(stats["codec"])
            for key in ("logical_bytes", "dedup_bytes", "stored_bytes"):
                merged[key] += stats[key]
        merged["codec"] = (
            codecs_seen.pop() if len(codecs_seen) == 1 else sorted(codecs_seen)
        )
        written = merged["logical_bytes"] - merged["dedup_bytes"]
        merged["dedup_ratio"] = (
            round(merged["logical_bytes"] / written, 4) if written else None
        )
        merged["compression_ratio"] = (
            round(written / merged["stored_bytes"], 4)
            if merged["stored_bytes"] else None
        )
        return merged

    def reconcile(self, expected_refs: Mapping[str, int], repair: bool = True) -> dict:
        """Per-member reconcile against the ring-owned slice of the truth.

        Each member is held to exactly the digests the ring assigns it;
        result keys are ``member:digest`` so one cluster-wide report can
        say *where* a count leaked or an orphan sat.

        A referenced digest whose owners are not yet all whole is also
        kept on any non-owner holding it: mid-rebalance (or after a lost
        owner disk) that stray may be the only surviving copy, and the
        replication fsck that runs after reconcile needs it as the
        repair source.  Only once every owner holds the key does a
        non-owner replica count as an orphan — the same guard
        :func:`~repro.cluster.rebalance.replication_fsck` applies before
        dropping strays.
        """
        merged: dict = {"ref_fixes": {}, "orphan_chunks_removed": [], "orphan_bytes": 0}
        ring = self._store.ring
        members = self._store.members
        protected: dict[str, set[str]] = {}
        for digest in expected_refs:
            owners = ring.owners(digest)
            if all(members[name].chunks.has(digest) for name in owners):
                continue
            for name in members:
                if name not in owners and members[name].chunks.has(digest):
                    protected.setdefault(name, set()).add(digest)
        for name in sorted(members):
            keep = protected.get(name, set())
            expected = {
                digest: count
                for digest, count in expected_refs.items()
                if name in ring.owners(digest) or digest in keep
            }
            report = members[name].chunks.reconcile(expected, repair=repair)
            for digest, fix in report["ref_fixes"].items():
                merged["ref_fixes"][f"{name}:{digest}"] = fix
            merged["orphan_chunks_removed"].extend(
                f"{name}:{chunk}" for chunk in report["orphan_chunks_removed"]
            )
            merged["orphan_bytes"] += report["orphan_bytes"]
        return merged

    # -- accounting ---------------------------------------------------------

    def chunk_ids(self) -> list[str]:
        ids: set[str] = set()
        for member in self._all_members():
            ids.update(member.chunks.chunk_ids())
        return sorted(ids)

    def total_bytes(self) -> int:
        """Physical bytes across the cluster — replicas counted per copy."""
        return sum(member.chunks.total_bytes() for member in self._all_members())

    def __len__(self) -> int:
        return len(self.chunk_ids())


class ShardedFileStore(FileStore):
    """R-of-N replicated :class:`FileStore` over named member stores.

    ``root`` is the cluster's *metadata* directory (intent journals,
    rebalance journals) — payload bytes live only on the members, which
    are plain :class:`FileStore`s or
    :class:`~repro.filestore.network.SimulatedNetworkFileStore`s (each
    charging its own link).  Fault injection and per-replica retry belong
    on the members; the sharded layer's own ``retry`` re-runs whole
    quorum writes, which are idempotent.

    The hot-chunk cache and single-flight coalescing sit at this layer
    (pass ``chunk_cache`` here, not to members), so a cache hit serves a
    chunk without touching any replica link.
    """

    def __init__(
        self,
        root: str | Path,
        members: Mapping[str, FileStore],
        replicas: int = 2,
        write_quorum: int | None = None,
        vnodes: int = DEFAULT_VNODES,
        retry=None,
        verify_reads: bool | None = None,
        workers: int = 0,
        chunk_cache=None,
        detector=None,
        hint_log=None,
        cdc: bool | None = None,
        cdc_target_bytes: int | None = None,
    ):
        if not members:
            raise ValueError("a sharded store needs at least one member")
        self.members: dict[str, FileStore] = dict(members)
        self.ring = HashRing(sorted(self.members), replicas=replicas, vnodes=vnodes)
        effective = min(replicas, len(self.members))
        if write_quorum is None:
            write_quorum = effective // 2 + 1
        if not 1 <= write_quorum <= effective:
            raise ValueError(
                f"write_quorum must be in [1, {effective}], got {write_quorum}"
            )
        self.write_quorum = int(write_quorum)
        self.detector = detector
        self.hints = hint_log
        if detector is not None:
            for name in self.members:
                detector.add_member(name)
        self._chunk_meta: dict[str, tuple[str, tuple[int, ...]]] = {}
        self._meta_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self.cluster_stats = {
            "failover_reads": 0,
            "read_repairs": 0,
            "degraded_writes": 0,
            "repair_failures": 0,
        }
        self.degraded_keys: set[tuple[str, str]] = set()
        registry = obs.registry()
        self._obs_events = obs.events()
        self._obs_cluster = {
            "failover_reads": registry.counter(
                "mmlib_cluster_failover_reads_total",
                "Reads served by a non-primary replica", plane="files"),
            "read_repairs": registry.counter(
                "mmlib_cluster_read_repairs_total",
                "Replica copies healed during reads", plane="files"),
            "degraded_writes": registry.counter(
                "mmlib_cluster_degraded_writes_total",
                "Writes acked below full replication", plane="files"),
            "repair_failures": registry.counter(
                "mmlib_cluster_repair_failures_total",
                "Read-repair attempts that failed", plane="files"),
        }
        self._obs_quorum_failures = registry.counter(
            "mmlib_cluster_quorum_write_failures_total",
            "Writes that missed quorum", plane="files")
        super().__init__(
            root,
            faults=None,
            retry=retry,
            verify_reads=verify_reads,
            workers=workers,
            chunk_cache=chunk_cache,
            cdc=cdc,
            cdc_target_bytes=cdc_target_bytes,
        )
        self._view = _ShardedChunkView(self)

    # -- placement / bookkeeping helpers ------------------------------------

    def _owner_stores(self, key: str) -> list[tuple[str, FileStore]]:
        return [(name, self.members[name]) for name in self.ring.owners(key)]

    # -- failure-detector / hint feeds (all no-ops when not wired) -----------

    def _member_allowed(self, name: str) -> bool:
        return self.detector is None or self.detector.allow(name)

    def _member_up(self, name: str) -> None:
        if self.detector is not None:
            self.detector.record_success(name)

    def _member_down(self, name: str) -> None:
        if self.detector is not None:
            self.detector.record_failure(name)

    def _hint(self, name: str, kind: str, key: str) -> None:
        if self.hints is not None:
            self.hints.record(name, kind, key)

    def _bump(self, stat: str, by: int = 1) -> None:
        with self._stats_lock:
            self.cluster_stats[stat] += by
        self._obs_cluster[stat].inc(by)

    def _note_degraded(self, kind: str, key: str) -> None:
        with self._stats_lock:
            self.cluster_stats["degraded_writes"] += 1
            self.degraded_keys.add((kind, key))
        self._obs_cluster["degraded_writes"].inc()
        self._obs_events.emit("degraded_write", plane="files", kind=kind, key=key)

    def _clear_degraded(self, kind: str, key: str) -> None:
        with self._stats_lock:
            self.degraded_keys.discard((kind, key))

    @property
    def chunks(self) -> _ShardedChunkView:
        return self._view

    # -- chunk metadata for repair verification -----------------------------

    def _harvest_chunk_meta(self, layers) -> None:
        with self._meta_lock:
            for _, meta in layers:
                if "chunk" in meta:  # v2 entries verify by content digest
                    self._chunk_meta[meta["chunk"]] = (
                        meta["dtype"], tuple(meta["shape"]))

    def _verify_for_repair(self, digest: str, data: bytes) -> bool | None:
        """Re-hash a chunk payload against its digest before propagating it.

        Content-defined (v2) chunk ids are plain sha256 digests of the
        payload, so they verify directly.  Whole-layer (v1) chunk ids are
        *tensor* hashes (dtype + shape + bytes), so verification needs the
        layer metadata harvested from manifests.  Returns ``None`` when
        neither applies — the caller then skips byte-level verification
        but may still repair (the payload came from a member's
        content-addressed object file, the same trust level fsck operates
        at).
        """
        if hashlib.sha256(data).hexdigest() == digest:
            return True
        meta = self._chunk_meta.get(digest)
        if meta is None:
            return None
        dtype, shape = meta
        try:
            array = np.frombuffer(data, dtype=np.dtype(dtype)).reshape(shape)
        except ValueError:
            return False
        from ..core.hashing import tensor_hash

        return tensor_hash(array) == digest

    # -- quorum writes -------------------------------------------------------

    def _put_chunk_data(self, digest: str, buffer) -> bool:
        owners = self._owner_stores(digest)

        def attempt() -> bool:
            acks = 0
            wrote_any = False
            missed: list[str] = []
            last_error: Exception | None = None
            for name, member in owners:
                deadline_mod.check("cluster.chunk_write")
                if not self._member_allowed(name):
                    missed.append(name)  # breaker open: fast-fail the replica
                    continue
                try:
                    wrote = member._put_chunk_data(digest, buffer)
                except _REPLICA_FAILURES as exc:
                    last_error = exc
                    if _classify_failure(exc) == "unreachable":
                        self._member_down(name)
                    missed.append(name)
                    continue
                self._member_up(name)
                acks += 1
                wrote_any = wrote_any or wrote
            if acks < self.write_quorum:
                self._obs_quorum_failures.inc()
                self._obs_events.emit(
                    "quorum_write_failed", plane="files", kind="chunk",
                    key=digest, acks=acks, quorum=self.write_quorum)
                raise QuorumWriteError(
                    f"chunk {digest[:12]}… reached {acks}/{len(owners)} replicas "
                    f"(write quorum {self.write_quorum})"
                ) from last_error
            if missed:
                self._note_degraded("chunk", digest)
                for name in missed:
                    self._hint(name, "chunk", digest)
            else:
                self._clear_degraded("chunk", digest)
            return wrote_any

        return self._call("cluster.chunk_write", attempt)

    def _write_blob(self, file_id: str, data: bytes) -> None:
        owners = self._owner_stores(file_id)

        def attempt() -> None:
            acks = 0
            missed: list[str] = []
            last_error: Exception | None = None
            for name, member in owners:
                deadline_mod.check("cluster.blob_write")
                if not self._member_allowed(name):
                    missed.append(name)
                    continue
                try:
                    member._write_blob(file_id, data)
                except _REPLICA_FAILURES as exc:
                    last_error = exc
                    if _classify_failure(exc) == "unreachable":
                        self._member_down(name)
                    missed.append(name)
                    continue
                self._member_up(name)
                acks += 1
            if acks < self.write_quorum:
                self._obs_quorum_failures.inc()
                self._obs_events.emit(
                    "quorum_write_failed", plane="files", kind="blob",
                    key=file_id, acks=acks, quorum=self.write_quorum)
                raise QuorumWriteError(
                    f"blob {file_id!r} reached {acks}/{len(owners)} replicas "
                    f"(write quorum {self.write_quorum})"
                ) from last_error
            if missed:
                self._note_degraded("blob", file_id)
                for name in missed:
                    self._hint(name, "blob", file_id)
            else:
                self._clear_degraded("blob", file_id)

        self._call("cluster.blob_write", attempt)

    # -- failover reads + read-repair ---------------------------------------

    def _read_chunk(self, digest: str) -> bytes:
        owners = self._owner_stores(digest)
        missing: list[tuple[str, FileStore]] = []
        corrupt: list[tuple[str, FileStore]] = []
        skipped = 0
        last_error: Exception | None = None
        with self._obs_tracer.span("cluster.chunk_read", digest=digest) as sp:
            for name, member in owners:
                deadline_mod.check("cluster.chunk_read")
                if not self._member_allowed(name):
                    skipped += 1
                    last_error = TransientStoreError(
                        f"replica {name!r} skipped: circuit breaker open"
                    )
                    continue
                try:
                    data = member._charged_read(digest)
                except _REPLICA_FAILURES as exc:
                    last_error = exc
                    kind = _classify_failure(exc)
                    if kind == "corrupt":
                        # the member answered; its *copy* is bad
                        self._member_up(name)
                        corrupt.append((name, member))
                    elif kind == "missing":
                        self._member_up(name)
                        missing.append((name, member))
                    else:
                        self._member_down(name)
                    continue
                self._member_up(name)
                failovers = len(missing) + len(corrupt) + skipped
                sp.set(member=name, failovers=failovers)
                if failovers:
                    self._bump("failover_reads")
                    self._repair_chunk_replicas(
                        digest, data, missing, corrupt, source=member
                    )
                return data
            if last_error is not None:
                raise last_error
            raise ChunkNotFoundError(f"no stored chunk with digest {digest!r}")

    def _repair_chunk_replicas(
        self,
        digest: str,
        data: bytes,
        missing: list[tuple[str, FileStore]],
        corrupt: list[tuple[str, FileStore]],
        source: FileStore,
    ) -> None:
        """Write a failover-read payload back to owners that failed it.

        ``missing`` owners (answered "not found") get a plain copy;
        ``corrupt`` owners (answered with bytes that failed verification)
        get their copy overwritten — a replica that failed digest
        verification is never left as-is *and* never used as a source.
        Owners that were unreachable are in neither list: repair writes
        at a dead member would be wasted (or, under fault simulation,
        dishonest) — hinted handoff and anti-entropy own that path.
        Skipped outright when the payload itself fails verification —
        never replicate corruption.
        """
        if self._verify_for_repair(digest, data) is False:
            return
        refcount = source.chunks.refcount(digest)
        repaired = False

        def heal(member: FileStore, overwrite: bool) -> bool:
            try:
                if overwrite:
                    member.chunks.drop(digest)
                elif member.chunks.has(digest):
                    return False  # raced another repair: already healed
                member.chunks.put(digest, data)
                if refcount > 0:
                    member.chunks.import_refs({digest: refcount})
            except OSError:
                self._bump("repair_failures")
                return False
            self._bump("read_repairs")
            self._obs_events.emit(
                "read_repair", plane="files", kind="chunk", key=digest,
                overwrote_corrupt=overwrite)
            return True

        for _, member in missing:
            repaired = heal(member, overwrite=False) or repaired
        for _, member in corrupt:
            repaired = heal(member, overwrite=True) or repaired
        if repaired:
            self._clear_degraded("chunk", digest)

    def _fetch_many(self, digests: list[str], workers: int | None) -> dict[str, bytes]:
        """Batched fetch, grouped by primary owner for pipelined accounting.

        Each group goes through the member's own batched read (one
        pipelined transfer on simulated links); a group whose member
        fails mid-batch falls back to per-digest failover reads.
        """
        groups: dict[str, list[str]] = {}
        for digest in digests:
            groups.setdefault(self.ring.primary(digest), []).append(digest)
        results: dict[str, bytes] = {}
        for name in sorted(groups):
            group = groups[name]
            with self._obs_tracer.span(
                "cluster.member_fetch", member=name, n=len(group)
            ) as sp:
                if not self._member_allowed(name):
                    # primary's breaker is open: go straight to failover
                    # reads instead of burning a timeout on the batch
                    sp.set(failover=True, breaker_open=True)
                    for digest in group:
                        results[digest] = self._read_chunk(digest)
                    continue
                try:
                    results.update(self.members[name]._charged_read_many(group, workers))
                except _REPLICA_FAILURES as exc:
                    if _classify_failure(exc) == "unreachable":
                        self._member_down(name)
                    sp.set(failover=True)
                    for digest in group:
                        results[digest] = self._read_chunk(digest)
                else:
                    self._member_up(name)
        return results

    def recover_bytes(self, file_id: str) -> bytes:
        owners = self._owner_stores(file_id)
        missing: list[tuple[str, FileStore]] = []
        corrupt: list[tuple[str, FileStore]] = []
        skipped = 0
        last_error: Exception | None = None
        for name, member in owners:
            deadline_mod.check("cluster.blob_read")
            if not self._member_allowed(name):
                skipped += 1
                last_error = TransientStoreError(
                    f"replica {name!r} skipped: circuit breaker open"
                )
                continue
            try:
                # the member verifies the id-embedded digest, so a payload
                # that comes back is safe to propagate on repair
                data = member.recover_bytes(file_id)
            except _REPLICA_FAILURES as exc:
                last_error = exc
                kind = _classify_failure(exc)
                if kind == "corrupt":
                    self._member_up(name)
                    corrupt.append((name, member))
                elif kind == "missing":
                    self._member_up(name)
                    missing.append((name, member))
                else:
                    self._member_down(name)
                continue
            self._member_up(name)
            if missing or corrupt or skipped:
                self._bump("failover_reads")
                self._repair_blob_replicas(file_id, data, missing, corrupt)
            return data
        if last_error is not None:
            raise last_error
        raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")

    def _repair_blob_replicas(
        self,
        file_id: str,
        data: bytes,
        missing: list[tuple[str, FileStore]],
        corrupt: list[tuple[str, FileStore]],
    ) -> None:
        """Mirror of :meth:`_repair_chunk_replicas` for blob reads: plain
        copies to owners that lacked the blob, overwrites at owners whose
        copy failed the id-embedded digest check, nothing at unreachable
        owners."""
        repaired = False

        def heal(member: FileStore, overwrite: bool) -> bool:
            try:
                if overwrite:
                    member._discard_blob(file_id)
                elif member.exists(file_id):
                    return False  # raced another repair: already healed
                member._restore_blob(file_id, data)
            except OSError:
                self._bump("repair_failures")
                return False
            self._bump("read_repairs")
            self._obs_events.emit(
                "read_repair", plane="files", kind="blob", key=file_id,
                overwrote_corrupt=overwrite)
            return True

        for _, member in missing:
            repaired = heal(member, overwrite=False) or repaired
        for _, member in corrupt:
            repaired = heal(member, overwrite=True) or repaired
        if repaired:
            self._clear_degraded("blob", file_id)

    # -- manifest hooks (harvest repair metadata) ----------------------------

    def save_state_chunks(self, state, layer_hashes, suffix=None, workers=None):
        with self._meta_lock:
            for name, array in state.items():
                self._chunk_meta[layer_hashes[name]] = (
                    array.dtype.str,
                    tuple(array.shape),
                )
        kwargs = {} if suffix is None else {"suffix": suffix}
        return super().save_state_chunks(state, layer_hashes, workers=workers, **kwargs)

    def read_manifest(self, file_id: str) -> dict:
        manifest = super().read_manifest(file_id)
        self._harvest_chunk_meta(manifest["layers"])
        return manifest

    # -- raw blob primitives (fan out; rollback/fsck/repair plumbing) --------

    def _all_member_stores(self, key: str | None = None) -> list[FileStore]:
        if key is None:
            return [self.members[n] for n in sorted(self.members)]
        owners = self.ring.owners(key)
        rest = sorted(set(self.members) - set(owners))
        return [self.members[n] for n in owners + rest]

    def _discard_blob(self, file_id: str) -> bool:
        removed = False
        for member in self._all_member_stores():
            removed = member._discard_blob(file_id) or removed
        return removed

    def _blob_size(self, file_id: str) -> int:
        for member in self._all_member_stores(file_id):
            try:
                return member._blob_size(file_id)
            except FileNotFoundInStoreError:
                continue
        raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")

    def _read_blob_raw(self, file_id: str) -> bytes:
        for member in self._all_member_stores(file_id):
            try:
                return member._read_blob_raw(file_id)
            except FileNotFoundInStoreError:
                continue
        raise FileNotFoundInStoreError(f"no stored file with id {file_id!r}")

    def _restore_blob(self, file_id: str, data: bytes) -> None:
        for _, member in self._owner_stores(file_id):
            member._restore_blob(file_id, data)

    # -- management ----------------------------------------------------------

    def exists(self, file_id: str) -> bool:
        return any(m.exists(file_id) for m in self._all_member_stores(file_id))

    def has_chunk(self, digest: str) -> bool:
        return self._view.has(digest)

    def file_ids(self) -> list[str]:
        ids: set[str] = set()
        for member in self._all_member_stores():
            ids.update(member.file_ids())
        return sorted(ids)

    def total_bytes(self) -> int:
        """Physical bytes across the cluster — replicas counted per copy."""
        return sum(member.total_bytes() for member in self._all_member_stores())

    def gc_chunks(self) -> dict[str, int]:
        stats = {"chunks_removed": 0, "bytes_freed": 0}
        for member in self._all_member_stores():
            member_stats = member.gc_chunks()
            stats["chunks_removed"] += member_stats["chunks_removed"]
            stats["bytes_freed"] += member_stats["bytes_freed"]
        return stats

    def clear(self) -> None:
        for member in self._all_member_stores():
            member.clear()
        super().clear()
        with self._meta_lock:
            self._chunk_meta.clear()
        with self._stats_lock:
            self.degraded_keys.clear()

    # -- hinted handoff delivery ---------------------------------------------

    def hint_appliers(self) -> dict:
        """Kind → applier callables for a :class:`~repro.cluster.hints.HintDeliverer`."""
        return {"chunk": self._apply_chunk_hint, "blob": self._apply_blob_hint}

    def _hint_source_chunk(self, digest: str, exclude: str):
        """A verified (or unverifiable-but-present) payload from any member
        other than ``exclude``, plus its refcount; ``(None, 0)`` if gone."""
        fallback = None
        fallback_refs = 0
        for name in sorted(self.members):
            if name == exclude:
                continue
            member = self.members[name]
            try:
                if not member.chunks.has(digest):
                    continue
                candidate = member.chunks.get(digest)
                refcount = member.chunks.refcount(digest)
            except (KeyError, OSError):
                continue
            verdict = self._verify_for_repair(digest, candidate)
            if verdict is False:
                continue  # corrupt copy: never a handoff source
            if verdict is True:
                return candidate, refcount
            if fallback is None:
                fallback, fallback_refs = candidate, refcount
        return fallback, fallback_refs

    def _apply_chunk_hint(self, member_name: str, hint) -> bool:
        """Deliver one chunk IOU.  Idempotent and tombstone-free: chunks
        are content-addressed, so "deliver" is "copy verified bytes".

        Returns ``False`` (stale) when the member or its ownership is
        gone, or no copy survives anywhere (the chunk was GC'd since);
        returns ``True`` once the member holds the chunk.  Raises the
        member's transient errors through — the deliverer retries later.
        """
        digest = hint["key"]
        member = self.members.get(member_name)
        if member is None or member_name not in self.ring.owners(digest):
            return False  # membership or ownership moved on: IOU is moot
        if member.chunks.has(digest):
            self._clear_degraded("chunk", digest)
            return True  # read-repair or anti-entropy got there first
        data, refcount = self._hint_source_chunk(digest, exclude=member_name)
        if data is None:
            return False  # no surviving copy: nothing left to hand off
        # the *hooked* write path, not raw chunk I/O: delivery must fail
        # honestly while the member is down (or simulated down)
        member._put_chunk_data(digest, data)
        if refcount > 0:
            member.chunks.import_refs({digest: refcount})
        self._clear_degraded("chunk", digest)
        return True

    def _apply_blob_hint(self, member_name: str, hint) -> bool:
        file_id = hint["key"]
        member = self.members.get(member_name)
        if member is None or member_name not in self.ring.owners(file_id):
            return False
        if member.exists(file_id):
            self._clear_degraded("blob", file_id)
            return True
        data = None
        for name in sorted(self.members):
            if name == member_name:
                continue
            try:
                candidate = self.members[name]._read_blob_raw(file_id)
            except (KeyError, OSError):
                continue
            if _verify_blob(file_id, candidate):
                data = candidate
                break
        if data is None:
            return False
        member._write_blob(file_id, data)  # hooked path: honest while down
        self._clear_degraded("blob", file_id)
        return True

    # -- cluster health / accounting -----------------------------------------

    def replication_fsck(self, repair: bool = True) -> dict:
        """Cross-check every replica set against R; see
        :func:`repro.cluster.rebalance.replication_fsck`."""
        from .rebalance import replication_fsck

        return replication_fsck(self, repair=repair)

    def cluster_accounting(self) -> dict:
        """Aggregate the members' simulated-network counters.

        ``simulated_seconds`` is the *max* across members, not the sum —
        shards transfer in parallel, so cluster wall-clock is the slowest
        member's link time.  Members without accounting (plain local
        stores) contribute zeros.
        """
        totals = {
            "bytes_sent": 0,
            "bytes_received": 0,
            "round_trips": 0,
            "round_trips_saved": 0,
            "chunks_deduplicated": 0,
            "chunk_bytes_deduplicated": 0,
        }
        elapsed = 0.0
        per_member: dict[str, dict] = {}
        for name in sorted(self.members):
            member = self.members[name]
            if not hasattr(member, "simulated_seconds"):
                continue
            snapshot = {key: getattr(member, key) for key in totals}
            snapshot["simulated_seconds"] = member.simulated_seconds
            per_member[name] = snapshot
            for key in totals:
                totals[key] += snapshot[key]
            elapsed = max(elapsed, member.simulated_seconds)
        return {"members": per_member, "simulated_seconds": elapsed, **totals}

    def reset_accounting(self) -> None:
        for member in self.members.values():
            if hasattr(member, "reset_accounting"):
                member.reset_accounting()
