"""Cluster plane: sharded, replicated storage over member stores.

Places content-addressed chunks, blobs, and metadata documents onto
R-of-N member stores with a consistent-hash ring; writes need a quorum
of owners, reads fail over in ring order with digest-verified
read-repair, and membership changes stream only the keys whose ring
ownership moved.  The sharded stores keep the exact single-store
interfaces, so every MMlib service runs against a cluster unchanged.

The self-healing layer rides on top: a :class:`FailureDetector` scores
member health from op outcomes and probes, :class:`HintLog`/
:class:`HintDeliverer` turn degraded quorum writes into durable,
replayable IOUs, and :class:`AntiEntropyScanner` diffs replica sets in
the background through the same per-key heal path ``fsck`` uses.
"""

from .antientropy import AntiEntropyScanner, repair_blob, repair_chunk
from .health import FailureDetector, HealthMonitor
from .hints import HintDeliverer, HintLog
from .rebalance import ClusterRebalancer, replication_fsck
from .ring import HashRing
from .sharded_docs import ShardedDocumentStore
from .sharded_store import ShardedFileStore

__all__ = [
    "HashRing",
    "ShardedFileStore",
    "ShardedDocumentStore",
    "ClusterRebalancer",
    "replication_fsck",
    "FailureDetector",
    "HealthMonitor",
    "HintLog",
    "HintDeliverer",
    "AntiEntropyScanner",
    "repair_chunk",
    "repair_blob",
]
