"""Cluster plane: sharded, replicated storage over member stores.

Places content-addressed chunks, blobs, and metadata documents onto
R-of-N member stores with a consistent-hash ring; writes need a quorum
of owners, reads fail over in ring order with digest-verified
read-repair, and membership changes stream only the keys whose ring
ownership moved.  The sharded stores keep the exact single-store
interfaces, so every MMlib service runs against a cluster unchanged.
"""

from .rebalance import ClusterRebalancer, replication_fsck
from .ring import HashRing
from .sharded_docs import ShardedDocumentStore
from .sharded_store import ShardedFileStore

__all__ = [
    "HashRing",
    "ShardedFileStore",
    "ShardedDocumentStore",
    "ClusterRebalancer",
    "replication_fsck",
]
