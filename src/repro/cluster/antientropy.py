"""Anti-entropy repair: one per-key heal path for offline fsck and online scan.

Replica sets drift: a quorum write misses an owner, a disk loses a chunk,
a copy rots at rest.  Two consumers walk the same convergence logic —

* :func:`repro.cluster.rebalance.replication_fsck` (offline): the full
  universe in one pass, called from ``ModelManager.fsck``.
* :class:`AntiEntropyScanner` (online): the universe in bounded batches
  from a background thread, skipping members the failure detector says
  are down and re-visiting deferred keys once they return.

Both call :func:`repair_chunk` / :func:`repair_blob` below, so the
offline and online repair semantics *cannot* diverge: verification rules
(never propagate a copy that fails digest verification — scan past it to
an intact one), refcount transfer, and the strays-only-when-whole guard
live here once.

Per-key outcome statuses:

``ok``
    Every owner holds the key (and, on a deep scan, every copy verified).
``repaired``
    Divergence found and fully healed: missing replicas restored and/or
    corrupt copies overwritten from a verified source.
``partial``
    Some healing happened but owners are still not whole (e.g. one
    target is unreachable).
``degraded``
    Divergence found, nothing healed (audit mode, or heal writes failed).
``deferred``
    An owner is unreachable and no reachable copy proves the key's
    state; decided next scan, once the member is back.
``unrepairable``
    No intact copy exists anywhere reachable — data loss unless a down
    member still holds one.
"""

from __future__ import annotations

import threading

from .. import obs
from .sharded_store import ShardedFileStore, _verify_blob

__all__ = [
    "chunk_universe",
    "blob_universe",
    "repair_chunk",
    "repair_blob",
    "AntiEntropyScanner",
]


def chunk_universe(store: ShardedFileStore) -> set[str]:
    """Every chunk digest any member stores or refcounts."""
    universe: set[str] = set()
    for member in store.members.values():
        universe.update(member.chunks.chunk_ids())
        universe.update(member.chunks.export_refs())
    return universe


def blob_universe(store: ShardedFileStore) -> set[str]:
    universe: set[str] = set()
    for member in store.members.values():
        universe.update(member.file_ids())
    return universe


def _result(kind: str, key: str, owners, holders, missing, unreachable) -> dict:
    return {
        "kind": kind,
        "key": key,
        "owners": list(owners),
        "holders": list(holders),
        "missing": list(missing),
        "unreachable": list(unreachable),
        "corrupt": [],
        "repaired_to": [],
        "corrupt_healed": [],
        "strays_dropped": [],
        "status": "ok",
    }


def _finish(result: dict) -> dict:
    """Derive the outcome status from what the heal pass accomplished."""
    unhealed = [n for n in result["corrupt"] if n not in result["corrupt_healed"]]
    whole = not result["unreachable"] and all(
        name in result["holders"] or name in result["repaired_to"]
        for name in result["owners"]
    )
    if result["repaired_to"] or result["corrupt_healed"]:
        result["status"] = "repaired" if whole and not unhealed else "partial"
    elif result["missing"] or unhealed:
        result["status"] = "degraded"
    elif result["unreachable"]:
        result["status"] = "deferred"
    return result


def _drop_strays(result: dict, drop) -> None:
    """Retire non-owner replicas — only once every owner provably holds
    the key and no copy is unverified-corrupt (a stray may be the one
    intact source a later pass needs)."""
    unhealed = [n for n in result["corrupt"] if n not in result["corrupt_healed"]]
    if result["unreachable"] or unhealed:
        return
    held = set(result["holders"]) | set(result["repaired_to"])
    if not all(name in held for name in result["owners"]):
        return
    for name in result["holders"]:
        if name in result["owners"]:
            continue
        try:
            drop(name)
        except OSError:
            continue
        result["strays_dropped"].append(name)


def repair_chunk(
    store: ShardedFileStore,
    digest: str,
    repair: bool = True,
    deep: bool = False,
    unreachable=(),
) -> dict:
    """Audit (and with ``repair`` heal) one chunk's replica set.

    ``deep`` reads and digest-verifies *every* reachable copy — replica
    diffing, the anti-entropy mode — where the default only reads when a
    replica is missing.  Members in ``unreachable`` (or raising
    ``OSError`` when asked) are never counted as missing the key and
    never written to; keys they own come back ``deferred``/``partial``
    for a later pass.
    """
    members = store.members
    skip = {name for name in unreachable if name in members}
    owners = store.ring.owners(digest)
    holders: list[str] = []
    for name in sorted(members):
        if name in skip:
            continue
        try:
            if members[name].chunks.has(digest):
                holders.append(name)
        except OSError:
            skip.add(name)
    missing = [n for n in owners if n not in holders and n not in skip]
    result = _result(
        "chunk", digest, owners, holders, missing,
        sorted(n for n in owners if n in skip),
    )
    if not holders:
        result["status"] = "deferred" if result["unreachable"] else "unrepairable"
        return result

    data = None
    if deep or missing:
        verified = False
        for name in holders:
            try:
                candidate = members[name].chunks.get(digest)
            except (KeyError, OSError):
                result["corrupt"].append(name)  # has() said yes, read failed
                continue
            verdict = store._verify_for_repair(digest, candidate)
            if verdict is False:
                result["corrupt"].append(name)
                continue
            if data is None or (verdict is True and not verified):
                data = candidate
                verified = verdict is True
            if not deep:
                break  # shallow: first acceptable copy wins, like fsck always did
        if data is None:
            result["status"] = "deferred" if result["unreachable"] else "unrepairable"
            return result

    if repair and data is not None:
        refcount = max(
            (members[n].chunks.refcount(digest) for n in holders), default=0
        )
        for name in missing:
            try:
                members[name].chunks.put(digest, data)
                if refcount > 0:
                    members[name].chunks.import_refs({digest: refcount})
            except OSError:
                continue
            result["repaired_to"].append(name)
        for name in result["corrupt"]:
            try:
                members[name].chunks.drop(digest)
                members[name].chunks.put(digest, data)
            except OSError:
                continue
            result["corrupt_healed"].append(name)

    if repair:
        def drop(name: str) -> None:
            members[name].chunks.drop(digest)
            members[name].chunks.forget_refs([digest])

        _drop_strays(result, drop)
    return _finish(result)


def repair_blob(
    store: ShardedFileStore,
    file_id: str,
    repair: bool = True,
    deep: bool = False,
    unreachable=(),
) -> dict:
    """Audit (and with ``repair`` heal) one blob's replica set.

    Blob ids embed a content-digest prefix, so verification needs no
    side metadata: every candidate copy is checked against its id, and
    the *intact-copy search runs even in audit mode* — an audit must
    report a blob with no intact copy anywhere, not exit clean.
    """
    members = store.members
    skip = {name for name in unreachable if name in members}
    owners = store.ring.owners(file_id)
    holders: list[str] = []
    for name in sorted(members):
        if name in skip:
            continue
        try:
            if members[name].exists(file_id):
                holders.append(name)
        except OSError:
            skip.add(name)
    missing = [n for n in owners if n not in holders and n not in skip]
    result = _result(
        "blob", file_id, owners, holders, missing,
        sorted(n for n in owners if n in skip),
    )
    if not holders:
        result["status"] = "deferred" if result["unreachable"] else "unrepairable"
        return result

    data = None
    if deep or missing:
        for name in holders:
            try:
                candidate = members[name]._read_blob_raw(file_id)
            except (KeyError, OSError):
                result["corrupt"].append(name)
                continue
            if not _verify_blob(file_id, candidate):
                result["corrupt"].append(name)
                continue
            data = candidate
            if not deep:
                break
        if data is None:
            result["status"] = "deferred" if result["unreachable"] else "unrepairable"
            return result

    if repair and data is not None:
        for name in missing:
            try:
                members[name]._restore_blob(file_id, data)
            except OSError:
                continue
            result["repaired_to"].append(name)
        for name in result["corrupt"]:
            try:
                members[name]._discard_blob(file_id)
                members[name]._restore_blob(file_id, data)
            except OSError:
                continue
            result["corrupt_healed"].append(name)

    if repair:
        def drop(name: str) -> None:
            members[name]._discard_blob(file_id)

        _drop_strays(result, drop)
    return _finish(result)


class AntiEntropyScanner:
    """Background replica-diff walker over a sharded file store.

    Walks the chunk/blob universe in sorted batches (``batch_size`` keys
    per round, cursor carried across rounds, universe re-snapshotted per
    cycle so new saves join the walk).  Each key goes through the shared
    :func:`repair_chunk` / :func:`repair_blob` heal path with
    ``deep=True`` — every reachable copy read and digest-verified — and
    members the failure detector reports down are treated as
    unreachable, so a scan during an outage defers rather than
    mis-repairs.

    Keys that did not come back ``ok``/``repaired`` form the *backlog*
    (gauge ``mmlib_antientropy_backlog``); convergence for chaos runs is
    "hints drained and backlog empty".
    """

    def __init__(
        self,
        store: ShardedFileStore,
        detector=None,
        interval_s: float = 1.0,
        batch_size: int = 64,
        deep: bool = True,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.store = store
        self.detector = detector
        self.interval_s = float(interval_s)
        self.batch_size = int(batch_size)
        self.deep = bool(deep)
        self._lock = threading.RLock()
        self._walk: list[tuple[str, str]] = []
        self._cursor = 0
        self._backlog: set[tuple[str, str]] = set()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats = {
            "rounds": 0, "cycles": 0, "keys_scanned": 0, "repaired": 0,
            "corrupt_healed": 0, "deferred": 0, "unrepairable": 0,
            "strays_dropped": 0,
        }
        registry = obs.registry()
        self._obs_backlog = registry.gauge(
            "mmlib_antientropy_backlog",
            "Keys known divergent and not yet healed")
        self._obs_repairs = registry.counter(
            "mmlib_antientropy_repairs_total",
            "Replica sets healed by the anti-entropy scanner")
        self._events = obs.events()

    # -- scanning ------------------------------------------------------------

    def _unreachable(self) -> set[str]:
        if self.detector is None:
            return set()
        return set(self.detector.down_members())

    def _snapshot_walk(self) -> None:
        self._walk = [
            ("chunk", digest) for digest in sorted(chunk_universe(self.store))
        ] + [
            ("blob", file_id) for file_id in sorted(blob_universe(self.store))
        ]
        self._cursor = 0
        self.stats["cycles"] += 1

    def _repair_key(self, kind: str, key: str, unreachable, repair: bool) -> dict:
        if kind == "chunk":
            return repair_chunk(
                self.store, key, repair=repair, deep=self.deep,
                unreachable=unreachable)
        return repair_blob(
            self.store, key, repair=repair, deep=self.deep,
            unreachable=unreachable)

    def _account(self, result: dict) -> None:
        key = (result["kind"], result["key"])
        status = result["status"]
        if status in ("ok", "repaired"):
            self._backlog.discard(key)
        else:
            self._backlog.add(key)
        if result["repaired_to"] or result["corrupt_healed"]:
            self.stats["repaired"] += 1
            self._obs_repairs.inc()
            self.store._clear_degraded(result["kind"], result["key"])
            self._events.emit(
                "antientropy_repair", kind=result["kind"], key=result["key"],
                restored=list(result["repaired_to"]),
                healed=list(result["corrupt_healed"]))
        self.stats["corrupt_healed"] += len(result["corrupt_healed"])
        self.stats["strays_dropped"] += len(result["strays_dropped"])
        if status == "deferred":
            self.stats["deferred"] += 1
        elif status == "unrepairable":
            self.stats["unrepairable"] += 1

    def scan_once(self, limit: int | None = None, repair: bool = True) -> dict:
        """Scan the next batch of keys; returns a round summary."""
        with self._lock:
            limit = self.batch_size if limit is None else int(limit)
            if self._cursor >= len(self._walk):
                self._snapshot_walk()
            batch = self._walk[self._cursor:self._cursor + limit]
            self._cursor += len(batch)
            unreachable = self._unreachable()
            summary = {"scanned": 0, "repaired": 0, "deferred": 0,
                       "unrepairable": 0, "backlog": 0}
            for kind, key in batch:
                result = self._repair_key(kind, key, unreachable, repair)
                self._account(result)
                summary["scanned"] += 1
                if result["repaired_to"] or result["corrupt_healed"]:
                    summary["repaired"] += 1
                if result["status"] == "deferred":
                    summary["deferred"] += 1
                elif result["status"] == "unrepairable":
                    summary["unrepairable"] += 1
            self.stats["rounds"] += 1
            self.stats["keys_scanned"] += summary["scanned"]
            summary["backlog"] = len(self._backlog)
            self._obs_backlog.set(len(self._backlog))
            return summary

    def full_sweep(self, repair: bool = True) -> dict:
        """One complete pass over the current universe (chaos/fsck path)."""
        with self._lock:
            self._snapshot_walk()
            total = {"scanned": 0, "repaired": 0, "deferred": 0,
                     "unrepairable": 0, "backlog": 0}
            while self._cursor < len(self._walk):
                round_summary = self.scan_once(repair=repair)
                for field in ("scanned", "repaired", "deferred", "unrepairable"):
                    total[field] += round_summary[field]
            total["backlog"] = len(self._backlog)
            return total

    def backlog(self) -> list[tuple[str, str]]:
        with self._lock:
            return sorted(self._backlog)

    def backlog_size(self) -> int:
        with self._lock:
            return len(self._backlog)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "AntiEntropyScanner":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mmlib-antientropy", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.scan_once()
            except Exception:  # pragma: no cover - defensive: keep scanning
                pass

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
