"""Hinted handoff: durable IOUs for replicas missed by quorum writes.

A quorum write that reaches W-but-not-all owners used to leave only a
``degraded_keys`` breadcrumb — convergence then depended on someone
eventually running ``fsck --repair``.  Hinted handoff closes the loop
online: the coordinator records a durable *hint* for each missed
(member, key) pair, and a background :class:`HintDeliverer` replays the
hints once the failure detector lets traffic through to that member
again.

Hints reuse the intent-journal idiom (:mod:`repro.filestore.journal`):
one JSON object per line, appends flushed, a torn final line parsed as
"skip the tail".  One file per target member under ``<root>/<member>.jsonl``
keeps "what does m2 still owe?" a single-file read.  Records carry no
payload — chunks are content-addressed, blobs embed their digest, and
documents live on the other owners — so delivery re-reads verified bytes
from a surviving replica at replay time.  That makes hints tiny,
idempotent, and safely replayable: a crash mid-delivery just replays the
hint, and re-applying an already-applied hint is a no-op.

Tombstone safety: document hints never carry the document body.  The
delivery applier consults the tombstone collection first, so replaying a
hint for a document that was deleted meanwhile propagates the *tombstone*
rather than resurrecting the document.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, Mapping

from .. import obs
from ..errors import TransientStoreError
from ..filestore.journal import SaveJournal

__all__ = ["HintLog", "HintDeliverer", "hint_key"]

HINT_SUFFIX = ".jsonl"

#: Hint kinds and what ``key`` means for each.
KIND_CHUNK = "chunk"  # key = chunk digest
KIND_BLOB = "blob"  # key = blob file id
KIND_DOC = "doc"  # key = document ring key "<collection>/<doc_id>"


def hint_key(hint: Mapping) -> tuple:
    """Identity of a hint for dedup: same miss recorded twice is one IOU."""
    return (hint["kind"], hint["key"], hint.get("collection"))


class HintLog:
    """Durable, deduplicated per-member hint files.

    Thread-safe; the write paths of both sharded stores append here from
    request threads while the deliverer drains concurrently.  The log is
    loaded from disk on construction, so hints survive coordinator
    restarts — delivery needs no memory of the write that created them.
    """

    def __init__(self, root: Path, clock=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._clock = clock or obs.clock()
        self._lock = threading.RLock()
        self._hints: dict[str, list[dict]] = {}
        self._seen: dict[str, set[tuple]] = {}
        self._registry = obs.registry()
        self._events = obs.events()
        self.stats = {"recorded": 0, "duplicates": 0, "delivered": 0, "stale": 0}
        self._load()

    # -- persistence ---------------------------------------------------------

    def _path(self, member: str) -> Path:
        return self.root / f"{member}{HINT_SUFFIX}"

    def _load(self) -> None:
        for path in sorted(self.root.glob(f"*{HINT_SUFFIX}")):
            member = path.stem
            # SaveJournal.load gives us the torn-tail-tolerant line parse
            for entry in SaveJournal.load(path).entries:
                if entry.get("op") != "hint":
                    continue
                self._remember(member, entry)
        for member, hints in self._hints.items():
            # prime the gauges so a reopened log exports its backlog
            self._gauge(member).set(len(hints))

    def _remember(self, member: str, hint: dict) -> bool:
        seen = self._seen.setdefault(member, set())
        key = hint_key(hint)
        if key in seen:
            return False
        seen.add(key)
        self._hints.setdefault(member, []).append(hint)
        return True

    def _gauge(self, member: str):
        return self._registry.gauge(
            "mmlib_hints_pending",
            "Undelivered handoff hints per member", member=member)

    def _rewrite(self, member: str) -> None:
        """Persist the in-memory hint list for ``member`` atomically."""
        path = self._path(member)
        hints = self._hints.get(member, [])
        if not hints:
            path.unlink(missing_ok=True)
            return
        tmp = path.with_suffix(path.suffix + ".tmp")
        with open(tmp, "w") as handle:
            for hint in hints:
                handle.write(json.dumps(hint, sort_keys=True) + "\n")
            handle.flush()
        tmp.replace(path)

    # -- recording -----------------------------------------------------------

    def record(self, member: str, kind: str, key: str,
               collection: str | None = None) -> bool:
        """Append one hint; returns ``False`` if the same IOU is pending."""
        hint = {"op": "hint", "kind": kind, "key": key,
                "recorded_at": self._clock.now()}
        if collection is not None:
            hint["collection"] = collection
        with self._lock:
            if not self._remember(member, hint):
                self.stats["duplicates"] += 1
                return False
            self.stats["recorded"] += 1
            path = self._path(member)
            # same append discipline as the save journal: flushed, not
            # fsynced — a lost tail is re-created by the next degraded
            # write or swept up by anti-entropy
            with open(path, "a") as handle:
                handle.write(json.dumps(hint, sort_keys=True) + "\n")
                handle.flush()
            self._gauge(member).set(len(self._hints[member]))
        self._registry.counter(
            "mmlib_hints_recorded_total", "Handoff hints recorded",
            kind=kind).inc()
        self._events.emit("hint_recorded", member=member, kind=kind, key=key)
        return True

    def resolve(self, member: str, hint: Mapping, stale: bool = False) -> None:
        """Drop one delivered (or stale) hint and persist the remainder."""
        with self._lock:
            hints = self._hints.get(member, [])
            key = hint_key(hint)
            kept = [h for h in hints if hint_key(h) != key]
            if len(kept) == len(hints):
                return
            self._hints[member] = kept
            self._seen.get(member, set()).discard(key)
            self.stats["stale" if stale else "delivered"] += 1
            self._rewrite(member)
            self._gauge(member).set(len(kept))
        self._registry.counter(
            "mmlib_hints_delivered_total", "Handoff hints resolved",
            outcome="stale" if stale else "delivered").inc()

    # -- queries -------------------------------------------------------------

    def pending(self, member: str | None = None) -> list[dict]:
        with self._lock:
            if member is not None:
                return [dict(h) for h in self._hints.get(member, [])]
            return [
                dict(h) for name in sorted(self._hints)
                for h in self._hints[name]
            ]

    def pending_counts(self) -> dict[str, int]:
        with self._lock:
            return {
                name: len(hints)
                for name, hints in sorted(self._hints.items())
                if hints
            }

    def total_pending(self) -> int:
        with self._lock:
            return sum(len(hints) for hints in self._hints.values())

    def pending_bytes(self) -> int:
        """On-disk footprint of undelivered hints (stats surface)."""
        total = 0
        with self._lock:
            members = [m for m, hints in self._hints.items() if hints]
        for member in members:
            try:
                total += self._path(member).stat().st_size
            except OSError:
                pass
        return total

    def members_with_hints(self) -> list[str]:
        with self._lock:
            return sorted(m for m, hints in self._hints.items() if hints)


class HintDeliverer:
    """Background replayer draining a :class:`HintLog` into live members.

    ``appliers`` maps hint kind → ``callable(member, hint) -> bool``:

    - return ``True``: applied — the member now has the data (or already
      had it); the hint is resolved.
    - return ``False``: stale — the hint no longer makes sense (data
      garbage-collected, member no longer an owner after a rebalance);
      resolved without delivery.
    - raise ``OSError``/``KeyError``: the member (or the source replica)
      is still unreachable; the hint stays, the failure feeds the
      detector, and the rest of that member's batch is skipped.

    Delivery is gated on the failure detector's breaker, so a member that
    is still down costs one fast skip per round, not one timeout per
    pending hint.
    """

    def __init__(
        self,
        log: HintLog,
        detector,
        appliers: Mapping[str, Callable[[str, Mapping], bool]],
        interval_s: float = 0.25,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.log = log
        self.detector = detector
        self.appliers = dict(appliers)
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._events = obs.events()
        self.stats = {"rounds": 0, "delivered": 0, "stale": 0,
                      "failures": 0, "skipped_down": 0, "unknown_kind": 0}

    def deliver_once(self) -> dict:
        """One delivery round over every member with pending hints."""
        round_stats = {"delivered": 0, "stale": 0, "failures": 0,
                       "skipped_down": 0}
        for member in self.log.members_with_hints():
            if self.detector is not None and not self.detector.allow(member):
                round_stats["skipped_down"] += 1
                continue
            for hint in self.log.pending(member):
                applier = self.appliers.get(hint.get("kind"))
                if applier is None:
                    self.stats["unknown_kind"] += 1
                    continue
                try:
                    applied = applier(member, hint)
                except (OSError, KeyError):
                    round_stats["failures"] += 1
                    if self.detector is not None:
                        self.detector.record_failure(member)
                    break  # member (or source) still sick: stop this batch
                self.log.resolve(member, hint, stale=not applied)
                round_stats["delivered" if applied else "stale"] += 1
                if applied and self.detector is not None:
                    self.detector.record_success(member)
        self.stats["rounds"] += 1
        for key in ("delivered", "stale", "failures", "skipped_down"):
            self.stats[key] += round_stats[key]
        if round_stats["delivered"] or round_stats["stale"]:
            self._events.emit("hints_delivered", **round_stats)
        return round_stats

    def drain(self, max_rounds: int = 100) -> bool:
        """Deliver until the log is empty or a round makes no progress.

        Returns ``True`` when every hint is resolved.  Used by ``fsck``'s
        repair mode and by chaos runs to measure convergence; steady-state
        operation uses the background thread instead.
        """
        for _ in range(max_rounds):
            if self.log.total_pending() == 0:
                return True
            result = self.deliver_once()
            if result["delivered"] == 0 and result["stale"] == 0:
                break
        return self.log.total_pending() == 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "HintDeliverer":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="mmlib-hint-deliverer", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.deliver_once()
            except TransientStoreError:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
