"""Module system: composable layers with state dicts and layer granularity.

The design mirrors ``torch.nn``: a :class:`Module` owns parameters, buffers,
and child modules; :meth:`Module.state_dict` flattens the tree into an
ordered mapping of dotted names to numpy arrays.  MMlib operates exclusively
on this interface — per-layer hashing, parameter updates, and serialization
all consume state dicts.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Iterator

import numpy as np

from . import functional as F
from . import init, rng
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Identity",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "ReLU6",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "Dropout",
    "LegacyDropout",
    "Flatten",
]


class Parameter(Tensor):
    """A tensor registered as a learnable parameter (grad-enabled)."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(data, requires_grad=requires_grad)


class HookHandle:
    """Removable registration handle returned by hook installers."""

    _next_id = 0

    def __init__(self, registry: OrderedDict):
        self._registry = registry
        HookHandle._next_id += 1
        self.id = HookHandle._next_id

    def remove(self) -> None:
        self._registry.pop(self.id, None)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_forward_hooks", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute plumbing ----------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self.__dict__.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self.__dict__.pop(name, None)
        else:
            if name in self._parameters and value is None:
                self._parameters[name] = None
                return
            object.__setattr__(self, name, value)

    def __getattr__(self, name: str):
        for registry_name in ("_parameters", "_buffers", "_modules"):
            registry = self.__dict__.get(registry_name)
            if registry is not None and name in registry:
                return registry[name]
        raise AttributeError(f"{type(self).__name__} has no attribute {name!r}")

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-learnable state saved in the state dict (e.g. BN stats)."""
        self._buffers[name] = value

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module

    # -- traversal ----------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            if param is not None:
                yield prefix + name, param
        for name, module in self._modules.items():
            if module is not None:
                yield from module.named_parameters(prefix + name + ".")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield prefix + name, buffer
        for name, module in self._modules.items():
            if module is not None:
                yield from module.named_buffers(prefix + name + ".")

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            if module is None:
                continue
            child_prefix = prefix + ("." if prefix else "") + name
            yield from module.named_modules(child_prefix)

    def children(self) -> Iterator["Module"]:
        yield from (m for m in self._modules.values() if m is not None)

    def apply(self, fn) -> "Module":
        """Apply ``fn`` to every module in the subtree (children first)."""
        for module in self._modules.values():
            if module is not None:
                module.apply(fn)
        fn(self)
        return self

    # -- mode & gradients -----------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects BN statistics, dropout)."""
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            if module is not None:
                module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def requires_grad_(self, flag: bool = True) -> "Module":
        for param in self.parameters():
            param.requires_grad = flag
        return self

    def freeze(self) -> "Module":
        """Mark every parameter in this subtree as not trainable."""
        return self.requires_grad_(False)

    # -- state dict -------------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        """Flattened mapping of dotted parameter/buffer names to arrays."""
        state: OrderedDict[str, np.ndarray] = OrderedDict()
        self._collect_state(state, "")
        return state

    def _collect_state(self, state: OrderedDict, prefix: str) -> None:
        for name, param in self._parameters.items():
            if param is not None:
                state[prefix + name] = param.data
        for name, buffer in self._buffers.items():
            state[prefix + name] = buffer
        for name, module in self._modules.items():
            if module is not None:
                module._collect_state(state, prefix + name + ".")

    def load_state_dict(self, state: dict, strict: bool = True) -> None:
        """Copy arrays from ``state`` into parameters and buffers by name."""
        own = self.state_dict()
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={missing[:5]} unexpected={unexpected[:5]}"
            )
        self._load_state(state, "")

    def _load_state(self, state: dict, prefix: str) -> None:
        for name, param in self._parameters.items():
            key = prefix + name
            if param is not None and key in state:
                value = np.asarray(state[key], dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {key}: {value.shape} vs {param.data.shape}"
                    )
                param.data = value.copy()
        for name in self._buffers:
            key = prefix + name
            if key in state:
                self._buffers[name] = np.asarray(state[key]).copy()
        for name, module in self._modules.items():
            if module is not None:
                module._load_state(state, prefix + name + ".")

    def num_parameters(self, trainable_only: bool = False) -> int:
        """Total number of parameter elements in the subtree."""
        return sum(
            p.data.size
            for p in self.parameters()
            if p.requires_grad or not trainable_only
        )

    # -- call -----------------------------------------------------------------------------

    def register_forward_hook(self, hook) -> "HookHandle":
        """Register ``hook(module, inputs, output)`` to run after forward."""
        handle = HookHandle(self._forward_hooks)
        self._forward_hooks[handle.id] = hook
        return handle

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        output = self.forward(*args, **kwargs)
        for hook in list(self._forward_hooks.values()):
            hook(self, args, output)
        return output

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self._repr_header()
        if not child_lines:
            return header
        return header[:-1].rstrip("(") + "(\n" + "\n".join(child_lines) + "\n)"

    def _repr_header(self) -> str:
        return f"{type(self).__name__}()"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        for index, module in enumerate(modules):
            self.add_module(str(index), module)

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]

    def forward(self, x: Tensor) -> Tensor:
        for module in self._modules.values():
            x = module(x)
        return x


class ModuleList(Module):
    """List container registering each element as a child module."""

    def __init__(self, modules=()):
        super().__init__()
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._modules)), module)
        return self

    def __len__(self) -> int:
        return len(self._modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __getitem__(self, index: int) -> Module:
        return list(self._modules.values())[index]


class Identity(Module):
    """Pass-through module (placeholder in optional slots)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features), dtype=np.float32))
        if bias:
            self.bias = Parameter(np.empty(out_features, dtype=np.float32))
        else:
            self._parameters["bias"] = None
        self.reset_parameters()

    def reset_parameters(self) -> None:
        init.kaiming_uniform_(self.weight, a=math.sqrt(5))
        if self.bias is not None:
            bound = 1.0 / math.sqrt(self.in_features)
            init.uniform_(self.bias, -bound, bound)

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def _repr_header(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class Conv2d(Module):
    """2D convolution layer.

    ``kernel_impl="legacy"`` selects the kernel variant whose deterministic
    implementation is substantially slower (see :mod:`repro.nn.functional`).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        kernel_impl: str = "standard",
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        self.kernel_impl = kernel_impl
        self.weight = Parameter(
            np.empty(
                (out_channels, in_channels // groups, kernel_size, kernel_size),
                dtype=np.float32,
            )
        )
        if bias:
            self.bias = Parameter(np.empty(out_channels, dtype=np.float32))
        else:
            self._parameters["bias"] = None
        self.reset_parameters()

    def reset_parameters(self) -> None:
        init.kaiming_uniform_(self.weight, a=math.sqrt(5))
        if self.bias is not None:
            fan_in = self.in_channels // self.groups * self.kernel_size**2
            bound = 1.0 / math.sqrt(fan_in)
            init.uniform_(self.bias, -bound, bound)

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
            kernel_impl=self.kernel_impl,
        )

    def _repr_header(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, groups={self.groups})"
        )


class BatchNorm2d(Module):
    """Batch normalization with running statistics stored as buffers."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=np.int64))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            self._buffers["num_batches_tracked"] = (
                self._buffers["num_batches_tracked"] + 1
            )
        return F.batch_norm(
            x,
            self._buffers["running_mean"],
            self._buffers["running_var"],
            self.weight,
            self.bias,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def _repr_header(self) -> str:
        return f"BatchNorm2d({self.num_features}, eps={self.eps})"


class LayerNorm(Module):
    """Layer normalization over the last dimension (per-sample statistics)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape, dtype=np.float32))
        self.bias = Parameter(np.zeros(normalized_shape, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def _repr_header(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class ReLU6(Module):
    """ReLU clipped at 6 (MobileNet activations)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu6(x)


class MaxPool2d(Module):
    """Max pooling over spatial windows."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def _repr_header(self) -> str:
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling over spatial windows."""

    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride, self.padding)


class AdaptiveAvgPool2d(Module):
    """Average pooling to a fixed output grid (PyTorch semantics)."""

    def __init__(self, output_size):
        super().__init__()
        self.output_size = output_size

    def forward(self, x: Tensor) -> Tensor:
        return F.adaptive_avg_pool2d(x, self.output_size)


class Dropout(Module):
    """Standard dropout; reproducible because it draws from the seeded RNG."""

    def __init__(self, p: float = 0.5):
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training)

    def _repr_header(self) -> str:
        return f"Dropout(p={self.p})"


class LegacyDropout(Module):
    """A *deprecated* dropout with no deterministic implementation.

    It draws its mask from the unseeded generator even in deterministic
    mode, modelling the paper's finding (Section 2.4) that some models are
    not reproducible because they use deprecated layers for which the
    framework provides no deterministic implementation.  The probe tool
    flags models containing this layer as non-reproducible.
    """

    def __init__(self, p: float = 0.5):
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, generator=rng.nondet_generator())

    def _repr_header(self) -> str:
        return f"LegacyDropout(p={self.p})"


class Flatten(Module):
    """Flatten trailing dimensions starting at ``start_dim``."""

    def __init__(self, start_dim: int = 1):
        super().__init__()
        self.start_dim = start_dim

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(self.start_dim)
