"""ResNet family (He et al., 2016) matching torchvision's layouts.

At ``scale=1.0`` and ``num_classes=1000`` the parameter counts match the
paper's Table 2 exactly: ResNet-18 11,689,512; ResNet-50 25,557,032;
ResNet-152 60,192,808.

The 3x3 convolutions inside :class:`BasicBlock` use the substrate's
``legacy`` kernel variant, whose deterministic implementation is much
slower.  ResNet-50/152 are built from :class:`Bottleneck` blocks only, so
the three models reproduce the paper's Section 4.5 observation that
deterministic training slows ResNet-18 down far more than its larger
siblings.
"""

from __future__ import annotations

from ..modules import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor import Tensor

__all__ = ["ResNet", "BasicBlock", "Bottleneck", "resnet18", "resnet50", "resnet152"]


def _scaled(channels: int, scale: float) -> int:
    """Scale a channel count, rounding to a multiple of 8 (min 8)."""
    if scale == 1.0:
        return channels
    return max(8, int(round(channels * scale / 8)) * 8)


def conv3x3(in_planes: int, out_planes: int, stride: int = 1, kernel_impl: str = "standard") -> Conv2d:
    return Conv2d(
        in_planes,
        out_planes,
        kernel_size=3,
        stride=stride,
        padding=1,
        bias=False,
        kernel_impl=kernel_impl,
    )


def conv1x1(in_planes: int, out_planes: int, stride: int = 1) -> Conv2d:
    return Conv2d(in_planes, out_planes, kernel_size=1, stride=stride, bias=False)


class BasicBlock(Module):
    """Two 3x3 convolutions with an identity (or projected) shortcut."""

    expansion = 1

    def __init__(self, inplanes: int, planes: int, stride: int = 1, downsample: Module | None = None):
        super().__init__()
        self.conv1 = conv3x3(inplanes, planes, stride, kernel_impl="legacy")
        self.bn1 = BatchNorm2d(planes)
        self.relu = ReLU()
        self.conv2 = conv3x3(planes, planes, kernel_impl="legacy")
        self.bn2 = BatchNorm2d(planes)
        if downsample is not None:
            self.downsample = downsample
        else:
            self._modules["downsample"] = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        downsample = self._modules.get("downsample")
        if downsample is not None:
            identity = downsample(x)
        return self.relu(out + identity)


class Bottleneck(Module):
    """1x1 reduce, 3x3, 1x1 expand (x4) with a shortcut."""

    expansion = 4

    def __init__(self, inplanes: int, planes: int, stride: int = 1, downsample: Module | None = None):
        super().__init__()
        self.conv1 = conv1x1(inplanes, planes)
        self.bn1 = BatchNorm2d(planes)
        self.conv2 = conv3x3(planes, planes, stride)
        self.bn2 = BatchNorm2d(planes)
        self.conv3 = conv1x1(planes, planes * self.expansion)
        self.bn3 = BatchNorm2d(planes * self.expansion)
        self.relu = ReLU()
        if downsample is not None:
            self.downsample = downsample
        else:
            self._modules["downsample"] = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        downsample = self._modules.get("downsample")
        if downsample is not None:
            identity = downsample(x)
        return self.relu(out + identity)


class ResNet(Module):
    """Deep residual network over ``(N, 3, H, W)`` images."""

    def __init__(
        self,
        block,
        layers: list[int],
        num_classes: int = 1000,
        scale: float = 1.0,
    ):
        super().__init__()
        self.num_classes = num_classes
        self.scale = scale
        widths = [_scaled(w, scale) for w in (64, 128, 256, 512)]
        self.inplanes = widths[0]
        self.conv1 = Conv2d(3, widths[0], kernel_size=7, stride=2, padding=3, bias=False)
        self.bn1 = BatchNorm2d(widths[0])
        self.relu = ReLU()
        self.maxpool = MaxPool2d(kernel_size=3, stride=2, padding=1)
        self.layer1 = self._make_layer(block, widths[0], layers[0])
        self.layer2 = self._make_layer(block, widths[1], layers[1], stride=2)
        self.layer3 = self._make_layer(block, widths[2], layers[2], stride=2)
        self.layer4 = self._make_layer(block, widths[3], layers[3], stride=2)
        self.avgpool = AdaptiveAvgPool2d((1, 1))
        self.fc = Linear(widths[3] * block.expansion, num_classes)

    def _make_layer(self, block, planes: int, blocks: int, stride: int = 1) -> Sequential:
        downsample = None
        if stride != 1 or self.inplanes != planes * block.expansion:
            downsample = Sequential(
                conv1x1(self.inplanes, planes * block.expansion, stride),
                BatchNorm2d(planes * block.expansion),
            )
        layers = [block(self.inplanes, planes, stride, downsample)]
        self.inplanes = planes * block.expansion
        layers.extend(block(self.inplanes, planes) for _ in range(1, blocks))
        return Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        x = self.maxpool(self.relu(self.bn1(self.conv1(x))))
        x = self.layer4(self.layer3(self.layer2(self.layer1(x))))
        x = self.avgpool(x).flatten(1)
        return self.fc(x)

    def final_classifier(self) -> Linear:
        """The layer retrained for *partially updated* model versions."""
        return self.fc


def resnet18(num_classes: int = 1000, scale: float = 1.0) -> ResNet:
    """ResNet-18 (BasicBlock, [2, 2, 2, 2])."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes=num_classes, scale=scale)


def resnet50(num_classes: int = 1000, scale: float = 1.0) -> ResNet:
    """ResNet-50 (Bottleneck, [3, 4, 6, 3])."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes=num_classes, scale=scale)


def resnet152(num_classes: int = 1000, scale: float = 1.0) -> ResNet:
    """ResNet-152 (Bottleneck, [3, 8, 36, 3])."""
    return ResNet(Bottleneck, [3, 8, 36, 3], num_classes=num_classes, scale=scale)
