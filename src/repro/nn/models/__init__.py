"""Model zoo: the five computer-vision architectures of the paper's Table 2."""

from .googlenet import BasicConv2d, GoogLeNet, Inception, InceptionAux, googlenet
from .mobilenetv2 import InvertedResidual, MobileNetV2, mobilenetv2
from .registry import (
    MODEL_REGISTRY,
    ModelSpec,
    create_model,
    freeze_for_partial_update,
    list_models,
    trainable_parameter_count,
)
from .resnet import BasicBlock, Bottleneck, ResNet, resnet18, resnet50, resnet152
from .text import TextClassifier, text_classifier

__all__ = [
    "BasicConv2d",
    "GoogLeNet",
    "Inception",
    "InceptionAux",
    "googlenet",
    "InvertedResidual",
    "MobileNetV2",
    "mobilenetv2",
    "MODEL_REGISTRY",
    "ModelSpec",
    "create_model",
    "freeze_for_partial_update",
    "list_models",
    "trainable_parameter_count",
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet50",
    "resnet152",
    "TextClassifier",
    "text_classifier",
]
