"""Model registry: the evaluation architectures of the paper's Table 2."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .. import rng
from ..modules import Module
from .googlenet import googlenet
from .mobilenetv2 import mobilenetv2
from .resnet import resnet18, resnet50, resnet152

__all__ = [
    "ModelSpec",
    "MODEL_REGISTRY",
    "list_models",
    "create_model",
    "freeze_for_partial_update",
    "trainable_parameter_count",
]


@dataclass(frozen=True)
class ModelSpec:
    """Registry entry with the paper's reference numbers for Table 2."""

    name: str
    factory: Callable[..., Module]
    paper_params: int
    paper_partial_params: int
    paper_size_mb: float


MODEL_REGISTRY: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in [
        ModelSpec("mobilenetv2", mobilenetv2, 3_504_872, 1_281_000, 14.3),
        ModelSpec("googlenet", googlenet, 6_624_904, 1_025_000, 26.7),
        ModelSpec("resnet18", resnet18, 11_689_512, 513_000, 46.8),
        ModelSpec("resnet50", resnet50, 25_557_032, 2_049_000, 102.5),
        ModelSpec("resnet152", resnet152, 60_192_808, 2_049_000, 241.7),
    ]
}


def list_models() -> list[str]:
    """Names of the available architectures, in Table 2 order."""
    return list(MODEL_REGISTRY)


def create_model(
    name: str,
    num_classes: int = 1000,
    scale: float = 1.0,
    seed: int | None = None,
) -> Module:
    """Instantiate a registered architecture.

    ``seed`` (optional) seeds the substrate RNG first so that two calls with
    the same seed produce bitwise-identical initial parameters.
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {list_models()}")
    if seed is not None:
        rng.manual_seed(seed)
    return MODEL_REGISTRY[name].factory(num_classes=num_classes, scale=scale)


def freeze_for_partial_update(model: Module) -> Module:
    """Freeze everything except the final classifier (paper Section 4.1).

    For *partially updated model versions* the paper retrains only the last
    fully connected layer(s); all other layers are declared not trainable on
    a layer granularity.
    """
    classifier = model.final_classifier()
    model.requires_grad_(False)
    classifier.requires_grad_(True)
    return model


def trainable_parameter_count(model: Module) -> int:
    """Number of parameters that would change in a training step."""
    return model.num_parameters(trainable_only=True)
