"""GoogLeNet / Inception v1 (Szegedy et al., 2015), torchvision layout.

Includes the two auxiliary classifiers, giving the Table 2 parameter count
of 6,624,904 at ``scale=1.0`` / ``num_classes=1000``.  Like torchvision, the
"5x5" inception branch actually uses a 3x3 convolution (a known deviation of
the reference implementation that the paper's models inherit).

The paper's Figure 12 notes that GoogLeNet's *initialization* routine is
disproportionately slow, which shows up as a recover-time peak.  The
torchvision original draws every weight from a truncated normal via scipy;
we reproduce the cost profile with an explicit truncated-normal rejection
sampler, which is similarly far more expensive than the plain initializers
used by the other architectures.
"""

from __future__ import annotations

import numpy as np

from .. import rng
from ..modules import (
    AdaptiveAvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
)
from ..tensor import Tensor, cat

__all__ = ["GoogLeNet", "Inception", "InceptionAux", "BasicConv2d", "googlenet"]


def _scaled(channels: int, scale: float) -> int:
    if scale == 1.0:
        return channels
    return max(8, int(round(channels * scale / 8)) * 8)


def _truncated_normal_(tensor, std: float = 0.01, bound: float = 2.0) -> None:
    """Fill with N(0, std) truncated to ``[-bound*std, bound*std]``.

    Rejection sampling mirrors the cost of the reference implementation's
    scipy-based truncnorm initialization (the source of GoogLeNet's slow
    initialization highlighted in the paper's Figure 12).
    """
    generator = rng.generator()
    out = np.empty(tensor.data.size, dtype=np.float64)
    filled = 0
    while filled < out.size:
        draw = generator.standard_normal(max(1024, out.size - filled))
        draw = draw[np.abs(draw) <= bound]
        take = min(draw.size, out.size - filled)
        out[filled : filled + take] = draw[:take]
        filled += take
    tensor.data[...] = (out * std).reshape(tensor.shape).astype(tensor.dtype)


class BasicConv2d(Module):
    """Conv (no bias) + BatchNorm + ReLU, the GoogLeNet building block."""

    def __init__(self, in_channels: int, out_channels: int, **conv_kwargs):
        super().__init__()
        self.conv = Conv2d(in_channels, out_channels, bias=False, **conv_kwargs)
        self.bn = BatchNorm2d(out_channels, eps=0.001)
        self.relu = ReLU()
        _truncated_normal_(self.conv.weight)

    def forward(self, x: Tensor) -> Tensor:
        return self.relu(self.bn(self.conv(x)))


class Inception(Module):
    """Four parallel branches concatenated along the channel dimension."""

    def __init__(
        self,
        in_channels: int,
        ch1x1: int,
        ch3x3red: int,
        ch3x3: int,
        ch5x5red: int,
        ch5x5: int,
        pool_proj: int,
    ):
        super().__init__()
        self.branch1 = BasicConv2d(in_channels, ch1x1, kernel_size=1)
        self.branch2 = Sequential(
            BasicConv2d(in_channels, ch3x3red, kernel_size=1),
            BasicConv2d(ch3x3red, ch3x3, kernel_size=3, padding=1),
        )
        self.branch3 = Sequential(
            BasicConv2d(in_channels, ch5x5red, kernel_size=1),
            # torchvision uses kernel_size=3 here despite the "5x5" name.
            BasicConv2d(ch5x5red, ch5x5, kernel_size=3, padding=1),
        )
        self.branch4 = Sequential(
            MaxPool2d(kernel_size=3, stride=1, padding=1),
            BasicConv2d(in_channels, pool_proj, kernel_size=1),
        )

    def forward(self, x: Tensor) -> Tensor:
        return cat(
            [self.branch1(x), self.branch2(x), self.branch3(x), self.branch4(x)],
            dim=1,
        )


class InceptionAux(Module):
    """Auxiliary classifier attached to intermediate feature maps."""

    def __init__(self, in_channels: int, num_classes: int, fc_in: int = 2048, fc_hidden: int = 1024):
        super().__init__()
        self.conv = BasicConv2d(in_channels, fc_in // 16, kernel_size=1)
        self.avgpool = AdaptiveAvgPool2d((4, 4))
        self.fc1 = Linear(fc_in, fc_hidden)
        self.fc2 = Linear(fc_hidden, num_classes)
        self.relu = ReLU()
        self.dropout = Dropout(0.7)
        _truncated_normal_(self.fc1.weight, std=0.001)
        _truncated_normal_(self.fc2.weight, std=0.001)

    def forward(self, x: Tensor) -> Tensor:
        x = self.conv(self.avgpool(x))
        x = x.flatten(1)
        x = self.dropout(self.relu(self.fc1(x)))
        return self.fc2(x)


class GoogLeNet(Module):
    """GoogLeNet over ``(N, 3, H, W)`` images.

    In training mode :meth:`forward` returns ``(logits, aux2, aux1)``; in
    eval mode only the main logits, as in torchvision.
    """

    def __init__(self, num_classes: int = 1000, scale: float = 1.0, aux_logits: bool = True):
        super().__init__()
        self.num_classes = num_classes
        self.scale = scale
        self.aux_logits = aux_logits

        def s(c: int) -> int:
            return _scaled(c, scale)

        self.conv1 = BasicConv2d(3, s(64), kernel_size=7, stride=2, padding=3)
        self.maxpool1 = MaxPool2d(3, stride=2, padding=1)
        self.conv2 = BasicConv2d(s(64), s(64), kernel_size=1)
        self.conv3 = BasicConv2d(s(64), s(192), kernel_size=3, padding=1)
        self.maxpool2 = MaxPool2d(3, stride=2, padding=1)

        channels = s(192)

        def inception(ch1x1, ch3x3red, ch3x3, ch5x5red, ch5x5, pool_proj):
            nonlocal channels
            block = Inception(
                channels, s(ch1x1), s(ch3x3red), s(ch3x3), s(ch5x5red), s(ch5x5), s(pool_proj)
            )
            channels = s(ch1x1) + s(ch3x3) + s(ch5x5) + s(pool_proj)
            return block

        self.inception3a = inception(64, 96, 128, 16, 32, 32)
        self.inception3b = inception(128, 128, 192, 32, 96, 64)
        self.maxpool3 = MaxPool2d(3, stride=2, padding=1)
        self.inception4a = inception(192, 96, 208, 16, 48, 64)
        aux1_in = channels
        self.inception4b = inception(160, 112, 224, 24, 64, 64)
        self.inception4c = inception(128, 128, 256, 24, 64, 64)
        self.inception4d = inception(112, 144, 288, 32, 64, 64)
        aux2_in = channels
        self.inception4e = inception(256, 160, 320, 32, 128, 128)
        self.maxpool4 = MaxPool2d(2, stride=2)
        self.inception5a = inception(256, 160, 320, 32, 128, 128)
        self.inception5b = inception(384, 192, 384, 48, 128, 128)

        if aux_logits:
            fc_in = s(128) * 16
            self.aux1 = InceptionAux(aux1_in, num_classes, fc_in=fc_in, fc_hidden=s(1024))
            self.aux2 = InceptionAux(aux2_in, num_classes, fc_in=fc_in, fc_hidden=s(1024))
        else:
            self._modules["aux1"] = None
            self._modules["aux2"] = None

        self.avgpool = AdaptiveAvgPool2d((1, 1))
        self.dropout = Dropout(0.2)
        self.fc = Linear(channels, num_classes)
        _truncated_normal_(self.fc.weight, std=0.001)

    def forward(self, x: Tensor):
        x = self.maxpool1(self.conv1(x))
        x = self.maxpool2(self.conv3(self.conv2(x)))
        x = self.inception3b(self.inception3a(x))
        x = self.maxpool3(x)
        x = self.inception4a(x)
        aux1 = None
        aux2 = None
        if self.training and self.aux_logits:
            aux1 = self.aux1(x)
        x = self.inception4c(self.inception4b(x))
        x = self.inception4d(x)
        if self.training and self.aux_logits:
            aux2 = self.aux2(x)
        x = self.inception4e(x)
        x = self.maxpool4(x)
        x = self.inception5b(self.inception5a(x))
        x = self.avgpool(x).flatten(1)
        logits = self.fc(self.dropout(x))
        if self.training and self.aux_logits:
            return logits, aux2, aux1
        return logits

    def final_classifier(self) -> Linear:
        """The layer retrained for *partially updated* model versions."""
        return self.fc


def googlenet(num_classes: int = 1000, scale: float = 1.0, aux_logits: bool = False) -> GoogLeNet:
    """Construct a GoogLeNet.

    ``aux_logits`` defaults to ``False``: the paper's Table 2 count
    (6,624,904 parameters) matches torchvision's *pretrained* GoogLeNet,
    which strips the auxiliary classifiers after training.
    """
    return GoogLeNet(num_classes=num_classes, scale=scale, aux_logits=aux_logits)
