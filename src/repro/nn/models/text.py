"""Text classification model: the paper's §4.7 NLP-shaped workload.

"For example, for natural language processing, we would expect complex
models and long training times but small datasets ... The perfect domain
for the MPA would be short training times, small datasets, and large
models."  This bag-of-embeddings classifier realizes that shape: the
embedding table dominates the parameter count (tens of MB at full scale)
while token datasets are tiny.
"""

from __future__ import annotations

from ..embedding import Embedding
from ..modules import Dropout, Linear, Module, ReLU, Sequential
from ..tensor import Tensor

__all__ = ["TextClassifier", "text_classifier"]


class TextClassifier(Module):
    """Mean-pooled embedding classifier over ``(N, sequence)`` token ids."""

    def __init__(
        self,
        vocab_size: int = 50_000,
        embedding_dim: int = 256,
        hidden_dim: int = 256,
        num_classes: int = 4,
        dropout: float = 0.1,
    ):
        super().__init__()
        self.vocab_size = vocab_size
        self.embedding = Embedding(vocab_size, embedding_dim)
        self.head = Sequential(
            Linear(embedding_dim, hidden_dim),
            ReLU(),
            Dropout(dropout),
            Linear(hidden_dim, num_classes),
        )

    def forward(self, token_ids) -> Tensor:
        embedded = self.embedding(token_ids)  # (N, seq, dim)
        pooled = embedded.mean(axis=1)
        return self.head(pooled)

    def final_classifier(self) -> Linear:
        """The layer retrained for partially updated model versions."""
        return self.head[3]


def text_classifier(
    vocab_size: int = 50_000,
    embedding_dim: int = 256,
    hidden_dim: int = 256,
    num_classes: int = 4,
) -> TextClassifier:
    """Construct the §4.7 NLP-shaped classifier."""
    return TextClassifier(
        vocab_size=vocab_size,
        embedding_dim=embedding_dim,
        hidden_dim=hidden_dim,
        num_classes=num_classes,
    )
