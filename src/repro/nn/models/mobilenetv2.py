"""MobileNetV2 (Sandler et al., 2018) matching torchvision's layout.

At ``scale=1.0`` / ``num_classes=1000`` the model has 3,504,872 parameters,
the Table 2 value; its final classifier holds the 1,281,000 parameters that
remain trainable in the paper's *partially updated* model relation.
"""

from __future__ import annotations

from ..modules import (
    BatchNorm2d,
    Conv2d,
    Dropout,
    Linear,
    Module,
    ReLU6,
    Sequential,
)
from ..tensor import Tensor

__all__ = ["MobileNetV2", "InvertedResidual", "mobilenetv2"]

_INVERTED_RESIDUAL_SETTINGS = [
    # expand ratio t, output channels c, repeats n, stride s
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _make_divisible(value: float, divisor: int = 8) -> int:
    """Round channel counts as the reference implementation does."""
    rounded = max(divisor, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


def conv_bn_relu(
    in_channels: int, out_channels: int, kernel_size: int = 3, stride: int = 1, groups: int = 1
) -> Sequential:
    return Sequential(
        Conv2d(
            in_channels,
            out_channels,
            kernel_size,
            stride=stride,
            padding=(kernel_size - 1) // 2,
            groups=groups,
            bias=False,
        ),
        BatchNorm2d(out_channels),
        ReLU6(),
    )


class InvertedResidual(Module):
    """Expand (1x1) -> depthwise (3x3) -> project (1x1) with optional skip."""

    def __init__(self, in_channels: int, out_channels: int, stride: int, expand_ratio: int):
        super().__init__()
        hidden = int(round(in_channels * expand_ratio))
        self.use_residual = stride == 1 and in_channels == out_channels
        layers = []
        if expand_ratio != 1:
            layers.append(conv_bn_relu(in_channels, hidden, kernel_size=1))
        layers.extend(
            [
                conv_bn_relu(hidden, hidden, stride=stride, groups=hidden),
                Conv2d(hidden, out_channels, kernel_size=1, bias=False),
                BatchNorm2d(out_channels),
            ]
        )
        self.conv = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv(x)
        if self.use_residual:
            return x + out
        return out


class MobileNetV2(Module):
    """MobileNetV2 over ``(N, 3, H, W)`` images."""

    def __init__(self, num_classes: int = 1000, scale: float = 1.0, dropout: float = 0.2):
        super().__init__()
        self.num_classes = num_classes
        self.scale = scale
        input_channel = _make_divisible(32 * scale)
        last_channel = _make_divisible(1280 * max(1.0, scale))
        features: list[Module] = [conv_bn_relu(3, input_channel, stride=2)]
        for t, c, n, s in _INVERTED_RESIDUAL_SETTINGS:
            output_channel = _make_divisible(c * scale)
            for i in range(n):
                stride = s if i == 0 else 1
                features.append(
                    InvertedResidual(input_channel, output_channel, stride, expand_ratio=t)
                )
                input_channel = output_channel
        features.append(conv_bn_relu(input_channel, last_channel, kernel_size=1))
        self.features = Sequential(*features)
        self.classifier = Sequential(Dropout(dropout), Linear(last_channel, num_classes))

    def forward(self, x: Tensor) -> Tensor:
        x = self.features(x)
        x = x.mean(axis=(2, 3))
        return self.classifier(x)

    def final_classifier(self) -> Linear:
        """The layer retrained for *partially updated* model versions."""
        return self.classifier[1]


def mobilenetv2(num_classes: int = 1000, scale: float = 1.0) -> MobileNetV2:
    """Construct a MobileNetV2 (torchvision-compatible layout)."""
    return MobileNetV2(num_classes=num_classes, scale=scale)
