"""Embedding layer: token-id lookup with scatter-add gradients.

Gives the substrate the "large model, small dataset" regime the paper's
Section 4.7 discussion assigns to natural language processing: an
embedding table holds most of an NLP model's parameters while its training
corpora are small relative to image datasets.
"""

from __future__ import annotations

import numpy as np

from . import init
from .autograd import GraphNode
from .modules import Module, Parameter
from .tensor import Tensor

__all__ = ["Embedding", "embedding"]


def embedding(indices, weight: Tensor) -> Tensor:
    """Look up rows of ``weight`` for integer ``indices`` (differentiable).

    ``indices`` may be any integer array shape; the output appends the
    embedding dimension.  Gradients scatter-add into the used rows.
    """
    index_array = np.asarray(
        indices.data if isinstance(indices, Tensor) else indices, dtype=np.int64
    )
    if index_array.min(initial=0) < 0 or index_array.max(initial=0) >= weight.shape[0]:
        raise IndexError(
            f"token ids must be within [0, {weight.shape[0]}); "
            f"got range [{index_array.min()}, {index_array.max()}]"
        )
    out_data = weight.data[index_array]

    def backward_fn(g):
        grad_weight = np.zeros_like(weight.data)
        np.add.at(grad_weight, index_array.reshape(-1), g.reshape(-1, weight.shape[1]))
        return (grad_weight,)

    node = GraphNode(inputs=(weight,), backward_fn=backward_fn, name="embedding")
    return Tensor._from_op(out_data, node)


class Embedding(Module):
    """Token embedding table ``(num_embeddings, embedding_dim)``."""

    def __init__(self, num_embeddings: int, embedding_dim: int):
        super().__init__()
        if num_embeddings < 1 or embedding_dim < 1:
            raise ValueError("num_embeddings and embedding_dim must be >= 1")
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            np.empty((num_embeddings, embedding_dim), dtype=np.float32)
        )
        init.normal_(self.weight, std=1.0 / embedding_dim**0.5)

    def forward(self, indices) -> Tensor:
        return embedding(indices, self.weight)

    def _repr_header(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
