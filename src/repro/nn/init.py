"""Weight initializers drawing from the substrate's seeded generator.

All functions mutate the tensor in place and return it, mirroring
``torch.nn.init``.  Because every draw comes from the generator controlled by
:func:`repro.nn.rng.manual_seed`, model construction is reproducible.
"""

from __future__ import annotations

import math

import numpy as np

from . import rng
from .tensor import Tensor

__all__ = [
    "calculate_fan",
    "uniform_",
    "normal_",
    "constant_",
    "zeros_",
    "ones_",
    "kaiming_uniform_",
    "kaiming_normal_",
    "xavier_uniform_",
    "xavier_normal_",
]


def calculate_fan(tensor: Tensor) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for linear or convolution weights."""
    shape = tensor.shape
    if len(shape) < 2:
        raise ValueError("fan calculation requires at least a 2D tensor")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def uniform_(tensor: Tensor, low: float = 0.0, high: float = 1.0) -> Tensor:
    tensor.data[...] = rng.generator().uniform(low, high, size=tensor.shape).astype(
        tensor.dtype
    )
    return tensor


def normal_(tensor: Tensor, mean: float = 0.0, std: float = 1.0) -> Tensor:
    tensor.data[...] = rng.generator().normal(mean, std, size=tensor.shape).astype(
        tensor.dtype
    )
    return tensor


def constant_(tensor: Tensor, value: float) -> Tensor:
    tensor.data[...] = value
    return tensor


def zeros_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 0.0)


def ones_(tensor: Tensor) -> Tensor:
    return constant_(tensor, 1.0)


def _kaiming_gain(a: float, nonlinearity: str) -> float:
    if nonlinearity == "relu":
        return math.sqrt(2.0)
    if nonlinearity == "leaky_relu":
        return math.sqrt(2.0 / (1.0 + a * a))
    if nonlinearity == "linear":
        return 1.0
    raise ValueError(f"unsupported nonlinearity: {nonlinearity}")


def kaiming_uniform_(
    tensor: Tensor, a: float = 0.0, mode: str = "fan_in", nonlinearity: str = "leaky_relu"
) -> Tensor:
    """He-uniform initialization (PyTorch's conv/linear default)."""
    fan_in, fan_out = calculate_fan(tensor)
    fan = fan_in if mode == "fan_in" else fan_out
    gain = _kaiming_gain(a, nonlinearity)
    bound = gain * math.sqrt(3.0 / fan)
    return uniform_(tensor, -bound, bound)


def kaiming_normal_(
    tensor: Tensor, a: float = 0.0, mode: str = "fan_out", nonlinearity: str = "relu"
) -> Tensor:
    """He-normal initialization (ResNet-style)."""
    fan_in, fan_out = calculate_fan(tensor)
    fan = fan_in if mode == "fan_in" else fan_out
    gain = _kaiming_gain(a, nonlinearity)
    return normal_(tensor, 0.0, gain / math.sqrt(fan))


def xavier_uniform_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    """Glorot-uniform initialization."""
    fan_in, fan_out = calculate_fan(tensor)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return uniform_(tensor, -bound, bound)


def xavier_normal_(tensor: Tensor, gain: float = 1.0) -> Tensor:
    fan_in, fan_out = calculate_fan(tensor)
    return normal_(tensor, 0.0, gain * math.sqrt(2.0 / (fan_in + fan_out)))
