"""Deterministic binary serialization for model and optimizer state.

Stands in for ``torch.save``/``torch.load``.  The format is a JSON header
describing an arbitrary JSON-compatible tree whose leaves may be numpy
arrays, followed by the raw array bytes:

    ``b"RNNS1\\n" | u64 header_len | header JSON (utf-8) | array payloads``

The encoding is byte-for-byte deterministic for equal inputs (sorted-key
JSON, arrays emitted in traversal order), which makes serialized size and
checksums stable across runs — a property MMlib's storage accounting relies
on.
"""

from __future__ import annotations

import io
import json
import struct
from collections import OrderedDict
from pathlib import Path

import numpy as np

__all__ = ["save", "load", "dumps", "loads"]

_MAGIC = b"RNNS1\n"


def _encode_tree(value, arrays: list[np.ndarray]):
    if isinstance(value, np.ndarray):
        index = len(arrays)
        arrays.append(np.ascontiguousarray(value))
        return {
            "__array__": index,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, np.generic):
        return {"__scalar__": value.item(), "dtype": value.dtype.str}
    if isinstance(value, dict):
        return {
            "__dict__": [[str(k), _encode_tree(v, arrays)] for k, v in value.items()]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_tree(v, arrays) for v in value]}
    if isinstance(value, list):
        return [_encode_tree(v, arrays) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize object of type {type(value).__name__}")


def _decode_tree(value, payload: memoryview, offsets: list[tuple[int, int]]):
    if isinstance(value, dict):
        if "__array__" in value:
            index = value["__array__"]
            start, stop = offsets[index]
            array = np.frombuffer(payload[start:stop], dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__scalar__" in value:
            return np.dtype(value["dtype"]).type(value["__scalar__"])
        if "__dict__" in value:
            return OrderedDict(
                (key, _decode_tree(item, payload, offsets))
                for key, item in value["__dict__"]
            )
        if "__tuple__" in value:
            return tuple(_decode_tree(v, payload, offsets) for v in value["__tuple__"])
        raise ValueError(f"unrecognized serialized node: {sorted(value)}")
    if isinstance(value, list):
        return [_decode_tree(v, payload, offsets) for v in value]
    return value


def dumps(obj) -> bytes:
    """Serialize a tree of arrays/scalars/containers to bytes."""
    arrays: list[np.ndarray] = []
    tree = _encode_tree(obj, arrays)
    offsets = []
    cursor = 0
    for array in arrays:
        offsets.append([cursor, cursor + array.nbytes])
        cursor += array.nbytes
    header = json.dumps({"tree": tree, "offsets": offsets}, sort_keys=True).encode()
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<Q", len(header)))
    buffer.write(header)
    for array in arrays:
        buffer.write(array.tobytes())
    return buffer.getvalue()


def loads(data: bytes):
    """Inverse of :func:`dumps`."""
    if data[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a repro.nn serialized payload (bad magic)")
    cursor = len(_MAGIC)
    (header_len,) = struct.unpack_from("<Q", data, cursor)
    cursor += 8
    header = json.loads(data[cursor : cursor + header_len].decode())
    payload = memoryview(data)[cursor + header_len :]
    offsets = [tuple(pair) for pair in header["offsets"]]
    return _decode_tree(header["tree"], payload, offsets)


def save(obj, path) -> int:
    """Serialize ``obj`` to ``path``; returns the number of bytes written."""
    data = dumps(obj)
    Path(path).write_bytes(data)
    return len(data)


def load(path):
    """Load an object previously written by :func:`save`."""
    return loads(Path(path).read_bytes())
