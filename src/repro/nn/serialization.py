"""Deterministic binary serialization for model and optimizer state.

Stands in for ``torch.save``/``torch.load``.  The format is a JSON header
describing an arbitrary JSON-compatible tree whose leaves may be numpy
arrays, followed by the raw array bytes:

    ``b"RNNS1\\n" | u64 header_len | header JSON (utf-8) | array payloads``

The encoding is byte-for-byte deterministic for equal inputs (sorted-key
JSON, arrays emitted in traversal order), which makes serialized size and
checksums stable across runs — a property MMlib's storage accounting relies
on.

The hot path is zero-copy: :func:`iter_serialized` yields ``memoryview``s
of the arrays' own buffers (already-contiguous arrays are never copied),
:func:`dump_to` streams them straight into a file object, and :func:`load`
reads through an ``mmap`` so each array is copied out of the mapping
exactly once.  :func:`dumps`/:func:`loads` remain thin wrappers over the
same codec, so the byte format is identical on every path.
"""

from __future__ import annotations

import json
import mmap
import struct
from collections import OrderedDict
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = [
    "save",
    "load",
    "dumps",
    "loads",
    "dump_to",
    "iter_serialized",
    "serialized_views",
]

_MAGIC = b"RNNS1\n"


def _as_payload_array(value: np.ndarray) -> np.ndarray:
    """C-contiguous array sharing ``value``'s buffer whenever possible.

    Mirrors ``np.ascontiguousarray`` (ndmin=1), which the codec has always
    used, so payload bytes stay identical: contiguous ndim>=1 arrays are
    returned as-is (zero copy), everything else is materialized once.
    """
    if value.ndim >= 1 and value.flags.c_contiguous:
        return value
    return np.ascontiguousarray(value)


def _encode_tree(value, arrays: list[np.ndarray]):
    if isinstance(value, np.ndarray):
        index = len(arrays)
        arrays.append(_as_payload_array(value))
        return {
            "__array__": index,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
        }
    if isinstance(value, np.generic):
        return {"__scalar__": value.item(), "dtype": value.dtype.str}
    if isinstance(value, dict):
        return {
            "__dict__": [[str(k), _encode_tree(v, arrays)] for k, v in value.items()]
        }
    if isinstance(value, tuple):
        return {"__tuple__": [_encode_tree(v, arrays) for v in value]}
    if isinstance(value, list):
        return [_encode_tree(v, arrays) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot serialize object of type {type(value).__name__}")


def _decode_tree(value, payload: memoryview, offsets: list[tuple[int, int]]):
    if isinstance(value, dict):
        if "__array__" in value:
            index = value["__array__"]
            start, stop = offsets[index]
            array = np.frombuffer(payload[start:stop], dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        if "__scalar__" in value:
            return np.dtype(value["dtype"]).type(value["__scalar__"])
        if "__dict__" in value:
            return OrderedDict(
                (key, _decode_tree(item, payload, offsets))
                for key, item in value["__dict__"]
            )
        if "__tuple__" in value:
            return tuple(_decode_tree(v, payload, offsets) for v in value["__tuple__"])
        raise ValueError(f"unrecognized serialized node: {sorted(value)}")
    if isinstance(value, list):
        return [_decode_tree(v, payload, offsets) for v in value]
    return value


def serialized_views(obj) -> tuple[bytes, list[memoryview]]:
    """Encode ``obj`` as ``(preamble, array_views)`` without copying arrays.

    ``preamble`` is ``magic | u64 header_len | header JSON``; the views are
    the arrays' buffers in traversal order (aliasing the input for
    already-contiguous arrays — do not mutate them while the views are
    live).  Concatenating preamble and views gives exactly the
    :func:`dumps` byte stream.
    """
    arrays: list[np.ndarray] = []
    tree = _encode_tree(obj, arrays)
    offsets = []
    cursor = 0
    for array in arrays:
        offsets.append([cursor, cursor + array.nbytes])
        cursor += array.nbytes
    header = json.dumps({"tree": tree, "offsets": offsets}, sort_keys=True).encode()
    preamble = _MAGIC + struct.pack("<Q", len(header)) + header
    return preamble, [_byte_view(array) for array in arrays]


def _byte_view(array: np.ndarray) -> memoryview:
    """Flat byte view of a C-contiguous array (no copy)."""
    if array.nbytes == 0:  # cast() rejects views with zeros in shape
        return memoryview(b"")
    return memoryview(array).cast("B")


def iter_serialized(obj) -> Iterator[bytes | memoryview]:
    """Yield the serialized byte stream as zero-copy chunks."""
    preamble, views = serialized_views(obj)
    yield preamble
    yield from views


def dumps(obj) -> bytes:
    """Serialize a tree of arrays/scalars/containers to bytes."""
    preamble, views = serialized_views(obj)
    return b"".join([preamble, *views])


def dump_to(obj, fileobj) -> int:
    """Stream ``obj``'s serialization into a writable file object.

    Array buffers are handed to ``fileobj.write`` as ``memoryview``s — no
    ``tobytes()`` and no intermediate whole-payload buffer.  Returns the
    number of bytes written.
    """
    written = 0
    for chunk in iter_serialized(obj):
        fileobj.write(chunk)
        written += len(chunk) if isinstance(chunk, bytes) else chunk.nbytes
    return written


def loads(data):
    """Inverse of :func:`dumps`; accepts any bytes-like buffer (bytes,
    ``memoryview``, ``mmap``)."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view[: len(_MAGIC)] != _MAGIC:
        raise ValueError("not a repro.nn serialized payload (bad magic)")
    cursor = len(_MAGIC)
    if len(view) < cursor + 8:
        raise ValueError("truncated serialized payload (missing header length)")
    (header_len,) = struct.unpack_from("<Q", view, cursor)
    cursor += 8
    if len(view) < cursor + header_len:
        raise ValueError("truncated serialized payload (incomplete header)")
    header = json.loads(bytes(view[cursor : cursor + header_len]).decode())
    payload = view[cursor + header_len :]
    offsets = [tuple(pair) for pair in header["offsets"]]
    if offsets and len(payload) < offsets[-1][1]:
        raise ValueError(
            f"truncated serialized payload: have {len(payload)} payload bytes, "
            f"need {offsets[-1][1]}"
        )
    return _decode_tree(header["tree"], payload, offsets)


def save(obj, path) -> int:
    """Serialize ``obj`` to ``path`` (streaming); returns bytes written."""
    with open(path, "wb") as fileobj:
        return dump_to(obj, fileobj)


def load(path):
    """Load an object previously written by :func:`save`.

    Large files are read through ``mmap``, so decoding copies each array
    out of the page cache individually instead of materializing the whole
    payload as an intermediate ``bytes`` object first.
    """
    with open(path, "rb") as fileobj:
        try:
            mapped = mmap.mmap(fileobj.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file or mmap-hostile filesystem
            return loads(fileobj.read())
        try:
            return loads(mapped)
        finally:
            try:
                mapped.close()
            except BufferError:
                # an in-flight decode error's traceback still pins views
                # into the mapping; it is unmapped once that is collected
                pass
