"""Random-number and determinism management for the ``repro.nn`` substrate.

The paper (Section 2.3) identifies two sources of non-determinism in deep
learning: intentional randomness (weight init, shuffling, dropout) and
floating-point arithmetic whose result depends on the order of reductions.

This module controls both:

* :func:`manual_seed` seeds a process-global :class:`numpy.random.Generator`
  that every intentionally-random operation in the substrate draws from.
* :func:`use_deterministic_algorithms` toggles *deterministic mode*.  In
  deterministic mode, reduction-heavy kernels (convolution and linear
  layers) accumulate partial sums in a fixed, chunked order, which is
  reproducible but slower.  Outside deterministic mode, the kernels perturb
  their results at reduction-rounding scale using an *unseeded* generator,
  which mirrors the run-to-run variation of parallel GPU reductions:
  results are close but generally not bitwise equal.

The unseeded generator is intentionally outside the control of
:func:`manual_seed` — seeding must not accidentally make the
non-deterministic mode reproducible, exactly as seeding PyTorch does not make
non-deterministic CUDA kernels reproducible.
"""

from __future__ import annotations

import contextlib
import threading

import numpy as np

__all__ = [
    "manual_seed",
    "initial_seed",
    "generator",
    "nondet_generator",
    "use_deterministic_algorithms",
    "deterministic_algorithms_enabled",
    "deterministic_mode",
    "get_rng_state",
    "set_rng_state",
    "fork_rng",
    "DEFAULT_DETERMINISTIC_CHUNK",
    "set_deterministic_chunk_size",
    "deterministic_chunk_size",
]

#: Number of reduction elements accumulated per ordered chunk in
#: deterministic mode.  Smaller chunks mean more Python-level iterations and
#: a slower but more "strictly ordered" accumulation; the ablation bench
#: ``bench_ablation_det_chunk`` sweeps this value.
DEFAULT_DETERMINISTIC_CHUNK = 256

_state = threading.local()


def _globals() -> dict:
    if not hasattr(_state, "values"):
        _state.values = {
            "seed": 0,
            "generator": np.random.default_rng(0),
            "nondet": np.random.default_rng(),
            "deterministic": False,
            "det_chunk": DEFAULT_DETERMINISTIC_CHUNK,
        }
    return _state.values


def manual_seed(seed: int) -> np.random.Generator:
    """Seed the substrate's intentional-randomness generator.

    Returns the freshly seeded generator so callers can draw from it
    directly if they need to.
    """
    values = _globals()
    values["seed"] = int(seed)
    values["generator"] = np.random.default_rng(int(seed))
    return values["generator"]


def initial_seed() -> int:
    """Return the seed most recently passed to :func:`manual_seed`."""
    return _globals()["seed"]


def generator() -> np.random.Generator:
    """Return the seeded generator used for intentional randomness."""
    return _globals()["generator"]


def nondet_generator() -> np.random.Generator:
    """Return the unseeded generator that models hardware non-determinism."""
    return _globals()["nondet"]


def use_deterministic_algorithms(enabled: bool) -> None:
    """Globally enable or disable deterministic kernel implementations."""
    _globals()["deterministic"] = bool(enabled)


def deterministic_algorithms_enabled() -> bool:
    """Return ``True`` when deterministic kernels are in force."""
    return _globals()["deterministic"]


def set_deterministic_chunk_size(chunk: int) -> None:
    """Set the ordered-accumulation chunk size used in deterministic mode."""
    if chunk < 1:
        raise ValueError(f"chunk size must be >= 1, got {chunk}")
    _globals()["det_chunk"] = int(chunk)


def deterministic_chunk_size() -> int:
    """Return the current ordered-accumulation chunk size."""
    return _globals()["det_chunk"]


@contextlib.contextmanager
def deterministic_mode(enabled: bool = True):
    """Context manager scoping :func:`use_deterministic_algorithms`."""
    previous = deterministic_algorithms_enabled()
    use_deterministic_algorithms(enabled)
    try:
        yield
    finally:
        use_deterministic_algorithms(previous)


def get_rng_state() -> dict:
    """Snapshot the seeded generator state (for exact training replay)."""
    return {"seed": initial_seed(), "bit_generator": generator().bit_generator.state}


def set_rng_state(state: dict) -> None:
    """Restore a state captured by :func:`get_rng_state`."""
    values = _globals()
    values["seed"] = state["seed"]
    gen = np.random.default_rng(state["seed"])
    gen.bit_generator.state = state["bit_generator"]
    values["generator"] = gen


@contextlib.contextmanager
def fork_rng(seed: int | None = None):
    """Run a block under a temporary RNG state, restoring it afterwards."""
    saved = get_rng_state()
    if seed is not None:
        manual_seed(seed)
    try:
        yield generator()
    finally:
        set_rng_state(saved)
