"""Data augmentation transforms (paper §2.3: intentional randomness).

Random augmentation is one of the randomness sources that must be seeded
for reproducible training.  All random transforms draw from the substrate's
seeded generator, so a pinned seed reproduces the exact augmentation
sequence — which the MPA relies on when replaying training.

Transforms operate on ``(C, H, W)`` float32 arrays (a single sample, as
produced by datasets) and are plain callables, so they can be persisted by
restorable-object wrappers via their constructor arguments.
"""

from __future__ import annotations

import numpy as np

from . import rng

__all__ = [
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "RandomErasing",
    "CenterCrop",
    "TransformedDataset",
]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: list):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Channel-wise standardization: ``(x - mean) / std``."""

    def __init__(self, mean, std):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)
        if np.any(self.std == 0):
            raise ValueError("std must be non-zero")

    def __call__(self, image: np.ndarray) -> np.ndarray:
        return (image - self.mean) / self.std

    def __repr__(self) -> str:
        return f"Normalize(mean={self.mean.ravel().tolist()}, std={self.std.ravel().tolist()})"


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p`` (seeded)."""

    def __init__(self, p: float = 0.5):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be within [0, 1], got {p}")
        self.p = p

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if rng.generator().random() < self.p:
            return image[:, :, ::-1].copy()
        return image

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Pad reflectively by ``padding`` and crop a random ``size``x``size`` patch."""

    def __init__(self, size: int, padding: int = 0):
        self.size = size
        self.padding = padding

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self.padding:
            image = np.pad(
                image,
                ((0, 0), (self.padding, self.padding), (self.padding, self.padding)),
                mode="reflect",
            )
        _, h, w = image.shape
        if h < self.size or w < self.size:
            raise ValueError(f"image {h}x{w} smaller than crop size {self.size}")
        generator = rng.generator()
        top = int(generator.integers(0, h - self.size + 1))
        left = int(generator.integers(0, w - self.size + 1))
        return image[:, top : top + self.size, left : left + self.size].copy()

    def __repr__(self) -> str:
        return f"RandomCrop(size={self.size}, padding={self.padding})"


class RandomErasing:
    """Zero a random rectangle with probability ``p`` (seeded)."""

    def __init__(self, p: float = 0.5, max_fraction: float = 0.25):
        if not 0.0 < max_fraction <= 1.0:
            raise ValueError("max_fraction must be within (0, 1]")
        self.p = p
        self.max_fraction = max_fraction

    def __call__(self, image: np.ndarray) -> np.ndarray:
        generator = rng.generator()
        if generator.random() >= self.p:
            return image
        _, h, w = image.shape
        erase_h = max(1, int(h * self.max_fraction * generator.random()))
        erase_w = max(1, int(w * self.max_fraction * generator.random()))
        top = int(generator.integers(0, h - erase_h + 1))
        left = int(generator.integers(0, w - erase_w + 1))
        out = image.copy()
        out[:, top : top + erase_h, left : left + erase_w] = 0.0
        return out

    def __repr__(self) -> str:
        return f"RandomErasing(p={self.p}, max_fraction={self.max_fraction})"


class CenterCrop:
    """Deterministic central ``size``x``size`` crop."""

    def __init__(self, size: int):
        self.size = size

    def __call__(self, image: np.ndarray) -> np.ndarray:
        _, h, w = image.shape
        if h < self.size or w < self.size:
            raise ValueError(f"image {h}x{w} smaller than crop size {self.size}")
        top = (h - self.size) // 2
        left = (w - self.size) // 2
        return image[:, top : top + self.size, left : left + self.size].copy()

    def __repr__(self) -> str:
        return f"CenterCrop(size={self.size})"


class TransformedDataset:
    """Dataset view applying a transform to each sample's image."""

    def __init__(self, dataset, transform):
        self.dataset = dataset
        self.transform = transform

    def __len__(self) -> int:
        return len(self.dataset)

    def __getitem__(self, index: int):
        item = self.dataset[index]
        if isinstance(item, tuple):
            image, *rest = item
            return (self.transform(image), *rest)
        return self.transform(item)
