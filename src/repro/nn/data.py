"""Datasets and data loading.

The :class:`DataLoader` shuffles with the seeded substrate generator, so the
exact batch order of a training run can be reproduced by restoring the seed —
one of the preconditions for reproducible training (paper Section 2.3).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from . import rng
from .tensor import Tensor

__all__ = ["Dataset", "TensorDataset", "Subset", "DataLoader"]


class Dataset:
    """Abstract map-style dataset."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class TensorDataset(Dataset):
    """Dataset wrapping equally sized arrays (e.g. images and labels)."""

    def __init__(self, *arrays: np.ndarray):
        if not arrays:
            raise ValueError("TensorDataset requires at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        self.arrays = [np.asarray(a) for a in arrays]

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        row = tuple(a[index] for a in self.arrays)
        return row if len(row) > 1 else row[0]


class Subset(Dataset):
    """View over a subset of another dataset."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


def _default_collate(samples: list):
    first = samples[0]
    if isinstance(first, tuple):
        return tuple(_default_collate([s[i] for s in samples]) for i in range(len(first)))
    batch = np.stack([np.asarray(s) for s in samples])
    if np.issubdtype(batch.dtype, np.floating):
        return Tensor(batch.astype(np.float32))
    return Tensor(batch, dtype=batch.dtype)


class DataLoader:
    """Iterates a dataset in (optionally shuffled) batches of tensors."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 1,
        shuffle: bool = False,
        drop_last: bool = False,
        collate_fn=None,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.collate_fn = collate_fn or _default_collate

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            rng.generator().shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                return
            yield self.collate_fn([self.dataset[int(i)] for i in batch_indices])
