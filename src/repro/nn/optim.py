"""Optimizers with serializable internal state.

The MPA (paper Section 3.3) distinguishes *stateless* objects (recoverable
from constructor arguments alone) from objects with *internal state* such as
optimizers.  Both optimizers here therefore expose ``state_dict`` /
``load_state_dict`` so a wrapper can persist them to a state file and restore
them exactly.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .modules import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer tracking parameters and per-parameter state."""

    def __init__(self, params: Iterable[Parameter], defaults: dict):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.defaults = dict(defaults)
        self.state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    def state_dict(self) -> dict:
        """Serializable snapshot: hyper-parameters + per-parameter state."""
        packed = {}
        for index, param in enumerate(self.params):
            entry = self.state.get(id(param))
            if entry is not None:
                packed[str(index)] = {
                    key: value.copy() if isinstance(value, np.ndarray) else value
                    for key, value in entry.items()
                }
        return {"defaults": dict(self.defaults), "state": packed}

    def load_state_dict(self, state: dict) -> None:
        """Restore hyper-parameters and per-parameter state by position."""
        self.defaults.update(state.get("defaults", {}))
        self._apply_defaults()
        self.state = {}
        for index_str, entry in state.get("state", {}).items():
            param = self.params[int(index_str)]
            self.state[id(param)] = {
                key: np.asarray(value).copy() if isinstance(value, (np.ndarray, list)) else value
                for key, value in entry.items()
            }

    def _apply_defaults(self) -> None:
        for key, value in self.defaults.items():
            setattr(self, key, value)


class SGD(Optimizer):
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ):
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        super().__init__(
            params,
            {"lr": lr, "momentum": momentum, "weight_decay": weight_decay, "nesterov": nesterov},
        )
        self._apply_defaults()

    def step(self) -> None:
        for param in self.params:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                entry = self.state.setdefault(id(param), {})
                buf = entry.get("momentum_buffer")
                if buf is None:
                    buf = grad.astype(param.data.dtype).copy()
                else:
                    buf *= self.momentum
                    buf += grad
                entry["momentum_buffer"] = buf
                grad = grad + self.momentum * buf if self.nesterov else buf
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"invalid learning rate: {lr}")
        super().__init__(
            params,
            {"lr": lr, "betas": tuple(betas), "eps": eps, "weight_decay": weight_decay},
        )
        self._apply_defaults()

    def step(self) -> None:
        beta1, beta2 = self.betas
        for param in self.params:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            entry = self.state.setdefault(
                id(param),
                {
                    "step": 0,
                    "exp_avg": np.zeros_like(param.data),
                    "exp_avg_sq": np.zeros_like(param.data),
                },
            )
            entry["step"] = int(entry["step"]) + 1
            entry["exp_avg"] = beta1 * entry["exp_avg"] + (1 - beta1) * grad
            entry["exp_avg_sq"] = beta2 * entry["exp_avg_sq"] + (1 - beta2) * grad * grad
            step = entry["step"]
            corrected_avg = entry["exp_avg"] / (1 - beta1**step)
            corrected_sq = entry["exp_avg_sq"] / (1 - beta2**step)
            param.data = param.data - self.lr * corrected_avg / (
                np.sqrt(corrected_sq) + self.eps
            )
