"""Learning-rate schedulers with serializable state.

Schedulers are *parametrized objects with internal state* in the paper's
Section 3.3 taxonomy: their constructor arguments alone do not recover the
current step count, so MPA wrappers persist them through ``state_dict`` /
``load_state_dict`` state files like optimizers.
"""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "ExponentialLR"]


class LRScheduler:
    """Base scheduler: tracks epochs and drives the optimizer's ``lr``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = float(optimizer.lr)
        self.last_epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch; returns the new learning rate."""
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        self.optimizer.defaults["lr"] = new_lr
        return new_lr

    def state_dict(self) -> dict:
        return {"base_lr": self.base_lr, "last_epoch": self.last_epoch}

    def load_state_dict(self, state: dict) -> None:
        """Restore the schedule position and re-apply the current rate."""
        self.base_lr = state["base_lr"]
        self.last_epoch = state["last_epoch"]
        if self.last_epoch > 0:
            new_lr = self.get_lr()
            self.optimizer.lr = new_lr
            self.optimizer.defaults["lr"] = new_lr


class StepLR(LRScheduler):
    """Decay by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class ExponentialLR(LRScheduler):
    """Decay by ``gamma`` every epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float):
        super().__init__(optimizer)
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.last_epoch


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        super().__init__(optimizer)
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + (self.base_lr - self.eta_min) * (
            1 + math.cos(math.pi * progress)
        ) / 2
