"""Testing utilities for the substrate: numerical gradient checking.

A public ``gradcheck`` lets downstream users verify custom ops the same way
this repository's own test suite verifies the built-in kernels.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from . import rng
from .tensor import Tensor

__all__ = ["numeric_gradient", "gradcheck", "GradcheckError"]


class GradcheckError(AssertionError):
    """Raised when analytic and numeric gradients disagree."""


def numeric_gradient(
    fn: Callable[[], float], tensor: Tensor, eps: float = 1e-3
) -> np.ndarray:
    """Central-difference gradient of a scalar function wrt ``tensor``.

    ``fn`` must recompute the scalar from the tensor's *current* data on
    every call; this function perturbs entries in place and restores them.
    """
    grad = np.zeros_like(tensor.data, dtype=np.float64)
    iterator = np.nditer(tensor.data, flags=["multi_index"])
    for _ in iterator:
        index = iterator.multi_index
        original = tensor.data[index]
        tensor.data[index] = original + eps
        upper = float(fn())
        tensor.data[index] = original - eps
        lower = float(fn())
        tensor.data[index] = original
        grad[index] = (upper - lower) / (2 * eps)
    return grad


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-3,
    atol: float = 1e-2,
    rtol: float = 5e-2,
) -> bool:
    """Verify ``fn``'s analytic gradients against central differences.

    ``fn`` maps the given tensors to a single output tensor; the check
    reduces it with ``sum`` and compares each grad-requiring input's
    backward gradient to the numeric one.  Runs under deterministic
    kernels so the two evaluations see identical arithmetic.  Raises
    :class:`GradcheckError` with the offending input's index on mismatch.
    """
    with rng.deterministic_mode(True):
        for tensor in inputs:
            tensor.grad = None
        output = fn(*inputs)
        if not isinstance(output, Tensor):
            raise TypeError(f"fn must return a Tensor, got {type(output).__name__}")
        output.sum().backward()

        for position, tensor in enumerate(inputs):
            if not tensor.requires_grad:
                continue
            if tensor.grad is None:
                raise GradcheckError(
                    f"input #{position} requires grad but received none"
                )

            def scalar() -> float:
                return float(fn(*inputs).data.sum())

            numeric = numeric_gradient(scalar, tensor, eps=eps)
            if not np.allclose(tensor.grad, numeric, atol=atol, rtol=rtol):
                worst = np.abs(tensor.grad - numeric).max()
                raise GradcheckError(
                    f"gradient mismatch on input #{position}: "
                    f"max abs error {worst:.3e} (atol={atol}, rtol={rtol})"
                )
    return True
