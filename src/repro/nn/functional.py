"""Neural-network kernels: convolution, pooling, normalization, losses.

Reduction-heavy kernels (convolution and linear layers) honour the global
determinism switch from :mod:`repro.nn.rng`:

* **non-deterministic mode** (default) — one fused matmul whose result is
  perturbed at reduction-rounding scale (O(sqrt(K)) ulps) by an unseeded
  generator.  This mirrors atomically-reduced GPU kernels: fast, and
  numerically close but bitwise different between runs.
* **deterministic mode** — partial sums are accumulated over the reduction
  dimension in a fixed, chunked order.  Bitwise reproducible at a modest
  overhead.

The ``kernel_impl="legacy"`` convolution variant models layers for which
the framework only ships a much slower deterministic implementation (the
paper's explanation for ResNet-18's outsized deterministic-training
slowdown, Section 4.5): its only deterministic path is a non-fused float64
fallback with tiny ordered chunks.
"""

from __future__ import annotations

import numpy as np

from . import rng
from .autograd import GraphNode
from .tensor import Tensor

__all__ = [
    "reduced_matmul",
    "linear",
    "conv2d",
    "batch_norm",
    "max_pool2d",
    "avg_pool2d",
    "adaptive_avg_pool2d",
    "relu",
    "relu6",
    "sigmoid",
    "tanh",
    "gelu",
    "layer_norm",
    "dropout",
    "log_softmax",
    "softmax",
    "nll_loss",
    "cross_entropy",
    "mse_loss",
    "binary_cross_entropy_with_logits",
]

#: Deterministic-chunk divisor applied by the "legacy" convolution kernel.
LEGACY_KERNEL_CHUNK_DIVISOR = 64


def _det_chunk(kernel_impl: str = "standard") -> int:
    chunk = rng.deterministic_chunk_size()
    if kernel_impl == "legacy":
        chunk = max(1, chunk // LEGACY_KERNEL_CHUNK_DIVISOR)
    return chunk


#: float32 unit roundoff; reduction-order noise scales with sqrt(K) ulps.
_FLOAT32_EPS = np.float32(2.0**-24)


def _reduction_jitter(out: np.ndarray, k: int) -> np.ndarray:
    """Apply the rounding-scale perturbation of an arbitrary-order reduction.

    A parallel float32 reduction over ``k`` elements differs from the
    serial one by O(sqrt(k)) ulps.  The perturbation is drawn from the
    *unseeded* generator, so repeated calls produce bitwise-different but
    numerically equivalent results — exactly the observable behaviour of
    non-deterministic GPU kernels.
    """
    scale = _FLOAT32_EPS * np.sqrt(np.float32(max(k, 1)))
    shift = np.float32(rng.nondet_generator().standard_normal()) * scale
    out *= np.float32(1.0) + shift
    return out


def reduced_matmul(a: np.ndarray, b: np.ndarray, kernel_impl: str = "standard") -> np.ndarray:
    """``a @ b`` with determinism-aware reduction over the shared dimension.

    ``a`` has shape ``(M, K)`` and ``b`` has shape ``(K, N)``.  This is the
    single primitive through which every heavy reduction in the substrate is
    routed, so flipping the determinism switch changes behaviour everywhere
    consistently.

    * **non-deterministic** (default): one fused matmul whose result is
      perturbed at reduction-rounding scale by the unseeded generator —
      fast, but bitwise different on every call, like atomically-reduced
      GPU kernels.
    * **deterministic, standard kernels**: fixed-order chunked
      accumulation — bitwise reproducible at a modest overhead.
    * **deterministic, legacy kernels**: the only deterministic
      implementation available is a non-fused float64 fallback with tiny
      ordered chunks — reproducible but several times slower (the source of
      ResNet-18's outsized deterministic slowdown, paper Section 4.5).
    """
    k = a.shape[-1]
    if not rng.deterministic_algorithms_enabled():
        return _reduction_jitter(a @ b, k)
    chunk = _det_chunk(kernel_impl)
    if kernel_impl == "legacy":
        out_dtype = a.dtype
        a = a.astype(np.float64)
        b = b.astype(np.float64)
        out = a[..., :chunk] @ b[:chunk]
        for start in range(chunk, k, chunk):
            stop = min(start + chunk, k)
            out += a[..., start:stop] @ b[start:stop]
        return out.astype(out_dtype)
    if k <= chunk:
        return a @ b
    out = a[..., :chunk] @ b[:chunk]
    for start in range(chunk, k, chunk):
        stop = min(start + chunk, k)
        out += a[..., start:stop] @ b[start:stop]
    return out


# ---------------------------------------------------------------------------
# linear
# ---------------------------------------------------------------------------


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with shape ``(N, in) -> (N, out)``."""
    out_data = reduced_matmul(x.data, weight.data.T)
    if bias is not None:
        out_data = out_data + bias.data

    inputs = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(g):
        grad_x = g @ weight.data
        grad_w = reduced_matmul(g.T, x.data)
        if bias is None:
            return (grad_x, grad_w)
        return (grad_x, grad_w, g.sum(axis=0))

    node = GraphNode(inputs=inputs, backward_fn=backward_fn, name="linear")
    return Tensor._from_op(out_data, node)


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def _im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Extract sliding windows: ``(N, C, H, W) -> (N, C, OH, OW, kh, kw)``."""
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    return windows[:, :, ::stride, ::stride]


def _col2im(
    grad_cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Fold window gradients back to the (padded) input gradient."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    grad_padded = np.zeros((n, c, hp, wp), dtype=grad_cols.dtype)
    oh, ow = grad_cols.shape[2], grad_cols.shape[3]
    for i in range(kh):
        for j in range(kw):
            grad_padded[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ] += grad_cols[:, :, :, :, i, j]
    if padding:
        return grad_padded[:, :, padding:-padding, padding:-padding]
    return grad_padded


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    kernel_impl: str = "standard",
) -> Tensor:
    """2D convolution over ``(N, C, H, W)`` inputs.

    ``groups=1`` (dense) and ``groups == in_channels`` (depthwise) are fully
    vectorized; other group counts fall back to a per-group loop.
    """
    n, c, h, w = x.shape
    out_channels, c_per_group, kh, kw = weight.shape
    if c % groups or out_channels % groups:
        raise ValueError(
            f"channels ({c} in / {out_channels} out) not divisible by groups={groups}"
        )
    if c_per_group != c // groups:
        raise ValueError(
            f"weight expects {c_per_group} channels/group but input provides {c // groups}"
        )

    x_data = np.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    cols = _im2col(x_data, kh, kw, stride)  # (N, C, OH, OW, kh, kw)
    oh, ow = cols.shape[2], cols.shape[3]

    if groups == 1:
        flat = np.ascontiguousarray(cols.transpose(0, 2, 3, 1, 4, 5)).reshape(
            n * oh * ow, c * kh * kw
        )
        w_flat = weight.data.reshape(out_channels, c * kh * kw).T
        out = reduced_matmul(flat, w_flat, kernel_impl)
        out_data = out.reshape(n, oh, ow, out_channels).transpose(0, 3, 1, 2)
    elif groups == c and c_per_group == 1:
        multiplier = out_channels // c
        w_dw = weight.data.reshape(c, multiplier, kh, kw)
        out_data = np.einsum("ncxykl,cmkl->ncmxy", cols, w_dw, optimize=True)
        out_data = out_data.reshape(n, out_channels, oh, ow)
        if not rng.deterministic_algorithms_enabled():
            # depthwise reductions are tiny (kh*kw elements) but still
            # subject to arbitrary-order rounding
            out_data = _reduction_jitter(np.ascontiguousarray(out_data), kh * kw)
    else:
        group_outputs = []
        cg, og = c // groups, out_channels // groups
        for g_idx in range(groups):
            cols_g = cols[:, g_idx * cg : (g_idx + 1) * cg]
            flat = np.ascontiguousarray(cols_g.transpose(0, 2, 3, 1, 4, 5)).reshape(
                n * oh * ow, cg * kh * kw
            )
            w_flat = (
                weight.data[g_idx * og : (g_idx + 1) * og]
                .reshape(og, cg * kh * kw)
                .T
            )
            out = reduced_matmul(flat, w_flat, kernel_impl)
            group_outputs.append(out.reshape(n, oh, ow, og).transpose(0, 3, 1, 2))
        out_data = np.concatenate(group_outputs, axis=1)

    out_data = np.ascontiguousarray(out_data, dtype=x.data.dtype)
    if bias is not None:
        out_data += bias.data.reshape(1, -1, 1, 1)

    inputs = (x, weight) if bias is None else (x, weight, bias)

    def backward_fn(g):
        g = np.ascontiguousarray(g, dtype=x.data.dtype)
        if groups == 1:
            g_flat = g.transpose(0, 2, 3, 1).reshape(n * oh * ow, out_channels)
            flat = np.ascontiguousarray(cols.transpose(0, 2, 3, 1, 4, 5)).reshape(
                n * oh * ow, c * kh * kw
            )
            grad_w = reduced_matmul(g_flat.T, flat, kernel_impl).reshape(weight.shape)
            grad_cols_flat = reduced_matmul(
                g_flat, weight.data.reshape(out_channels, c * kh * kw), kernel_impl
            )
            grad_cols = grad_cols_flat.reshape(n, oh, ow, c, kh, kw).transpose(
                0, 3, 1, 2, 4, 5
            )
        elif groups == c and c_per_group == 1:
            multiplier = out_channels // c
            g_dw = g.reshape(n, c, multiplier, oh, ow)
            w_dw = weight.data.reshape(c, multiplier, kh, kw)
            grad_w = np.einsum("ncmxy,ncxykl->cmkl", g_dw, cols, optimize=True)
            grad_w = grad_w.reshape(weight.shape)
            grad_cols = np.einsum("ncmxy,cmkl->ncxykl", g_dw, w_dw, optimize=True)
        else:
            cg, og = c // groups, out_channels // groups
            grad_w = np.empty_like(weight.data)
            grad_cols = np.empty_like(cols)
            for g_idx in range(groups):
                g_g = g[:, g_idx * og : (g_idx + 1) * og]
                g_flat = g_g.transpose(0, 2, 3, 1).reshape(n * oh * ow, og)
                cols_g = cols[:, g_idx * cg : (g_idx + 1) * cg]
                flat = np.ascontiguousarray(
                    cols_g.transpose(0, 2, 3, 1, 4, 5)
                ).reshape(n * oh * ow, cg * kh * kw)
                grad_w[g_idx * og : (g_idx + 1) * og] = reduced_matmul(
                    g_flat.T, flat, kernel_impl
                ).reshape(og, cg, kh, kw)
                w_flat = weight.data[g_idx * og : (g_idx + 1) * og].reshape(
                    og, cg * kh * kw
                )
                grad_cols[:, g_idx * cg : (g_idx + 1) * cg] = (
                    (g_flat @ w_flat)
                    .reshape(n, oh, ow, cg, kh, kw)
                    .transpose(0, 3, 1, 2, 4, 5)
                )
        grad_x = _col2im(grad_cols, x.shape, kh, kw, stride, padding)
        if bias is None:
            return (grad_x, grad_w.astype(weight.data.dtype))
        return (grad_x, grad_w.astype(weight.data.dtype), g.sum(axis=(0, 2, 3)))

    node = GraphNode(inputs=inputs, backward_fn=backward_fn, name="conv2d")
    return Tensor._from_op(out_data, node)


# ---------------------------------------------------------------------------
# normalization
# ---------------------------------------------------------------------------


def batch_norm(
    x: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    weight: Tensor | None,
    bias: Tensor | None,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over the channel dimension of ``(N, C, H, W)``.

    Built from differentiable tensor ops, so the backward pass comes from
    autograd.  Running statistics are updated in-place when ``training``.
    """
    axes = (0, 2, 3) if x.ndim == 4 else (0,)
    if training:
        mean = x.mean(axis=axes, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=axes, keepdims=True)
        batch_count = int(np.prod([x.shape[a] for a in axes]))
        unbiased = var.data * batch_count / max(1, batch_count - 1)
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean.data.reshape(-1)
        running_var *= 1.0 - momentum
        running_var += momentum * unbiased.reshape(-1)
        x_hat = centered * ((var + eps) ** -0.5)
    else:
        shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
        mean = Tensor(running_mean.reshape(shape))
        var = Tensor(running_var.reshape(shape))
        x_hat = (x - mean) * ((var + eps) ** -0.5)
    if weight is not None:
        shape = (1, -1, 1, 1) if x.ndim == 4 else (1, -1)
        x_hat = x_hat * weight.reshape(shape) + bias.reshape(shape)
    return x_hat


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def max_pool2d(x: Tensor, kernel_size: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Max pooling; gradient flows to the argmax of each window."""
    stride = stride or kernel_size
    kh = kw = kernel_size
    x_data = x.data
    if padding:
        x_data = np.pad(
            x_data,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            constant_values=-np.inf,
        )
    cols = _im2col(x_data, kh, kw, stride)
    n, c, oh, ow = cols.shape[:4]
    flat = cols.reshape(n, c, oh, ow, kh * kw)
    arg = flat.argmax(axis=-1)
    out_data = np.take_along_axis(flat, arg[..., None], axis=-1)[..., 0]
    out_data = np.ascontiguousarray(out_data, dtype=x.data.dtype)

    def backward_fn(g):
        grad_cols = np.zeros_like(flat)
        np.put_along_axis(grad_cols, arg[..., None], g[..., None], axis=-1)
        grad_cols = grad_cols.reshape(n, c, oh, ow, kh, kw)
        return (_col2im(grad_cols, x.shape, kh, kw, stride, padding),)

    node = GraphNode(inputs=(x,), backward_fn=backward_fn, name="max_pool2d")
    return Tensor._from_op(out_data, node)


def avg_pool2d(x: Tensor, kernel_size: int, stride: int | None = None, padding: int = 0) -> Tensor:
    """Average pooling with uniform gradient distribution."""
    stride = stride or kernel_size
    kh = kw = kernel_size
    x_data = np.pad(
        x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding))
    )
    cols = _im2col(x_data, kh, kw, stride)
    out_data = cols.mean(axis=(-1, -2)).astype(x.data.dtype)

    def backward_fn(g):
        grad_cols = np.broadcast_to(
            g[..., None, None] / (kh * kw), g.shape + (kh, kw)
        ).astype(x.data.dtype)
        return (_col2im(grad_cols, x.shape, kh, kw, stride, padding),)

    node = GraphNode(inputs=(x,), backward_fn=backward_fn, name="avg_pool2d")
    return Tensor._from_op(out_data, node)


def adaptive_avg_pool2d(x: Tensor, output_size: int | tuple[int, int]) -> Tensor:
    """Adaptive average pooling to a fixed output grid (PyTorch semantics)."""
    if isinstance(output_size, int):
        out_h = out_w = output_size
    else:
        out_h, out_w = output_size
    n, c, h, w = x.shape
    if out_h == 1 and out_w == 1:
        return x.mean(axis=(2, 3), keepdims=True)
    if h % out_h == 0 and w % out_w == 0 and h // out_h == w // out_w:
        return avg_pool2d(x, kernel_size=h // out_h, stride=h // out_h)
    rows = [x[:, :, (i * h) // out_h : -(-(i + 1) * h // out_h), :] for i in range(out_h)]
    pooled_rows = []
    for row in rows:
        cells = [
            row[:, :, :, (j * w) // out_w : -(-(j + 1) * w // out_w)].mean(
                axis=(2, 3), keepdims=True
            )
            for j in range(out_w)
        ]
        from .tensor import cat

        pooled_rows.append(cat(cells, dim=3))
    from .tensor import cat

    return cat(pooled_rows, dim=2)


# ---------------------------------------------------------------------------
# activations & regularization
# ---------------------------------------------------------------------------


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit; gradient masked at non-positive inputs."""
    mask = x.data > 0
    node = GraphNode(inputs=(x,), backward_fn=lambda g: (g * mask,), name="relu")
    return Tensor._from_op(x.data * mask, node)


def sigmoid(x: Tensor) -> Tensor:
    """Numerically stable logistic function."""
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, 0, None))),
        np.exp(np.clip(x.data, None, 0)) / (1.0 + np.exp(np.clip(x.data, None, 0))),
    ).astype(x.data.dtype)
    node = GraphNode(
        inputs=(x,), backward_fn=lambda g: (g * data * (1.0 - data),), name="sigmoid"
    )
    return Tensor._from_op(data, node)


def tanh(x: Tensor) -> Tensor:
    """Hyperbolic tangent."""
    data = np.tanh(x.data)
    node = GraphNode(
        inputs=(x,), backward_fn=lambda g: (g * (1.0 - data * data),), name="tanh"
    )
    return Tensor._from_op(data, node)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as in BERT/GPT)."""
    c = np.float32(np.sqrt(2.0 / np.pi))
    inner = c * (x.data + 0.044715 * x.data**3)
    tanh_inner = np.tanh(inner)
    data = (0.5 * x.data * (1.0 + tanh_inner)).astype(x.data.dtype)

    def backward_fn(g):
        sech2 = 1.0 - tanh_inner * tanh_inner
        d_inner = c * (1.0 + 3 * 0.044715 * x.data**2)
        grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x.data * sech2 * d_inner
        return (g * grad.astype(x.data.dtype),)

    node = GraphNode(inputs=(x,), backward_fn=backward_fn, name="gelu")
    return Tensor._from_op(data, node)


def layer_norm(
    x: Tensor,
    weight: Tensor | None = None,
    bias: Tensor | None = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalization over the last dimension.

    Built from differentiable tensor ops (backward via autograd), like
    :func:`batch_norm`; statistics are per-sample, so no running buffers.
    """
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * ((variance + eps) ** -0.5)
    if weight is not None:
        normalized = normalized * weight
    if bias is not None:
        normalized = normalized + bias
    return normalized


def relu6(x: Tensor) -> Tensor:
    """ReLU clipped at 6."""
    data = np.clip(x.data, 0.0, 6.0)
    mask = (x.data > 0) & (x.data < 6.0)
    node = GraphNode(inputs=(x,), backward_fn=lambda g: (g * mask,), name="relu6")
    return Tensor._from_op(data, node)


def dropout(x: Tensor, p: float, training: bool, generator=None) -> Tensor:
    """Inverted dropout driven by the seeded generator (reproducible)."""
    if not training or p == 0.0:
        return x
    gen = generator if generator is not None else rng.generator()
    mask = (gen.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    node = GraphNode(inputs=(x,), backward_fn=lambda g: (g * mask,), name="dropout")
    return Tensor._from_op(x.data * mask, node)


# ---------------------------------------------------------------------------
# losses
# ---------------------------------------------------------------------------


def log_softmax(x: Tensor, dim: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``dim``."""
    shifted = x.data - x.data.max(axis=dim, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=dim, keepdims=True))
    out_data = shifted - log_sum
    softmax_data = np.exp(out_data)

    def backward_fn(g):
        return (g - softmax_data * g.sum(axis=dim, keepdims=True),)

    node = GraphNode(inputs=(x,), backward_fn=backward_fn, name="log_softmax")
    return Tensor._from_op(out_data.astype(x.data.dtype), node)


def softmax(x: Tensor, dim: int = -1) -> Tensor:
    return log_softmax(x, dim=dim).exp()


def nll_loss(log_probs: Tensor, target) -> Tensor:
    """Negative log likelihood over ``(N, classes)`` log-probabilities."""
    target = np.asarray(target.data if isinstance(target, Tensor) else target, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs.data[np.arange(n), target]
    loss = -picked.mean()

    def backward_fn(g):
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), target] = -1.0 / n
        return (grad * g,)

    node = GraphNode(inputs=(log_probs,), backward_fn=backward_fn, name="nll_loss")
    return Tensor._from_op(np.asarray(loss, dtype=log_probs.dtype), node)


def cross_entropy(logits: Tensor, target) -> Tensor:
    """Softmax cross-entropy over ``(N, classes)`` logits."""
    return nll_loss(log_softmax(logits, dim=-1), target)


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    diff = prediction - (target if isinstance(target, Tensor) else Tensor(target))
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, target) -> Tensor:
    """Numerically stable sigmoid + binary cross entropy.

    Uses ``max(z, 0) - z*y + log(1 + exp(-|z|))``, the standard stable form.
    """
    target_data = np.asarray(
        target.data if isinstance(target, Tensor) else target, dtype=logits.data.dtype
    )
    z = logits.data
    loss = np.maximum(z, 0) - z * target_data + np.log1p(np.exp(-np.abs(z)))
    count = loss.size

    def backward_fn(g):
        probability = np.where(
            z >= 0,
            1.0 / (1.0 + np.exp(-np.clip(z, 0, None))),
            np.exp(np.clip(z, None, 0)) / (1.0 + np.exp(np.clip(z, None, 0))),
        )
        return ((probability - target_data).astype(z.dtype) * g / count,)

    node = GraphNode(inputs=(logits,), backward_fn=backward_fn, name="bce_logits")
    return Tensor._from_op(np.asarray(loss.mean(), dtype=logits.dtype), node)
