"""``repro.nn`` — a numpy-based deep-learning substrate.

A from-scratch stand-in for the PyTorch subset that MMlib (EDBT 2022)
depends on: autograd tensors, convolutional network modules with state
dicts, stateful optimizers, data loading, deterministic serialization, and
seeded/deterministic execution control.
"""

from . import functional, init, models, optim, rng, schedulers, serialization, testing, transforms
from .autograd import enable_grad, is_grad_enabled, no_grad
from .data import DataLoader, Dataset, Subset, TensorDataset
from .embedding import Embedding, embedding
from .modules import (
    AdaptiveAvgPool2d,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    LegacyDropout,
    Linear,
    MaxPool2d,
    Module,
    ModuleList,
    Parameter,
    ReLU,
    ReLU6,
    Sequential,
)
from .optim import SGD, Adam, Optimizer
from .rng import (
    deterministic_algorithms_enabled,
    deterministic_mode,
    fork_rng,
    manual_seed,
    use_deterministic_algorithms,
)
from .tensor import Tensor, arange, cat, ones, randn, stack, tensor, zeros

__all__ = [
    "functional",
    "schedulers",
    "testing",
    "transforms",
    "init",
    "models",
    "optim",
    "rng",
    "serialization",
    "enable_grad",
    "is_grad_enabled",
    "no_grad",
    "DataLoader",
    "Dataset",
    "Embedding",
    "embedding",
    "Subset",
    "TensorDataset",
    "AdaptiveAvgPool2d",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "Identity",
    "LayerNorm",
    "LegacyDropout",
    "Linear",
    "MaxPool2d",
    "Module",
    "ModuleList",
    "Parameter",
    "ReLU",
    "ReLU6",
    "Sequential",
    "SGD",
    "Adam",
    "Optimizer",
    "deterministic_algorithms_enabled",
    "deterministic_mode",
    "fork_rng",
    "manual_seed",
    "use_deterministic_algorithms",
    "Tensor",
    "arange",
    "cat",
    "ones",
    "randn",
    "stack",
    "tensor",
    "zeros",
]
