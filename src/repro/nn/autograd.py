"""Autograd bookkeeping: gradient-mode switches and the backward pass.

The substrate implements reverse-mode automatic differentiation.  Every
differentiable operation records a small *node* on its output tensor holding
references to the input tensors and a backward closure.  Calling
:meth:`repro.nn.Tensor.backward` topologically sorts the recorded graph and
propagates gradients from the output back to every leaf that requires them.
"""

from __future__ import annotations

import contextlib
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .tensor import Tensor

__all__ = ["no_grad", "enable_grad", "is_grad_enabled", "GraphNode", "backward"]

_grad_state = threading.local()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return getattr(_grad_state, "enabled", True)


def _set_grad_enabled(enabled: bool) -> None:
    _grad_state.enabled = enabled


@contextlib.contextmanager
def no_grad():
    """Disable graph recording inside the block (inference / bookkeeping)."""
    previous = is_grad_enabled()
    _set_grad_enabled(False)
    try:
        yield
    finally:
        _set_grad_enabled(previous)


@contextlib.contextmanager
def enable_grad():
    """Re-enable graph recording inside a :func:`no_grad` block."""
    previous = is_grad_enabled()
    _set_grad_enabled(True)
    try:
        yield
    finally:
        _set_grad_enabled(previous)


@dataclass
class GraphNode:
    """One recorded operation in the autograd graph.

    ``backward_fn`` maps the gradient flowing into the op's output to a tuple
    of gradients, one per entry of ``inputs`` (``None`` for inputs that do
    not require grad).
    """

    inputs: Sequence["Tensor"]
    backward_fn: Callable[[np.ndarray], Sequence[np.ndarray | None]]
    name: str = "op"
    saved: dict = field(default_factory=dict)


def _topological_order(root: "Tensor") -> list["Tensor"]:
    order: list["Tensor"] = []
    visited: set[int] = set()
    stack: list[tuple["Tensor", bool]] = [(root, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        if tensor._node is not None:
            for parent in tensor._node.inputs:
                if id(parent) not in visited:
                    stack.append((parent, False))
    return order


def backward(root: "Tensor", grad: np.ndarray) -> None:
    """Run reverse-mode differentiation from ``root`` with seed ``grad``."""
    grads: dict[int, np.ndarray] = {id(root): grad}
    for tensor in reversed(_topological_order(root)):
        tensor_grad = grads.pop(id(tensor), None)
        if tensor_grad is None:
            continue
        if tensor.requires_grad and tensor._node is None:
            # Leaf tensor: accumulate into .grad like PyTorch does.
            if tensor.grad is None:
                tensor.grad = tensor_grad.copy()
            else:
                tensor.grad += tensor_grad
            continue
        node = tensor._node
        if node is None:
            continue
        input_grads = node.backward_fn(tensor_grad)
        if len(input_grads) != len(node.inputs):
            raise RuntimeError(
                f"backward of {node.name} returned {len(input_grads)} grads "
                f"for {len(node.inputs)} inputs"
            )
        for parent, parent_grad in zip(node.inputs, input_grads):
            if parent_grad is None:
                continue
            if not parent.requires_grad_through():
                continue
            existing = grads.get(id(parent))
            if existing is None:
                grads[id(parent)] = parent_grad
            else:
                grads[id(parent)] = existing + parent_grad
