"""The :class:`Tensor` type: a numpy array with reverse-mode autograd.

Only the functionality the substrate needs is implemented, but the API
mirrors PyTorch closely (``requires_grad``, ``backward``, ``detach``,
``no_grad`` interplay) so that MMlib's code reads like the original.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from . import autograd
from .autograd import GraphNode, is_grad_enabled

__all__ = ["Tensor", "tensor", "zeros", "ones", "randn", "arange", "cat", "stack"]

_DEFAULT_DTYPE = np.float32


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multi-dimensional array participating in the autograd graph."""

    __slots__ = ("data", "grad", "requires_grad", "_node")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, dtype=None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype or _DEFAULT_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._node: GraphNode | None = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def _from_op(cls, data: np.ndarray, node: GraphNode) -> "Tensor":
        out = cls.__new__(cls)
        out.data = data
        out.grad = None
        out._node = None
        out.requires_grad = False
        if is_grad_enabled() and any(p.requires_grad_through() for p in node.inputs):
            out._node = node
            out.requires_grad = True
        return out

    def requires_grad_through(self) -> bool:
        """True if gradients must flow into or through this tensor."""
        return self.requires_grad or self._node is not None

    # -- basic properties ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def size(self) -> int:
        return self.data.size

    def numel(self) -> int:
        return self.data.size

    def item(self) -> float:
        return self.data.item()

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared memory, like torch .numpy())."""
        return self.data

    def tolist(self):
        return self.data.tolist()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_note = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_note})"

    # -- gradient control -------------------------------------------------------

    def detach(self) -> "Tensor":
        """Return a view sharing data but cut from the graph."""
        out = Tensor.__new__(Tensor)
        out.data = self.data
        out.grad = None
        out.requires_grad = False
        out._node = None
        return out

    def clone(self) -> "Tensor":
        """Differentiable copy."""
        node = GraphNode(inputs=(self,), backward_fn=lambda g: (g,), name="clone")
        return Tensor._from_op(self.data.copy(), node)

    def requires_grad_(self, flag: bool = True) -> "Tensor":
        self.requires_grad = flag
        return self

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad=None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (and must be omitted only for scalars, as
        in PyTorch).
        """
        if not self.requires_grad_through():
            raise RuntimeError("tensor does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar tensors")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
        autograd.backward(self, grad)

    # -- elementwise arithmetic ---------------------------------------------------

    def _binary(self, other, forward, backward_fn, name: str) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = forward(self.data, other.data)
        node = GraphNode(inputs=(self, other), backward_fn=backward_fn(self, other), name=name)
        return Tensor._from_op(data, node)

    def __add__(self, other) -> "Tensor":
        def make(a: "Tensor", b: "Tensor"):
            return lambda g: (_unbroadcast(g, a.shape), _unbroadcast(g, b.shape))

        return self._binary(other, np.add, make, "add")

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        def make(a: "Tensor", b: "Tensor"):
            return lambda g: (_unbroadcast(g, a.shape), _unbroadcast(-g, b.shape))

        return self._binary(other, np.subtract, make, "sub")

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.dtype) - self

    def __mul__(self, other) -> "Tensor":
        def make(a: "Tensor", b: "Tensor"):
            return lambda g: (
                _unbroadcast(g * b.data, a.shape),
                _unbroadcast(g * a.data, b.shape),
            )

        return self._binary(other, np.multiply, make, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        def make(a: "Tensor", b: "Tensor"):
            return lambda g: (
                _unbroadcast(g / b.data, a.shape),
                _unbroadcast(-g * a.data / (b.data * b.data), b.shape),
            )

        return self._binary(other, np.divide, make, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other, dtype=self.dtype) / self

    def __neg__(self) -> "Tensor":
        node = GraphNode(inputs=(self,), backward_fn=lambda g: (-g,), name="neg")
        return Tensor._from_op(-self.data, node)

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data**exponent

        def backward_fn(g):
            return (g * exponent * self.data ** (exponent - 1),)

        node = GraphNode(inputs=(self,), backward_fn=backward_fn, name="pow")
        return Tensor._from_op(data, node)

    # -- comparisons (non-differentiable, return plain Tensors) --------------------

    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data > other, dtype=np.bool_)

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data < other, dtype=np.bool_)

    def eq(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return Tensor(self.data == other, dtype=np.bool_)

    # -- matmul ---------------------------------------------------------------------

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other, dtype=self.dtype)
        data = self.data @ other.data

        def backward_fn(g):
            grad_a = g @ other.data.swapaxes(-1, -2)
            grad_b = self.data.swapaxes(-1, -2) @ g
            return (_unbroadcast(grad_a, self.shape), _unbroadcast(grad_b, other.shape))

        node = GraphNode(inputs=(self, other), backward_fn=backward_fn, name="matmul")
        return Tensor._from_op(data, node)

    # -- unary math -------------------------------------------------------------------

    def exp(self) -> "Tensor":
        """Elementwise exponential."""
        data = np.exp(self.data)
        node = GraphNode(inputs=(self,), backward_fn=lambda g: (g * data,), name="exp")
        return Tensor._from_op(data, node)

    def log(self) -> "Tensor":
        node = GraphNode(
            inputs=(self,), backward_fn=lambda g: (g / self.data,), name="log"
        )
        return Tensor._from_op(np.log(self.data), node)

    def sqrt(self) -> "Tensor":
        """Elementwise square root."""
        data = np.sqrt(self.data)
        node = GraphNode(
            inputs=(self,), backward_fn=lambda g: (g / (2.0 * data),), name="sqrt"
        )
        return Tensor._from_op(data, node)

    def abs(self) -> "Tensor":
        node = GraphNode(
            inputs=(self,),
            backward_fn=lambda g: (g * np.sign(self.data),),
            name="abs",
        )
        return Tensor._from_op(np.abs(self.data), node)

    def clamp(self, min_value: float | None = None, max_value: float | None = None) -> "Tensor":
        """Clip values to ``[min_value, max_value]`` (gradient masked outside)."""
        data = np.clip(self.data, min_value, max_value)
        inside = np.ones_like(self.data, dtype=bool)
        if min_value is not None:
            inside &= self.data >= min_value
        if max_value is not None:
            inside &= self.data <= max_value

        node = GraphNode(
            inputs=(self,), backward_fn=lambda g: (g * inside,), name="clamp"
        )
        return Tensor._from_op(data, node)

    # -- reductions -------------------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over ``axis`` (all elements when ``None``)."""
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, self.shape).astype(self.dtype),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axes)
            return (np.broadcast_to(g, self.shape).astype(self.dtype),)

        node = GraphNode(inputs=(self,), backward_fn=backward_fn, name="sum")
        return Tensor._from_op(data, node)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Maximum over ``axis``; gradient splits evenly across ties."""
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(g):
            g = np.asarray(g)
            expanded = data if keepdims or axis is None else np.expand_dims(
                data, axis if isinstance(axis, tuple) else (axis,)
            )
            mask = self.data == expanded
            counts = mask.sum(axis=axis, keepdims=True)
            g_full = g if keepdims or axis is None else np.expand_dims(
                g, axis if isinstance(axis, tuple) else (axis,)
            )
            return ((mask * g_full / counts).astype(self.dtype),)

        node = GraphNode(inputs=(self,), backward_fn=backward_fn, name="max")
        return Tensor._from_op(data, node)

    def argmax(self, axis=None):
        return Tensor(np.argmax(self.data, axis=axis), dtype=np.int64)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        """View with a new shape (differentiable)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape
        data = self.data.reshape(shape)
        node = GraphNode(
            inputs=(self,), backward_fn=lambda g: (g.reshape(original),), name="reshape"
        )
        return Tensor._from_op(data, node)

    view = reshape

    def flatten(self, start_dim: int = 0) -> "Tensor":
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, dim0: int, dim1: int) -> "Tensor":
        """Swap two dimensions."""
        data = np.swapaxes(self.data, dim0, dim1)
        node = GraphNode(
            inputs=(self,),
            backward_fn=lambda g: (np.swapaxes(g, dim0, dim1),),
            name="transpose",
        )
        return Tensor._from_op(data, node)

    def permute(self, *dims) -> "Tensor":
        """Reorder all dimensions."""
        if len(dims) == 1 and isinstance(dims[0], (tuple, list)):
            dims = tuple(dims[0])
        inverse = np.argsort(dims)
        data = self.data.transpose(dims)
        node = GraphNode(
            inputs=(self,),
            backward_fn=lambda g: (g.transpose(inverse),),
            name="permute",
        )
        return Tensor._from_op(data, node)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward_fn(g):
            full = np.zeros_like(self.data)
            np.add.at(full, index, g)
            return (full,)

        node = GraphNode(inputs=(self,), backward_fn=backward_fn, name="getitem")
        return Tensor._from_op(data, node)

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.ndim - 2) + [(padding, padding)] * 2
        data = np.pad(self.data, pad_width)
        slices = tuple(
            [slice(None)] * (self.ndim - 2) + [slice(padding, -padding)] * 2
        )
        node = GraphNode(
            inputs=(self,), backward_fn=lambda g: (g[slices],), name="pad2d"
        )
        return Tensor._from_op(data, node)


def tensor(data, requires_grad: bool = False, dtype=None) -> Tensor:
    """Create a tensor (functional alias mirroring ``torch.tensor``)."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(*shape, requires_grad: bool = False, dtype=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.zeros(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape, requires_grad: bool = False, dtype=None) -> Tensor:
    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    return Tensor(np.ones(shape, dtype=dtype or _DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape, requires_grad: bool = False, generator=None) -> Tensor:
    """Standard-normal tensor drawn from the substrate's seeded generator."""
    from . import rng

    if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
        shape = tuple(shape[0])
    gen = generator if generator is not None else rng.generator()
    data = gen.standard_normal(shape).astype(_DEFAULT_DTYPE)
    return Tensor(data, requires_grad=requires_grad)


def arange(*args, dtype=None) -> Tensor:
    return Tensor(np.arange(*args), dtype=dtype or _DEFAULT_DTYPE)


def cat(tensors: Sequence[Tensor], dim: int = 0) -> Tensor:
    """Concatenate tensors along ``dim`` (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=dim)
    sizes = [t.shape[dim] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            index = [slice(None)] * g.ndim
            index[dim] = slice(start, stop)
            grads.append(g[tuple(index)])
        return tuple(grads)

    node = GraphNode(inputs=tuple(tensors), backward_fn=backward_fn, name="cat")
    return Tensor._from_op(data, node)


def stack(tensors: Iterable[Tensor], dim: int = 0) -> Tensor:
    """Stack tensors along a new dimension (differentiable)."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=dim)

    def backward_fn(g):
        return tuple(np.take(g, i, axis=dim) for i in range(len(tensors)))

    node = GraphNode(inputs=tuple(tensors), backward_fn=backward_fn, name="stack")
    return Tensor._from_op(data, node)
