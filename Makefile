PY ?= python

.PHONY: test lint bench-smoke bench-recovery bench-cluster bench-serving chaos api-docs stats-demo

# tier-1 suite (the repo's correctness gate)
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# static checks: ruff when installed, syntax-only compile gate otherwise
lint:
	@if $(PY) -m ruff --version >/dev/null 2>&1; then \
		$(PY) -m ruff check src tests scripts; \
	else \
		echo "ruff not installed; falling back to compileall syntax check"; \
		$(PY) -m compileall -q src tests scripts; \
	fi

# tier-1 tests + ~5s save/recover micro-benchmark; writes BENCH_pipeline.json
bench-smoke:
	$(PY) scripts/bench_smoke.py

# serial vs pipelined recovery accounting; writes BENCH_recovery.json
bench-recovery:
	$(PY) scripts/bench_recovery.py

# sharded recover throughput + replica-down failover; writes BENCH_cluster.json
bench-cluster:
	$(PY) scripts/bench_cluster.py

# multi-tenant gateway under heavy-tailed load; writes BENCH_serving.json
bench-serving:
	$(PY) scripts/bench_serving.py --smoke

# fault-injection tests (fixed seeds) + chaos smoke; writes BENCH_chaos.json
chaos:
	PYTHONPATH=src $(PY) -m pytest -q tests/filestore/test_faults.py \
		tests/filestore/test_segments.py \
		tests/core/test_crash_consistency.py tests/core/test_fsck.py
	$(PY) scripts/chaos_smoke.py

api-docs:
	PYTHONPATH=src $(PY) scripts/generate_api_docs.py

# observability smoke: clustered save/recover, then dump metrics and traces
stats-demo:
	PYTHONPATH=src $(PY) -m repro.cli stats --demo --prometheus
	PYTHONPATH=src $(PY) -m repro.cli trace --demo --last 20
