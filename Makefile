PY ?= python

.PHONY: test bench-smoke chaos api-docs

# tier-1 suite (the repo's correctness gate)
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# tier-1 tests + ~5s save/recover micro-benchmark; writes BENCH_pipeline.json
bench-smoke:
	$(PY) scripts/bench_smoke.py

# fault-injection tests (fixed seeds) + chaos smoke; writes BENCH_chaos.json
chaos:
	PYTHONPATH=src $(PY) -m pytest -q tests/filestore/test_faults.py \
		tests/core/test_crash_consistency.py tests/core/test_fsck.py
	$(PY) scripts/chaos_smoke.py

api-docs:
	PYTHONPATH=src $(PY) scripts/generate_api_docs.py
