PY ?= python

.PHONY: test bench-smoke api-docs

# tier-1 suite (the repo's correctness gate)
test:
	PYTHONPATH=src $(PY) -m pytest -x -q

# tier-1 tests + ~5s save/recover micro-benchmark; writes BENCH_pipeline.json
bench-smoke:
	$(PY) scripts/bench_smoke.py

api-docs:
	PYTHONPATH=src $(PY) scripts/generate_api_docs.py
