"""True multi-process distribution: node processes + a store server process.

The closest in-repo analogue to the paper's three-machine deployment:
worker *processes* (not threads) each save models through the TCP document
store and the shared file-store directory; the parent process plays the
server and recovers everything.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import BaselineSaveService, ModelManager
from repro.docstore import DocumentStore, DocumentStoreClient, DocumentStoreServer
from repro.filestore import FileStore

WORKER_SCRIPT = r"""
import json
import sys

from repro.core import ArchitectureRef, ModelSaveInfo, ParameterUpdateSaveService
from repro.docstore import DocumentStoreClient
from repro.filestore import FileStore
from repro.nn.models import create_model

host, port, files_dir, node_index, base_id = (
    sys.argv[1], int(sys.argv[2]), sys.argv[3], int(sys.argv[4]), sys.argv[5]
)
with DocumentStoreClient(host, port) as documents:
    service = ParameterUpdateSaveService(documents, FileStore(files_dir))
    model = create_model("mobilenetv2", num_classes=10, scale=0.125, seed=42)
    # node-local "training": shift the classifier by a node-specific amount
    head = model.final_classifier()
    head.bias.data += float(node_index + 1)
    model_id = service.save_model(
        ModelSaveInfo(
            model,
            ArchitectureRef.from_factory(
                "repro.nn.models", "mobilenetv2",
                {"num_classes": 10, "scale": 0.125},
            ),
            base_model_id=base_id,
            use_case=f"U_3-node-{node_index}",
        )
    )
    print(json.dumps({"node": node_index, "model_id": model_id}))
"""


@pytest.mark.parametrize("num_workers", [3])
def test_worker_processes_save_against_shared_stores(tmp_path, num_workers):
    from repro.core import ArchitectureRef, ModelSaveInfo
    from repro.nn.models import create_model

    files_dir = tmp_path / "files"
    backing = DocumentStore(tmp_path / "docs")
    worker_path = tmp_path / "worker.py"
    worker_path.write_text(WORKER_SCRIPT)

    with DocumentStoreServer(backing, port=0) as server:
        # the central server registers the initial model (U_1)
        with DocumentStoreClient(server.host, server.port) as client:
            server_service = BaselineSaveService(client, FileStore(files_dir))
            base = create_model("mobilenetv2", num_classes=10, scale=0.125, seed=42)
            base_id = server_service.save_model(
                ModelSaveInfo(
                    base,
                    ArchitectureRef.from_factory(
                        "repro.nn.models", "mobilenetv2",
                        {"num_classes": 10, "scale": 0.125},
                    ),
                    use_case="U_1",
                )
            )

            # node processes register their local updates concurrently
            workers = [
                subprocess.Popen(
                    [
                        sys.executable,
                        str(worker_path),
                        server.host,
                        str(server.port),
                        str(files_dir),
                        str(index),
                        base_id,
                    ],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                )
                for index in range(num_workers)
            ]
            results = []
            for worker in workers:
                out, err = worker.communicate(timeout=120)
                assert worker.returncode == 0, f"worker failed: {err}"
                results.append(json.loads(out.strip().splitlines()[-1]))

            # the server recovers every node's exact model (U_4)
            assert len({r["model_id"] for r in results}) == num_workers
            for result in results:
                recovered = server_service.recover_model(result["model_id"])
                assert recovered.verified is True
                bias = recovered.model.final_classifier().bias.data
                expected = base.final_classifier().bias.data + (result["node"] + 1)
                assert np.allclose(bias, expected)
                assert recovered.use_case == f"U_3-node-{result['node']}"

            manager = ModelManager(server_service)
            assert len(manager.list_models()) == num_workers + 1
            record = manager.get(base_id)
            assert len(record.derived_model_ids) == num_workers
