"""Registry mirrors of the cache and network accounting attributes."""

import numpy as np
import pytest

from repro import obs
from repro.core.hashing import state_dict_hashes
from repro.filestore import FileStore, NetworkModel, SimulatedNetworkFileStore
from repro.filestore.store import ChunkCache


@pytest.fixture(autouse=True)
def _fresh_obs():
    obs.reset()
    yield
    obs.reset()


def state(seed: int, layers: int = 6) -> dict:
    rng = np.random.default_rng(seed)
    return {
        f"layer{i}": rng.standard_normal((16, 16)).astype(np.float32)
        for i in range(layers)
    }


class TestChunkCacheMirrors:
    def test_hits_misses_evictions_match_registry(self):
        cache = ChunkCache(max_bytes=64)
        registry = obs.registry()
        cache.get("a")                    # miss
        cache.put("a", b"x" * 40)
        cache.get("a")                    # hit
        cache.put("b", b"y" * 40)         # evicts a
        cache.get("a")                    # miss again
        stats = cache.stats()
        assert (stats["hits"], stats["misses"], stats["evictions"]) == (1, 2, 1)
        assert registry.value("mmlib_chunk_cache_hits_total") == stats["hits"]
        assert registry.value("mmlib_chunk_cache_misses_total") == stats["misses"]
        assert registry.value("mmlib_chunk_cache_evictions_total") == stats["evictions"]
        assert registry.value("mmlib_chunk_cache_bytes") == stats["bytes"]

    def test_eviction_emits_event(self):
        cache = ChunkCache(max_bytes=32)
        cache.put("first", b"x" * 30)
        cache.put("second", b"y" * 30)
        [event] = obs.events().events(kind="cache_evict")
        assert event.fields["digest"] == "first"
        assert event.fields["nbytes"] == 30

    def test_store_level_cache_traffic_lands_in_registry(self, tmp_path):
        store = FileStore(tmp_path / "files", chunk_cache=1 << 20)
        file_id = store.save_state_chunks(state(0), state_dict_hashes(state(0)))
        store.recover_state_chunks(file_id)   # warms the cache
        store.recover_state_chunks(file_id)   # pure hits
        stats = store.chunk_cache.stats()
        assert stats["hits"] > 0
        registry = obs.registry()
        assert registry.value("mmlib_chunk_cache_hits_total") == stats["hits"]
        assert registry.value("mmlib_chunk_cache_misses_total") == stats["misses"]


class TestNetworkMirrors:
    def test_round_trips_and_bytes_match_registry(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=0.001)
        store = SimulatedNetworkFileStore(
            tmp_path / "net", link, sleep=False, pipeline_depth=4
        )
        file_id = store.save_state_chunks(state(1), state_dict_hashes(state(1)))
        store.recover_state_chunks(file_id, workers=4)
        registry = obs.registry()
        assert store.round_trips > 0
        assert registry.value("mmlib_network_round_trips_total") == store.round_trips
        assert (
            registry.value("mmlib_network_round_trips_saved_total")
            == store.round_trips_saved
        )
        assert (
            registry.value("mmlib_network_bytes_total", direction="sent")
            == store.bytes_sent
        )
        assert (
            registry.value("mmlib_network_bytes_total", direction="received")
            == store.bytes_received
        )

    def test_pipelined_batch_saves_round_trips_in_both_views(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=0.001)
        store = SimulatedNetworkFileStore(
            tmp_path / "net", link, sleep=False, pipeline_depth=4
        )
        file_id = store.save_state_chunks(
            state(2, layers=8), state_dict_hashes(state(2, layers=8))
        )
        # 8 distinct chunks in windows of 4: fewer round-trips than chunks
        store.recover_state_chunks(file_id, workers=4)
        assert store.round_trips_saved > 0
        assert (
            obs.registry().value("mmlib_network_round_trips_saved_total")
            == store.round_trips_saved
        )

    def test_transfers_traced(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=1e9, latency_s=0.001)
        store = SimulatedNetworkFileStore(tmp_path / "net", link, sleep=False)
        store.save_bytes(b"payload")
        spans = [sp for sp in obs.tracer().spans() if sp.name == "net.transfer"]
        assert spans
        assert all(sp.attrs["nbytes"] >= 0 for sp in spans)
