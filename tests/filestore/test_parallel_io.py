"""Parallel chunk I/O: hot-chunk cache, batched fetches, accounting."""

import threading
from collections import OrderedDict

import numpy as np
import pytest

from repro.core.hashing import state_dict_hashes
from repro.filestore import (
    ChunkCache,
    FileStore,
    NetworkModel,
    SimulatedNetworkFileStore,
)
from repro.retry import RetryPolicy


def small_state(seed=0, layers=6):
    rng = np.random.default_rng(seed)
    state = OrderedDict()
    for index in range(layers):
        state[f"layer{index}.weight"] = rng.standard_normal((8, 8)).astype(np.float32)
    return state


def states_equal(a, b):
    return list(a) == list(b) and all(
        np.array_equal(a[name], b[name]) for name in a
    )


class TestChunkCache:
    def test_put_get_roundtrip(self):
        cache = ChunkCache(max_bytes=1024)
        cache.put("d1", b"abc")
        assert cache.get("d1") == b"abc"
        assert "d1" in cache and len(cache) == 1

    def test_byte_bounded_lru_eviction(self):
        cache = ChunkCache(max_bytes=100)
        cache.put("a", b"x" * 40)
        cache.put("b", b"x" * 40)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", b"x" * 40)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats()["evictions"] == 1

    def test_oversized_payloads_are_not_admitted(self):
        cache = ChunkCache(max_bytes=10)
        cache.put("big", b"x" * 11)
        assert "big" not in cache and len(cache) == 0

    def test_discard_and_clear(self):
        cache = ChunkCache(max_bytes=1024)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.discard("a")
        assert "a" not in cache and "b" in cache
        cache.clear()
        assert len(cache) == 0 and cache.stats()["bytes"] == 0

    def test_stats_track_hits_and_misses(self):
        cache = ChunkCache(max_bytes=1024)
        assert cache.get("absent") is None
        cache.put("a", b"x")
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ChunkCache(max_bytes=0)


class TestParallelSaveRecover:
    @pytest.mark.parametrize("workers", [0, 4])
    def test_recover_is_bitwise_identical(self, tmp_path, workers):
        store = FileStore(tmp_path / "files", workers=workers)
        state = small_state(seed=1, layers=12)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        recovered = store.recover_state_chunks(file_id, verify=True)
        assert states_equal(state, recovered)

    def test_parallel_and_serial_saves_interoperate(self, tmp_path):
        parallel = FileStore(tmp_path / "files", workers=4)
        serial = FileStore(tmp_path / "files", workers=0)
        state = small_state(seed=2)
        file_id = parallel.save_state_chunks(state, state_dict_hashes(state))
        assert states_equal(state, serial.recover_state_chunks(file_id))

    def test_duplicate_layers_share_one_chunk(self, tmp_path):
        store = FileStore(tmp_path / "files", workers=4)
        state = small_state(seed=3, layers=2)
        state["copy.weight"] = state["layer0.weight"].copy()
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        assert len(store.chunks) == 2  # 3 layers, 2 distinct payloads
        assert states_equal(state, store.recover_state_chunks(file_id, workers=4))

    def test_manifest_order_is_preserved(self, tmp_path):
        store = FileStore(tmp_path / "files", workers=4)
        state = small_state(seed=4, layers=10)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        recovered = store.recover_state_chunks(file_id, workers=4)
        assert list(recovered) == list(state)


class TestGetChunks:
    def test_batch_returns_all_unique_digests(self, tmp_path):
        store = FileStore(tmp_path / "files")
        state = small_state(seed=5)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        digests = list(hashes.values())
        payloads = store.get_chunks(digests + digests[:2], workers=3)
        assert set(payloads) == set(digests)

    def test_cache_serves_repeat_batches(self, tmp_path):
        store = FileStore(tmp_path / "files", workers=2, chunk_cache=1 << 20)
        state = small_state(seed=6)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        digests = list(hashes.values())
        store.get_chunks(digests)
        before = store.chunk_cache.stats()["hits"]
        store.get_chunks(digests)
        assert store.chunk_cache.stats()["hits"] >= before + len(digests)

    def test_singleflight_coalesces_concurrent_fetches(self, tmp_path):
        fetch_started = threading.Event()
        release_fetch = threading.Event()
        reads = []

        class SlowStore(FileStore):
            def _charged_read(self, digest):
                reads.append(digest)
                fetch_started.set()
                release_fetch.wait(timeout=5)
                return super()._charged_read(digest)

        store = SlowStore(tmp_path / "files", chunk_cache=1 << 20)
        state = small_state(seed=7, layers=1)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        digest = next(iter(hashes.values()))

        results = []
        leader = threading.Thread(target=lambda: results.append(store.get_chunk(digest)))
        leader.start()
        assert fetch_started.wait(timeout=5)
        # second reader arrives while the leader's fetch is in flight
        follower = threading.Thread(target=lambda: results.append(store.get_chunk(digest)))
        follower.start()
        release_fetch.set()
        leader.join(timeout=5)
        follower.join(timeout=5)

        assert len(results) == 2 and results[0] == results[1]
        assert reads == [digest]  # one fetch crossed the store boundary


class TestCorruptCacheHealing:
    def test_poisoned_cache_entry_is_refetched(self, tmp_path):
        store = FileStore(
            tmp_path / "files",
            workers=2,
            chunk_cache=1 << 20,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
        )
        state = small_state(seed=8, layers=3)
        hashes = state_dict_hashes(state)
        file_id = store.save_state_chunks(state, hashes)
        # poison the cache: a stale/corrupt payload for one digest
        victim = next(iter(hashes.values()))
        store.chunk_cache.put(victim, b"\x00" * 16)
        recovered = store.recover_state_chunks(file_id, verify=True, workers=2)
        assert states_equal(state, recovered)
        # the bad entry was dropped, so the cache is healed too
        assert store.chunk_cache.get(victim) != b"\x00" * 16


class TestBatchAccounting:
    def make_store(self, tmp_path, **kwargs):
        link = NetworkModel(bandwidth_bytes_per_s=1_000_000, latency_s=0.05)
        return SimulatedNetworkFileStore(tmp_path / "files", link, **kwargs)

    def test_pipelined_batch_pays_one_latency_per_window(self, tmp_path):
        store = self.make_store(tmp_path, workers=4, pipeline_depth=4)
        state = small_state(seed=9, layers=8)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        digests = list(hashes.values())
        total = sum(len(store.chunks.get(d)) for d in digests)

        store.reset_accounting()
        store.get_chunks(digests, workers=4)
        # 8 chunks over depth-4 windows: 2 round-trips paid, 6 saved
        assert store.round_trips == 2
        assert store.round_trips_saved == 6
        assert store.bytes_received == total
        assert store.simulated_seconds == pytest.approx(
            2 * 0.05 + total / 1_000_000
        )

    def test_serial_fetch_pays_latency_per_chunk(self, tmp_path):
        store = self.make_store(tmp_path, workers=0, pipeline_depth=1)
        state = small_state(seed=10, layers=5)
        hashes = state_dict_hashes(state)
        file_id = store.save_state_chunks(state, hashes)
        store.reset_accounting()
        store.recover_state_chunks(file_id)
        # one manifest read + one round-trip per chunk, none saved
        assert store.round_trips == 1 + 5
        assert store.round_trips_saved == 0

    def test_cache_hits_are_free(self, tmp_path):
        store = self.make_store(
            tmp_path, workers=4, pipeline_depth=4, chunk_cache=1 << 20
        )
        state = small_state(seed=11, layers=6)
        hashes = state_dict_hashes(state)
        file_id = store.save_state_chunks(state, hashes)
        store.recover_state_chunks(file_id, workers=4)  # warms the cache
        store.reset_accounting()
        store.recover_state_chunks(file_id, workers=4)
        # only the manifest crosses the link; every chunk is a cache hit
        assert store.round_trips == 1
        assert store.bytes_received < 2048

    def test_reset_accounting_zeroes_new_counters(self, tmp_path):
        store = self.make_store(tmp_path, workers=2, pipeline_depth=2)
        state = small_state(seed=12, layers=4)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        store.get_chunks(list(hashes.values()), workers=2)
        store.reset_accounting()
        assert store.round_trips == 0 and store.round_trips_saved == 0
        assert store.simulated_seconds == 0.0
