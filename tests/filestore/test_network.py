"""Simulated network file store: transfer cost accounting."""

import time

import pytest

from repro.filestore import (
    CELLULAR_LTE,
    INFINIBAND_100G,
    NetworkModel,
    SimulatedNetworkFileStore,
)


class TestNetworkModel:
    def test_transfer_time_formula(self):
        link = NetworkModel(bandwidth_bytes_per_s=1000, latency_s=0.5)
        assert link.transfer_time(2000) == pytest.approx(0.5 + 2.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=1, latency_s=-1)

    def test_presets_ordering(self):
        payload = 10_000_000
        assert INFINIBAND_100G.transfer_time(payload) < CELLULAR_LTE.transfer_time(payload)

    def test_repr_mentions_gbit(self):
        assert "Gbit/s" in repr(INFINIBAND_100G)


class TestSimulatedStore:
    def test_accounting_without_sleeping(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=1_000_000, latency_s=0.01)
        store = SimulatedNetworkFileStore(tmp_path / "s", link, sleep=False)
        started = time.perf_counter()
        file_id = store.save_bytes(b"x" * 500_000)
        store.recover_bytes(file_id)
        elapsed = time.perf_counter() - started
        assert elapsed < 0.25  # did not actually sleep ~1s
        assert store.simulated_seconds == pytest.approx(2 * (0.01 + 0.5), rel=0.01)
        assert store.bytes_sent == 500_000
        assert store.bytes_received == 500_000

    def test_sleep_mode_takes_wall_clock_time(self, tmp_path):
        link = NetworkModel(bandwidth_bytes_per_s=10_000_000, latency_s=0.05)
        store = SimulatedNetworkFileStore(tmp_path / "s", link, sleep=True)
        started = time.perf_counter()
        store.save_bytes(b"tiny")
        assert time.perf_counter() - started >= 0.05

    def test_reset_accounting(self, tmp_path):
        store = SimulatedNetworkFileStore(
            tmp_path / "s", NetworkModel(1_000_000), sleep=False
        )
        store.save_bytes(b"abc")
        store.reset_accounting()
        assert store.simulated_seconds == 0
        assert store.bytes_sent == 0

    def test_behaves_like_plain_file_store(self, tmp_path):
        store = SimulatedNetworkFileStore(
            tmp_path / "s", NetworkModel(1_000_000), sleep=False
        )
        file_id = store.save_bytes(b"payload", suffix=".bin")
        assert store.recover_bytes(file_id) == b"payload"
        assert store.exists(file_id)
