"""Per-chunk compression codecs: framing, round trips, corruption."""

import struct

import numpy as np
import pytest

from repro.errors import StoreCorruptionError
from repro.filestore import FileStore, available_codecs, resolve_codec
from repro.filestore import codecs as chunk_codecs
from repro.core.hashing import state_dict_hashes


def compressible(nbytes=200_000):
    return (b"0123456789ABCDEF" * (nbytes // 16 + 1))[:nbytes]


def incompressible(nbytes=200_000, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, size=nbytes, dtype=np.uint8
    ).tobytes()


class TestCodecRegistry:
    def test_none_and_zlib_always_available(self):
        names = available_codecs()
        assert "none" in names and "zlib" in names

    def test_lz4_gated_on_importability(self):
        if chunk_codecs._lz4 is None:
            assert "lz4" not in available_codecs()
            with pytest.raises(ValueError):
                resolve_codec("lz4")
        else:
            assert "lz4" in available_codecs()
            assert resolve_codec("lz4") == "lz4"

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError):
            resolve_codec("snappy")

    def test_env_var_default(self, monkeypatch):
        monkeypatch.setenv(chunk_codecs.CODEC_ENV_VAR, "zlib")
        assert resolve_codec(None) == "zlib"
        monkeypatch.delenv(chunk_codecs.CODEC_ENV_VAR)
        assert resolve_codec(None) == "none"


class TestFraming:
    def test_none_codec_is_passthrough(self):
        data = incompressible(1000)
        assert chunk_codecs.encode("none", data) is data
        assert chunk_codecs.decode(data) == data

    def test_zlib_round_trip_shrinks(self):
        data = compressible()
        payload = chunk_codecs.encode("zlib", data)
        assert len(bytes(payload)) < len(data)
        assert bytes(payload[:4]) == chunk_codecs.FRAME_MAGIC
        assert chunk_codecs.decode(payload) == data

    def test_incompressible_data_stays_raw(self):
        data = incompressible()
        payload = chunk_codecs.encode("zlib", data)
        assert payload is data  # the sniff skipped compression entirely

    def test_magic_collision_is_escape_framed(self):
        """Raw bytes that happen to start with the frame magic must still
        decode unambiguously — the writer wraps them as 'stored'."""
        data = chunk_codecs.FRAME_MAGIC + incompressible(100)
        payload = chunk_codecs.encode("none", data)
        assert payload is not data
        assert chunk_codecs.decode(payload) == data
        payload = chunk_codecs.encode("zlib", data)
        assert chunk_codecs.decode(bytes(payload)) == data

    def test_digest_semantics_are_uncompressed(self, tmp_path):
        """Chunk ids never change with the codec: same content, same id,
        whatever the at-rest framing."""
        state = {"w": np.zeros(50_000, dtype=np.float32)}
        hashes = state_dict_hashes(state)
        plain = FileStore(tmp_path / "plain", codec="none")
        packed = FileStore(tmp_path / "packed", codec="zlib")
        id_a = plain.save_state_chunks(state, hashes)
        id_b = packed.save_state_chunks(state, hashes)
        assert sorted(plain.chunks.chunk_ids()) == sorted(packed.chunks.chunk_ids())
        assert plain.chunks.total_bytes() > packed.chunks.total_bytes()
        for store, file_id in ((plain, id_a), (packed, id_b)):
            recovered = store.recover_state_chunks(file_id)
            assert np.array_equal(recovered["w"], state["w"])


class TestCorruption:
    def test_truncated_frame(self):
        payload = bytes(chunk_codecs.encode("zlib", compressible()))
        with pytest.raises(StoreCorruptionError):
            chunk_codecs.decode(payload[:8])

    def test_unknown_codec_id(self):
        frame = struct.pack("<4sBQ", chunk_codecs.FRAME_MAGIC, 99, 10) + b"x" * 10
        with pytest.raises(StoreCorruptionError):
            chunk_codecs.decode(frame)

    def test_corrupt_compressed_body(self):
        payload = bytearray(chunk_codecs.encode("zlib", compressible()))
        payload[20] ^= 0xFF
        with pytest.raises(StoreCorruptionError):
            chunk_codecs.decode(bytes(payload))

    def test_length_mismatch(self):
        data = compressible()
        payload = bytearray(chunk_codecs.encode("zlib", data))
        # lie about the uncompressed length in the frame header
        struct.pack_into("<Q", payload, 5, len(data) + 1)
        with pytest.raises(StoreCorruptionError):
            chunk_codecs.decode(bytes(payload))

    def test_lz4_payload_without_lz4_module(self):
        if chunk_codecs._lz4 is not None:
            pytest.skip("lz4 is importable here")
        frame = struct.pack(
            "<4sBQ", chunk_codecs.FRAME_MAGIC, chunk_codecs.CODEC_LZ4, 10
        ) + b"x" * 10
        with pytest.raises(StoreCorruptionError):
            chunk_codecs.decode(frame)


@pytest.mark.parametrize("layout", ["files", "segments"])
class TestStoreIntegration:
    def state(self, seed=0):
        rng = np.random.default_rng(seed)
        return {
            "dense.weight": rng.standard_normal(60_000).astype(np.float32),
            "sparse.weight": np.zeros(80_000, dtype=np.float32),
        }

    def test_round_trip_and_accounting(self, tmp_path, layout):
        store = FileStore(tmp_path / "files", layout=layout, codec="zlib")
        state = self.state()
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        recovered = store.recover_state_chunks(file_id, verify=True)
        for key in state:
            assert np.array_equal(recovered[key], state[key])
        stats = store.chunks.dedup_stats()
        assert stats["codec"] == "zlib"
        assert stats["stored_bytes"] < stats["logical_bytes"]
        assert stats["compression_ratio"] > 1.0

    def test_plain_store_reads_compressed_chunks(self, tmp_path, layout):
        """Decode is frame-driven: a codec=none reader understands what a
        codec=zlib writer stored in the same directory."""
        state = self.state(seed=2)
        writer = FileStore(tmp_path / "files", layout=layout, codec="zlib")
        file_id = writer.save_state_chunks(state, state_dict_hashes(state))
        reader = FileStore(tmp_path / "files", layout=layout, codec="none")
        recovered = reader.recover_state_chunks(file_id, verify=True)
        for key in state:
            assert np.array_equal(recovered[key], state[key])

    def test_fsck_clean_on_compressed_store(self, tmp_path, layout):
        from repro.core import ArchitectureRef, ModelManager, ModelSaveInfo
        from repro.core.baseline import BaselineSaveService
        from repro.docstore import DocumentStore
        from tests.conftest import make_tiny_cnn

        service = BaselineSaveService(
            DocumentStore(),
            FileStore(tmp_path / "files", layout=layout, codec="zlib"),
        )
        arch = ArchitectureRef.from_factory(
            "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
        )
        service.save_model(ModelSaveInfo(make_tiny_cnn(), arch))
        report = ModelManager(service).fsck()
        assert report.clean, report.summary()

    def test_cdc_composes_with_compression(self, tmp_path, layout):
        store = FileStore(
            tmp_path / "files", layout=layout, codec="zlib",
            cdc=True, cdc_target_bytes=16 * 1024,
        )
        state = self.state(seed=3)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        recovered = store.recover_state_chunks(file_id, verify=True)
        for key in state:
            assert np.array_equal(recovered[key], state[key])
        stats = store.chunks.dedup_stats()
        assert stats["compression_ratio"] > 1.0
