"""ChunkCache byte-accounting under concurrent put/evict/replace.

The cache sits between recovery threads, the chain prefetcher, and the
sharded store's read path — all hammering it at once.  These tests drive
it from many threads and then audit the invariant the LRU budget relies
on: ``current_bytes`` equals the sum of the resident payload lengths and
never exceeds ``max_bytes``.
"""

import random
import threading

from repro.filestore.store import ChunkCache

PAYLOADS = {f"digest-{index:03d}": bytes([index % 251]) * (100 + 37 * index)
            for index in range(120)}


def audit(cache: ChunkCache) -> None:
    """The accounting invariant; taken under the cache's own lock."""
    with cache._lock:
        resident = sum(len(data) for data in cache._entries.values())
        assert cache.current_bytes == resident
        assert cache.current_bytes <= cache.max_bytes


def hammer(cache: ChunkCache, seed: int, rounds: int, barrier, failures) -> None:
    rng = random.Random(seed)
    digests = list(PAYLOADS)
    barrier.wait()
    try:
        for _ in range(rounds):
            digest = rng.choice(digests)
            action = rng.random()
            if action < 0.45:
                cache.put(digest, PAYLOADS[digest])
            elif action < 0.80:
                data = cache.get(digest)
                if data is not None:
                    assert data == PAYLOADS[digest]
            elif action < 0.95:
                cache.discard(digest)
            else:
                # replace: discard + put of the same digest back to back
                cache.discard(digest)
                cache.put(digest, PAYLOADS[digest])
    except BaseException as exc:  # pragma: no cover - only on invariant breach
        failures.append(exc)
        raise


def run_threads(cache: ChunkCache, threads: int = 8, rounds: int = 400) -> None:
    barrier = threading.Barrier(threads)
    failures: list[BaseException] = []
    workers = [
        threading.Thread(target=hammer, args=(cache, seed, rounds, barrier, failures))
        for seed in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert not failures


class TestConcurrentByteAccounting:
    def test_large_budget_no_eviction_pressure(self):
        cache = ChunkCache(max_bytes=1 << 24)
        run_threads(cache)
        audit(cache)

    def test_tight_budget_constant_eviction(self):
        # budget fits only a handful of payloads: every put evicts
        cache = ChunkCache(max_bytes=10_000)
        run_threads(cache)
        audit(cache)
        assert cache.evictions > 0

    def test_concurrent_clear_while_hammering(self):
        cache = ChunkCache(max_bytes=1 << 20)
        stop = threading.Event()

        def clearer():
            while not stop.is_set():
                cache.clear()
                audit(cache)

        cleaner = threading.Thread(target=clearer)
        cleaner.start()
        try:
            run_threads(cache, threads=6, rounds=300)
        finally:
            stop.set()
            cleaner.join()
        audit(cache)

    def test_oversized_payload_is_rejected_without_accounting_drift(self):
        cache = ChunkCache(max_bytes=64)
        cache.put("big", b"x" * 65)
        assert "big" not in cache
        audit(cache)
        cache.put("fits", b"x" * 64)
        assert "fits" in cache
        audit(cache)

    def test_final_state_is_a_consistent_lru(self):
        cache = ChunkCache(max_bytes=50_000)
        run_threads(cache, threads=4, rounds=500)
        audit(cache)
        stats = cache.stats()
        assert stats["bytes"] == cache.current_bytes
        assert stats["entries"] == len(cache)
