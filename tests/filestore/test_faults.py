"""Fault injection + retry at the file-store boundary.

The injector must be deterministic (seeded), its failures must surface
as *typed* errors, and a retry-carrying store must absorb transient
faults while leaving the on-disk state bitwise identical to a clean run.
"""

import numpy as np
import pytest

from repro.core.hashing import state_dict_hashes, tensor_hash
from repro.errors import MMLibError, StoreCorruptionError, TransientStoreError
from repro.faults import CrashPoint, FaultInjector, FaultyDocumentStore
from repro.filestore import FileStore, NetworkModel, SimulatedNetworkFileStore
from repro.retry import RetryPolicy

from .test_chunks import small_state


def no_sleep_policy(**kwargs):
    kwargs.setdefault("max_attempts", 6)
    kwargs.setdefault("base_delay_s", 0.0)
    return RetryPolicy(sleep=lambda s: None, **kwargs)


class TestInjectorDeterminism:
    def drive(self, faults, ops=200):
        outcomes = []
        for i in range(ops):
            op = ("chunk.write", "file.read", "docs.find", "chunk.read")[i % 4]
            try:
                faults.fail_point(op)
                outcomes.append("ok")
            except TransientStoreError:
                outcomes.append("err")
            outcomes.append(faults.torn_write(op))
            outcomes.append(faults.corrupt(op, b"payload-%d" % i))
        return outcomes

    def test_same_seed_same_decisions(self):
        kwargs = dict(
            error_rate=0.2, torn_write_rate=0.1, corrupt_rate=0.15, outage_rate=0.3
        )
        a = FaultInjector(seed=42, **kwargs)
        b = FaultInjector(seed=42, **kwargs)
        assert self.drive(a) == self.drive(b)
        assert a.stats == b.stats
        assert a.stats["errors"] > 0 and a.stats["outages"] > 0

    def test_different_seed_different_decisions(self):
        a = FaultInjector(seed=1, error_rate=0.2, corrupt_rate=0.2)
        b = FaultInjector(seed=2, error_rate=0.2, corrupt_rate=0.2)
        assert self.drive(a) != self.drive(b)

    def test_max_consecutive_failures_bounds_streaks(self):
        faults = FaultInjector(seed=0, error_rate=1.0, max_consecutive_failures=2)
        outcomes = []
        for _ in range(9):
            try:
                faults.fail_point("file.write")
                outcomes.append("ok")
            except TransientStoreError:
                outcomes.append("err")
        # never more than two failures in a row, so attempt 3 of any
        # bounded retry loop is guaranteed to succeed
        assert "".join(o[0] for o in outcomes) == "eeoeeoeeo"

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(error_rate=1.5)


class TestTypedErrors:
    def test_unretried_failure_is_typed(self, tmp_path):
        store = FileStore(tmp_path / "s", faults=FaultInjector(seed=0, error_rate=1.0))
        with pytest.raises(TransientStoreError) as excinfo:
            store.save_bytes(b"doomed")
        # retryable, library-typed, and still an OSError for legacy callers
        assert isinstance(excinfo.value, MMLibError)
        assert isinstance(excinfo.value, OSError)

    def test_docstore_outage_is_typed(self, mem_doc_store):
        faults = FaultInjector(seed=0, outage_rate=1.0)
        store = FaultyDocumentStore(mem_doc_store, faults)
        with pytest.raises(TransientStoreError):
            store.collection("models").find({})
        assert faults.stats["outages"] == 1

    def test_exhausted_retries_reraise_typed_error(self, tmp_path):
        faults = FaultInjector(seed=0, error_rate=1.0)
        retry = no_sleep_policy(max_attempts=3)
        store = FileStore(tmp_path / "s", faults=faults, retry=retry)
        with pytest.raises(TransientStoreError):
            store.save_bytes(b"never lands")
        assert retry.stats["failures"] == 1
        assert retry.stats["retries"] == 2


class TestRetryAbsorbsTransients:
    def test_flaky_save_recover_is_bitwise(self, tmp_path):
        faults = FaultInjector(seed=7, error_rate=0.2, max_consecutive_failures=3)
        retry = no_sleep_policy()
        store = FileStore(tmp_path / "s", faults=faults, retry=retry)
        state = small_state(seed=11)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        blob_id = store.save_bytes(b"side payload")
        restored = store.recover_state_chunks(file_id)
        for key in state:
            assert np.array_equal(restored[key], state[key])
        assert store.recover_bytes(blob_id) == b"side payload"
        assert faults.stats["errors"] > 0
        assert retry.retries_taken >= faults.stats["errors"]

    def test_torn_write_leaves_tear_then_retry_converges(self, tmp_path):
        faults = FaultInjector(seed=1, torn_write_rate=0.5)
        retry = no_sleep_policy()
        store = FileStore(
            tmp_path / "s", faults=faults, retry=retry, tmp_grace_s=0.0,
            layout="files",  # the *.tmp tear below is file-per-chunk specific
        )
        payload = np.arange(64, dtype=np.float32)
        digest = tensor_hash(payload)
        assert store.put_chunk(digest, payload.data) is True
        assert faults.stats["torn_writes"] >= 1
        # the tear persisted as a *.tmp alongside the real chunk...
        tears = list(store.chunks.objects_dir.glob("*.tmp"))
        assert tears, "torn write should leave a partial tmp file behind"
        # ...and the converged chunk is intact despite it
        assert store.chunks.get(digest) == payload.tobytes()
        # with the grace window disabled, gc reaps every expired tear
        store.chunks.add_refs([digest])
        assert store.chunks.gc()["chunks_removed"] == len(tears)
        assert store.chunks.has(digest)

    def test_corrupt_chunk_read_heals_via_refetch(self, tmp_path):
        faults = FaultInjector(seed=5, corrupt_rate=1.0, max_consecutive_failures=None)
        retry = no_sleep_policy(max_attempts=8)
        store = FileStore(tmp_path / "s", faults=faults, retry=retry)
        assert store.verify_reads  # implied by having faults/retry
        state = small_state(seed=9)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        faults.corrupt_rate = 0.5  # every fetch has a coin-flip of arriving flipped
        for _ in range(5):
            restored = store.recover_state_chunks(file_id)
            for key in state:
                assert np.array_equal(restored[key], state[key])
        assert faults.stats["corruptions"] > 0

    def test_unverified_corruption_is_fatal_and_typed(self, tmp_path):
        faults = FaultInjector(seed=5, corrupt_rate=1.0)
        store = FileStore(tmp_path / "s", faults=faults, verify_reads=True)
        state = small_state(seed=10)
        faults.corrupt_rate = 0.0
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        faults.corrupt_rate = 1.0
        with pytest.raises(StoreCorruptionError):  # no retry policy: surfaces
            store.recover_state_chunks(file_id)


class TestNetworkAccounting:
    def test_failed_upload_charges_nothing(self, tmp_path):
        faults = FaultInjector(seed=0, error_rate=1.0)
        store = SimulatedNetworkFileStore(
            tmp_path / "s", NetworkModel(bandwidth_bytes_per_s=1e6),
            sleep=False, faults=faults,
        )
        with pytest.raises(TransientStoreError):
            store.save_bytes(b"x" * 10_000)
        assert store.bytes_sent == 0

    def test_retried_upload_charges_once(self, tmp_path):
        faults = FaultInjector(seed=1, error_rate=0.5, max_consecutive_failures=2)
        store = SimulatedNetworkFileStore(
            tmp_path / "s", NetworkModel(bandwidth_bytes_per_s=1e6),
            sleep=False, faults=faults, retry=no_sleep_policy(),
        )
        payload = b"y" * 4_096
        file_id = store.save_bytes(payload)
        assert store.recover_bytes(file_id) == payload
        # charged for the one successful upload, not per attempt
        assert store.bytes_sent == len(payload)


class TestCrashPoints:
    def test_crash_point_is_not_an_exception(self):
        assert not issubclass(CrashPoint, Exception)

    def test_crash_is_one_shot_and_matches_op(self):
        faults = FaultInjector(seed=0)
        faults.arm_crash(2, op="chunk.")
        faults.fail_point("file.write")  # not a chunk op: doesn't count
        faults.fail_point("chunk.write")  # match #1
        with pytest.raises(CrashPoint):
            faults.fail_point("chunk.read")  # match #2: dies here
        faults.fail_point("chunk.read")  # disarmed: repair code runs clean
        assert faults.stats["crashes"] == 1

    def test_crash_mid_save_leaves_journal_for_rollback(self, tmp_path):
        faults = FaultInjector(seed=0)
        store = FileStore(tmp_path / "s", faults=faults)
        state = small_state(seed=6)
        store.begin_journal()
        faults.arm_crash(3, op="chunk.write")
        with pytest.raises(CrashPoint):
            store.save_state_chunks(state, state_dict_hashes(state))
        store.abandon_journal()  # the "process" died; journal stays on disk

        reopened = FileStore(tmp_path / "s")
        incomplete = reopened.incomplete_journals()
        assert len(incomplete) == 1
        stats = reopened.rollback_journal(incomplete[0])
        assert stats["chunks_removed"] == 2  # the two chunks written pre-crash
        assert len(reopened.chunks) == 0
        assert reopened.file_ids() == []
        assert reopened.incomplete_journals() == []
