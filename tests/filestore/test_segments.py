"""Segment-based chunk store: append-only segments, group fsync, compaction."""

import json
import os
import time

import numpy as np
import pytest

from repro import obs
from repro.core.hashing import state_dict_hashes
from repro.errors import StoreCorruptionError
from repro.faults import CrashPoint, FaultInjector
from repro.filestore import (
    ChunkNotFoundError,
    FileStore,
    SegmentChunkStore,
    SegmentCompactor,
)
from repro.filestore import codecs as chunk_codecs
from repro.filestore.segments import SEGMENT_SUFFIX


def payload(index: int, size: int = 512) -> bytes:
    return bytes((index + offset) % 251 for offset in range(size))


def digest_for(index: int) -> str:
    return f"{index:08d}" + "ab" * 12


def fill(store, count: int, size: int = 512) -> dict[str, bytes]:
    data = {digest_for(i): payload(i, size) for i in range(count)}
    for digest, blob in data.items():
        assert store.put(digest, blob) is True
    store.flush()
    return data


class TestSegmentBasics:
    def test_round_trip_and_dedup(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        data = fill(store, 8)
        for digest, blob in data.items():
            assert store.has(digest)
            assert store.get(digest) == blob
            # size_of is the at-rest size: equal to the payload without a
            # codec, never larger with one (the sniff keeps raw otherwise)
            assert 0 < store.size_of(digest) <= len(blob)
        assert store.put(digest_for(0), payload(0)) is False  # dedup
        path, offset, length = store.locate(digest_for(0))
        assert path.suffix == SEGMENT_SUFFIX
        with open(path, "rb") as fileobj:
            fileobj.seek(offset)
            assert chunk_codecs.decode(fileobj.read(length)) == payload(0)
        with pytest.raises(ChunkNotFoundError):
            store.get("ffffffff" + "cd" * 12)

    def test_group_fsync_is_one_barrier_per_batch(self, tmp_path):
        obs.reset()
        store = SegmentChunkStore(tmp_path / "s", durability="group")
        for index in range(20):
            store.put(digest_for(index), payload(index))
        assert store.flush() == 1
        assert store.flush() == 0  # nothing new to sync
        snapshot = obs.registry().snapshot()

        def total(family):
            return sum(s["value"] for s in snapshot[family]["series"])

        assert total("mmlib_segment_appends_total") == 20
        assert total("mmlib_segment_fsync_batches_total") == 1
        assert total("mmlib_chunk_fsyncs_total") == 1
        obs.reset()

    def test_chunk_durability_syncs_every_append(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s", durability="chunk")
        fill(store, 3)
        assert store.flush() == 0  # every put already synced itself

    def test_rolls_seal_segments_with_footers(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s", segment_bytes=2048)
        data = fill(store, 12)
        stats = store.segment_stats()
        assert stats["segment_count"] > 1
        assert stats["sealed_segments"] >= 1
        for digest, blob in data.items():
            assert store.get(digest) == blob

    def test_reopen_loads_index_from_checkpoint(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s", segment_bytes=2048)
        data = fill(store, 12)
        store.close()
        reopened = SegmentChunkStore(tmp_path / "s", segment_bytes=2048)
        for digest, blob in data.items():
            assert reopened.get(digest) == blob

    def test_reopen_rebuilds_index_without_checkpoint(self, tmp_path):
        """A crash between append and checkpoint: the scan recovers it all."""
        store = SegmentChunkStore(tmp_path / "s", segment_bytes=2048)
        data = fill(store, 12)
        store.close()
        (tmp_path / "s" / "index.json").unlink()
        reopened = SegmentChunkStore(tmp_path / "s", segment_bytes=2048)
        for digest, blob in data.items():
            assert reopened.get(digest) == blob

    def test_deleted_chunk_stays_deleted_after_reopen(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        fill(store, 6)
        assert store.drop(digest_for(2)) is True
        store.close()
        reopened = SegmentChunkStore(tmp_path / "s")
        assert not reopened.has(digest_for(2))
        assert reopened.get(digest_for(3)) == payload(3)


class TestTornAppends:
    def test_torn_append_then_retry_converges(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        fill(store, 2)
        store.write_torn(digest_for(9), payload(9))
        assert not store.has(digest_for(9))
        assert store.put(digest_for(9), payload(9)) is True  # overwrites the tear
        store.flush()
        assert store.get(digest_for(9)) == payload(9)
        assert store.get(digest_for(1)) == payload(1)

    def test_torn_append_then_crash_is_truncated_by_audit(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s", tmp_grace_s=0.0)
        data = fill(store, 4)
        torn = store.write_torn(digest_for(9), payload(9))
        del store  # crash: no close, the tear stays on disk
        assert torn.exists()
        reopened = SegmentChunkStore(tmp_path / "s", tmp_grace_s=0.0)
        assert not reopened.has(digest_for(9))
        outcome = reopened.audit(repair=True, verify=True)
        assert torn.name in outcome["torn_segments"]
        assert outcome["crc_failures"] == []
        for digest, blob in data.items():
            assert reopened.get(digest) == blob
        second = reopened.audit(repair=True, verify=True)
        assert second["torn_segments"] == []
        assert second["entries_dropped"] == []

    def test_audit_flags_bit_rot_with_verify(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        fill(store, 3)
        path, offset, _length = store.locate(digest_for(1))
        with open(path, "r+b") as fileobj:
            fileobj.seek(offset)
            byte = fileobj.read(1)
            fileobj.seek(offset)
            fileobj.write(bytes([byte[0] ^ 0xFF]))
        assert store.audit(repair=True, verify=False)["crc_failures"] == []
        outcome = store.audit(repair=True, verify=True)
        assert outcome["crc_failures"] == [digest_for(1)]
        with pytest.raises(StoreCorruptionError):
            store.get(digest_for(1))


class TestCompaction:
    def build_fragmented(self, root, count=40):
        """Interleaved deletes leave every sealed segment ~1/3 live."""
        store = SegmentChunkStore(root, segment_bytes=4096, tmp_grace_s=0.0)
        data = fill(store, count)
        for index in range(count):
            if index % 3 != 0:
                store.drop(digest_for(index))
                del data[digest_for(index)]
        return store, data

    def test_compaction_rewrites_low_live_segments(self, tmp_path):
        store, data = self.build_fragmented(tmp_path / "s")
        before = store.segment_stats()
        assert before["compaction_debt_bytes"] > 0
        result = store.compact()
        assert result["segments_compacted"] > 0
        assert result["records_moved"] > 0
        assert result["bytes_reclaimed"] > 0
        after = store.segment_stats()
        assert after["live_ratio"] > before["live_ratio"]
        assert after["compaction_debt_bytes"] == 0
        for digest, blob in data.items():
            assert store.get(digest) == blob

    def test_gc_runs_compaction(self, tmp_path):
        store, data = self.build_fragmented(tmp_path / "s")
        store.add_refs(list(data))
        stats = store.gc()
        assert stats["segments_compacted"] > 0
        for digest, blob in data.items():
            assert store.get(digest) == blob

    def test_crash_at_every_compaction_point_recovers_bitwise(self, tmp_path):
        """Kill compaction at op 1, 2, 3, ...; a reopen + audit always heals."""
        crashes = 0
        for at in range(1, 60):
            root = tmp_path / f"crash-{at}"
            store, data = self.build_fragmented(root)
            faults = FaultInjector(seed=0)
            store.fault_hook = faults.fail_point
            faults.arm_crash(at, op="chunk.compact")
            try:
                store.compact()
            except CrashPoint:
                crashes += 1
            else:
                break  # compaction outran the armed crash: all points covered
            del store  # crash: no close
            reopened = SegmentChunkStore(
                root, segment_bytes=4096, tmp_grace_s=0.0
            )
            outcome = reopened.audit(repair=True, verify=True)
            assert outcome["crc_failures"] == [], f"crash at {at}"
            for digest, blob in data.items():
                assert reopened.get(digest) == blob, f"crash at {at}: {digest}"
            second = reopened.audit(repair=True, verify=True)
            assert second["compaction"] is None, f"crash at {at}"
            assert second["torn_segments"] == [], f"crash at {at}"
            # the interrupted run never loses ground: compacting again works
            reopened.compact()
            for digest, blob in data.items():
                assert reopened.get(digest) == blob, f"crash at {at}: {digest}"
        else:
            pytest.fail("compaction never completed")
        assert crashes >= 5, f"only {crashes} distinct crash points hit"

    def test_orphan_partial_segments_get_grace_swept(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        data = fill(store, 3)
        store.add_refs(list(data))
        fresh = store.segments_dir / "seg-rewrite.seg.tmp"
        fresh.write_bytes(b"mid-flight compaction copy")
        expired = store.segments_dir / "seg-crashed.seg.tmp"
        expired.write_bytes(b"orphaned by a crash mid-compaction")
        stale = time.time() - 3600
        os.utime(expired, (stale, stale))
        store.gc()
        assert fresh.exists()
        assert not expired.exists()

    def test_background_compactor_lifecycle(self, tmp_path):
        store, data = self.build_fragmented(tmp_path / "s")
        compactor = SegmentCompactor(store, interval_s=0.005)
        with compactor:
            deadline = time.time() + 5.0
            while compactor.runs == 0 and time.time() < deadline:
                time.sleep(0.005)
        assert compactor.runs >= 1
        assert compactor.errors == 0
        assert compactor.last_result["segments_compacted"] > 0
        for digest, blob in data.items():
            assert store.get(digest) == blob


class TestFileStoreIntegration:
    def small_state(self, seed=0):
        rng = np.random.default_rng(seed)
        return {
            f"layer{i}": rng.standard_normal(64).astype(np.float32)
            for i in range(4)
        }

    def test_default_layout_is_segments(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_LAYOUT", raising=False)
        store = FileStore(tmp_path / "s")
        assert store.layout == "segments"
        assert store.durability == "group"
        assert isinstance(store.chunks, SegmentChunkStore)

    def test_layout_detected_from_disk_on_reopen(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_LAYOUT", raising=False)
        FileStore(tmp_path / "f", layout="files").chunks.put(
            digest_for(0), payload(0)
        )
        FileStore(tmp_path / "g").chunks.put(digest_for(0), payload(0))
        assert FileStore(tmp_path / "f").layout == "files"
        assert FileStore(tmp_path / "g").layout == "segments"

    def test_env_var_selects_layout(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_LAYOUT", "files")
        assert FileStore(tmp_path / "s").layout == "files"

    def test_save_state_chunks_round_trip(self, tmp_path):
        store = FileStore(tmp_path / "s")
        state = self.small_state(seed=1)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        restored = store.recover_state_chunks(file_id)
        for key, value in state.items():
            assert np.array_equal(restored[key], value), key

    def test_save_round_trips_after_reopen(self, tmp_path):
        state = self.small_state(seed=2)
        file_id = FileStore(tmp_path / "s").save_state_chunks(
            state, state_dict_hashes(state)
        )
        restored = FileStore(tmp_path / "s").recover_state_chunks(file_id)
        for key, value in state.items():
            assert np.array_equal(restored[key], value), key

    def test_sharded_store_over_segment_members(self, tmp_path):
        from repro.cluster import ShardedFileStore

        members = {
            f"shard-{i}": FileStore(tmp_path / f"shard-{i}", layout="segments")
            for i in range(3)
        }
        store = ShardedFileStore(tmp_path / "meta", members, replicas=2)
        state = self.small_state(seed=3)
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        restored = store.recover_state_chunks(file_id)
        for key, value in state.items():
            assert np.array_equal(restored[key], value), key

        outcome = store.chunks.audit(repair=True, verify=True)
        assert outcome["layout"] == "sharded"
        assert outcome["segments_checked"] >= 1
        assert outcome["crc_failures"] == []
        stats = store.chunks.segment_stats()
        assert stats["segment_count"] >= 1
        assert set(stats["members"]) == set(members)

    def test_checkpoint_is_valid_json(self, tmp_path):
        store = SegmentChunkStore(tmp_path / "s")
        fill(store, 4)
        checkpoint = json.loads((tmp_path / "s" / "index.json").read_text())
        assert checkpoint["version"] == 1
        assert len(checkpoint["entries"]) == 4
