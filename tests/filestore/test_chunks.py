"""Content-addressed chunk storage: dedup, refcounts, GC, network cost."""

import json
import os
import time
from collections import OrderedDict

import numpy as np
import pytest

from repro.core.hashing import state_dict_hashes
from repro.filestore import (
    ChunkNotFoundError,
    ChunkStore,
    FileStore,
    NetworkModel,
    SimulatedNetworkFileStore,
)


def small_state(seed=0, bias=0.0):
    rng = np.random.default_rng(seed)
    state = OrderedDict()
    state["conv.weight"] = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
    state["bn.running_mean"] = np.zeros(4, dtype=np.float32)
    state["fc.weight"] = rng.standard_normal((10, 64)).astype(np.float32)
    state["fc.bias"] = np.full(10, bias, dtype=np.float32)
    return state


class TestChunkStore:
    def test_put_is_idempotent(self, tmp_path):
        store = ChunkStore(tmp_path / "c")
        assert store.put("abc123", b"payload") is True
        assert store.put("abc123", b"payload") is False
        assert store.get("abc123") == b"payload"
        assert store.has("abc123")

    def test_missing_chunk_raises(self, tmp_path):
        store = ChunkStore(tmp_path / "c")
        with pytest.raises(ChunkNotFoundError):
            store.get("feedface")

    @pytest.mark.parametrize("bad", ["", "../x", ".hidden", "a/b"])
    def test_invalid_digests_rejected(self, tmp_path, bad):
        store = ChunkStore(tmp_path / "c")
        with pytest.raises(ValueError):
            store.put(bad, b"x")

    def test_refcounting_deletes_at_zero(self, tmp_path):
        store = ChunkStore(tmp_path / "c")
        store.put("d1", b"one")
        store.add_refs(["d1"])
        store.add_refs(["d1"])
        assert store.refcount("d1") == 2
        assert store.release_refs(["d1"]) == []
        assert store.has("d1")
        assert store.release_refs(["d1"]) == ["d1"]
        assert not store.has("d1")

    def test_gc_removes_unreferenced_chunks(self, tmp_path):
        store = ChunkStore(tmp_path / "c")
        store.put("orphan", b"never referenced")
        store.put("kept", b"referenced")
        store.add_refs(["kept"])
        stats = store.gc()
        assert stats["chunks_removed"] == 1
        assert stats["bytes_freed"] == len(b"never referenced")
        assert store.has("kept") and not store.has("orphan")

    def test_accounting(self, tmp_path):
        store = ChunkStore(tmp_path / "c")
        store.put("a1", b"xxxx")
        store.put("b2", b"yy")
        assert store.total_bytes() == 6
        assert store.chunk_ids() == ["a1", "b2"]
        assert len(store) == 2


class TestChunkedStateSave:
    def test_round_trip_is_bitwise(self, tmp_path):
        store = FileStore(tmp_path / "s")
        state = small_state()
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        assert file_id.endswith(".manifest")
        restored = store.recover_state_chunks(file_id)
        assert list(restored) == list(state)
        for key in state:
            assert np.array_equal(restored[key], state[key])
            assert restored[key].dtype == state[key].dtype

    def test_identical_layers_stored_once(self, tmp_path):
        store = FileStore(tmp_path / "s")
        first = small_state(seed=1)
        second = small_state(seed=1, bias=5.0)  # only fc.bias differs
        hashes_a = state_dict_hashes(first)
        hashes_b = state_dict_hashes(second)
        store.save_state_chunks(first, hashes_a)
        chunks_after_first = len(store.chunks)
        store.save_state_chunks(second, hashes_b)
        # one new chunk for the changed layer, everything else deduplicated
        assert len(store.chunks) == chunks_after_first + 1

    def test_deleting_manifest_releases_chunks(self, tmp_path):
        store = FileStore(tmp_path / "s")
        shared = small_state(seed=2)
        id_a = store.save_state_chunks(shared, state_dict_hashes(shared))
        id_b = store.save_state_chunks(shared, state_dict_hashes(shared))
        assert len(store.chunks) == len(shared)
        store.delete(id_a)
        assert len(store.chunks) == len(shared)  # still referenced by id_b
        store.delete(id_b)
        assert len(store.chunks) == 0

    def test_manifest_logical_size_vs_physical_total(self, tmp_path):
        store = FileStore(tmp_path / "s")
        state = small_state(seed=3)
        id_a = store.save_state_chunks(state, state_dict_hashes(state))
        id_b = store.save_state_chunks(state, state_dict_hashes(state))
        payload_bytes = sum(a.nbytes for a in state.values())
        # each manifest's logical size covers all its chunks...
        assert store.size(id_a) > payload_bytes
        assert store.size(id_b) > payload_bytes
        # ...but physically the chunks exist once
        assert store.total_bytes() < store.size(id_a) + store.size(id_b)

    def test_non_contiguous_and_scalar_layers(self, tmp_path):
        store = FileStore(tmp_path / "s")
        base = np.arange(24, dtype=np.float32).reshape(4, 6)
        state = OrderedDict(
            [
                ("view", base[:, ::2]),
                ("scalar", np.array(7.5, dtype=np.float64)),
                ("empty", np.zeros((0, 3), dtype=np.float32)),
            ]
        )
        file_id = store.save_state_chunks(state, state_dict_hashes(state))
        restored = store.recover_state_chunks(file_id)
        assert np.array_equal(restored["view"], base[:, ::2])
        assert restored["scalar"].shape == () and restored["scalar"] == 7.5
        assert restored["empty"].shape == (0, 3)

    def test_read_manifest_rejects_non_manifest_payload(self, tmp_path):
        store = FileStore(tmp_path / "s")
        file_id = store.save_bytes(
            json.dumps({"format": "something-else"}).encode(), suffix=".manifest"
        )
        with pytest.raises(IOError, match="manifest"):
            store.read_manifest(file_id)


class TestStoreHygiene:
    def test_tmp_files_excluded_from_accounting(self, tmp_path):
        store = FileStore(tmp_path / "s")
        file_id = store.save_bytes(b"real payload")
        (store.root / "interrupted-save.params.tmp").write_bytes(b"x" * 1000)
        assert store.file_ids() == [file_id]
        assert store.total_bytes() == len(b"real payload")

    def test_orphaned_tmp_files_cleaned_on_init(self, tmp_path):
        root = tmp_path / "s"
        store = FileStore(root)
        file_id = store.save_bytes(b"keep me")
        leftover = root / "leftover.update.tmp"
        leftover.write_bytes(b"junk")
        # age it past the grace window: only *expired* tmp files are reaped
        stale = time.time() - 3600
        os.utime(leftover, (stale, stale))
        reopened = FileStore(root)
        assert not leftover.exists()
        assert reopened.recover_bytes(file_id) == b"keep me"

    def test_fresh_tmp_files_survive_init(self, tmp_path):
        """A young tmp file may belong to a concurrent in-flight save."""
        root = tmp_path / "s"
        FileStore(root)
        in_flight = root / "concurrent-save.params.tmp"
        in_flight.write_bytes(b"still being written")
        FileStore(root)
        assert in_flight.exists()

    def test_gc_spares_fresh_tmp_but_reaps_expired(self, tmp_path):
        # pokes objects_dir: this invariant is file-per-chunk specific
        store = FileStore(tmp_path / "s", layout="files")
        fresh = store.chunks.objects_dir / "deadbeef-12345678.tmp"
        fresh.write_bytes(b"in flight")
        expired = store.chunks.objects_dir / "cafebabe-87654321.tmp"
        expired.write_bytes(b"orphaned tear")
        stale = time.time() - 3600
        os.utime(expired, (stale, stale))
        stats = store.chunks.gc()
        assert fresh.exists()
        assert not expired.exists()
        assert stats["chunks_removed"] == 1


class TestNetworkChunkTransfer:
    def link_store(self, tmp_path):
        return SimulatedNetworkFileStore(
            tmp_path / "s", NetworkModel(bandwidth_bytes_per_s=1e6), sleep=False
        )

    def test_duplicate_chunks_cost_only_the_digest_query(self, tmp_path):
        store = self.link_store(tmp_path)
        payload = b"x" * 100_000
        store.put_chunk("c1", payload)
        sent_first = store.bytes_sent
        store.put_chunk("c1", payload)
        assert store.bytes_sent - sent_first == store.CHUNK_QUERY_BYTES
        assert store.chunks_deduplicated == 1
        assert store.chunk_bytes_deduplicated == len(payload)

    def test_chunked_state_resave_transfers_almost_nothing(self, tmp_path):
        store = self.link_store(tmp_path)
        state = small_state(seed=4)
        hashes = state_dict_hashes(state)
        store.save_state_chunks(state, hashes)
        sent_first = store.bytes_sent
        store.save_state_chunks(state, hashes)
        resave_cost = store.bytes_sent - sent_first
        assert resave_cost < sent_first / 2
        assert store.chunks_deduplicated == len(state)

    def test_get_chunk_charges_download(self, tmp_path):
        store = self.link_store(tmp_path)
        store.put_chunk("c9", b"z" * 5000)
        received_before = store.bytes_received
        store.get_chunk("c9")
        assert store.bytes_received - received_before == 5000

    def test_reset_clears_dedup_counters(self, tmp_path):
        store = self.link_store(tmp_path)
        store.put_chunk("c1", b"abc")
        store.put_chunk("c1", b"abc")
        store.reset_accounting()
        assert store.chunks_deduplicated == 0
        assert store.chunk_bytes_deduplicated == 0
