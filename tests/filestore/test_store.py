"""File store: save/recover, integrity, management."""

import pytest

from repro.filestore import FileNotFoundInStoreError, FileStore


class TestSaveRecover:
    def test_bytes_round_trip(self, file_store):
        file_id = file_store.save_bytes(b"hello world")
        assert file_store.recover_bytes(file_id) == b"hello world"

    def test_suffix_preserved_in_id(self, file_store):
        file_id = file_store.save_bytes(b"data", suffix=".params")
        assert file_id.endswith(".params")

    def test_same_content_gets_distinct_ids(self, file_store):
        a = file_store.save_bytes(b"same")
        b = file_store.save_bytes(b"same")
        assert a != b
        assert file_store.recover_bytes(a) == file_store.recover_bytes(b)

    def test_save_file_copies_contents(self, file_store, tmp_path):
        source = tmp_path / "model.code"
        source.write_bytes(b"def model(): ...")
        file_id = file_store.save_file(source)
        assert file_store.recover_bytes(file_id) == b"def model(): ..."

    def test_recover_to_destination(self, file_store, tmp_path):
        file_id = file_store.save_bytes(b"payload")
        out = file_store.recover_to(file_id, tmp_path / "sub" / "out.bin")
        assert out.read_bytes() == b"payload"

    def test_empty_payload(self, file_store):
        file_id = file_store.save_bytes(b"")
        assert file_store.recover_bytes(file_id) == b""


class TestIntegrity:
    def test_missing_file_raises(self, file_store):
        with pytest.raises(FileNotFoundInStoreError):
            file_store.recover_bytes("deadbeefdeadbeef-000000000000")

    def test_corruption_detected(self, file_store):
        file_id = file_store.save_bytes(b"original")
        (file_store.root / file_id).write_bytes(b"tampered")
        with pytest.raises(IOError, match="corrupt"):
            file_store.recover_bytes(file_id)

    @pytest.mark.parametrize("bad_id", ["../escape", ".hidden"])
    def test_path_traversal_rejected(self, file_store, bad_id):
        with pytest.raises(ValueError):
            file_store.recover_bytes(bad_id)


class TestManagement:
    def test_exists_and_delete(self, file_store):
        file_id = file_store.save_bytes(b"x")
        assert file_store.exists(file_id)
        assert file_store.delete(file_id)
        assert not file_store.exists(file_id)
        assert not file_store.delete(file_id)

    def test_size_and_total(self, file_store):
        a = file_store.save_bytes(b"12345")
        file_store.save_bytes(b"1234567890")
        assert file_store.size(a) == 5
        assert file_store.total_bytes() == 15

    def test_size_of_missing_raises(self, file_store):
        with pytest.raises(FileNotFoundInStoreError):
            file_store.size("deadbeefdeadbeef-000000000000")

    def test_file_ids_listing(self, file_store):
        ids = {file_store.save_bytes(b"a"), file_store.save_bytes(b"b")}
        assert set(file_store.file_ids()) == ids

    def test_clear_empties_store(self, file_store):
        file_store.save_bytes(b"x")
        file_store.clear()
        assert file_store.total_bytes() == 0
        assert file_store.file_ids() == []
