"""Content-defined chunking: boundary stability, bounds, v2 manifests."""

import numpy as np
import pytest

from repro.errors import StoreCorruptionError
from repro.filestore import FileStore
from repro.filestore.cdc import DEFAULT_TARGET_BYTES, gear_table, split_buffer
from repro.filestore.store import (
    MANIFEST_FORMAT,
    MANIFEST_FORMAT_V2,
    layer_chunk_digests,
    manifest_chunk_digests,
)
from repro.core.hashing import state_dict_hashes


def make_buffer(nbytes, seed=0):
    return np.random.default_rng(seed).integers(
        0, 256, size=nbytes, dtype=np.uint8
    ).tobytes()


class TestSplitter:
    def test_spans_cover_buffer_exactly(self):
        data = make_buffer(500_000)
        spans = split_buffer(data, target_bytes=16 * 1024)
        assert spans[0][0] == 0
        assert spans[-1][1] == len(data)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end == start

    def test_deterministic(self):
        data = make_buffer(300_000, seed=3)
        assert split_buffer(data) == split_buffer(data)

    def test_gear_table_is_stable(self):
        # the table is part of the on-disk format: same content must chunk
        # the same way forever, or dedup against old stores breaks
        table = gear_table()
        assert len(table) == 256
        assert int(table[0]) == int(gear_table()[0])

    def test_min_max_bounds_hold(self):
        data = make_buffer(800_000, seed=1)
        target = 16 * 1024
        spans = split_buffer(data, target_bytes=target)
        sizes = [end - start for start, end in spans]
        for size in sizes[:-1]:
            assert target // 4 <= size <= target * 4
        assert sizes[-1] <= target * 4

    def test_empty_and_tiny_buffers(self):
        assert split_buffer(b"") == [(0, 0)]
        assert split_buffer(b"x" * 100) == [(0, 100)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            split_buffer(b"", target_bytes=16)
        with pytest.raises(ValueError):
            split_buffer(b"", target_bytes=1024, min_bytes=2048)
        with pytest.raises(ValueError):
            split_buffer(b"", target_bytes=1024, max_bytes=512)

    def test_one_byte_edit_shifts_o1_chunks(self):
        """The CDC invariant: a point edit must not re-chunk the buffer."""
        target = 16 * 1024
        data = bytearray(make_buffer(600_000, seed=2))
        before = {
            bytes(data[start:end]) for start, end in
            split_buffer(bytes(data), target_bytes=target)
        }
        data[300_000] ^= 0xFF
        after_spans = split_buffer(bytes(data), target_bytes=target)
        after = {bytes(data[start:end]) for start, end in after_spans}
        changed = len(after - before)
        # only the chunk containing the edit (and at most its neighbours,
        # if the edit lands on/near a boundary) may differ
        assert changed <= 3, f"{changed} of {len(after_spans)} chunks changed"

    def test_fixed_size_chunking_would_fail_on_insert(self):
        """Insertions shift every downstream byte; CDC re-syncs, fixed
        offsets never would — the reason CDC exists."""
        target = 16 * 1024
        data = make_buffer(400_000, seed=4)
        shifted = data[:50_000] + b"\x42" * 7 + data[50_000:]
        before = {
            data[start:end] for start, end in
            split_buffer(data, target_bytes=target)
        }
        after_spans = split_buffer(shifted, target_bytes=target)
        after = {shifted[start:end] for start, end in after_spans}
        shared = len(before & after)
        assert shared >= len(after_spans) // 2


class TestV2Manifests:
    def state(self, seed=0, shift=0.0):
        rng = np.random.default_rng(seed)
        state = {
            "backbone.weight": rng.standard_normal(120_000).astype(np.float32),
            "head.weight": rng.standard_normal(5_000).astype(np.float32),
            "head.bias": np.zeros(10, dtype=np.float32),
        }
        if shift:
            state["head.bias"] = state["head.bias"] + np.float32(shift)
        return state

    def save(self, store, state):
        return store.save_state_chunks(state, state_dict_hashes(state))

    def test_round_trip_is_bitwise(self, tmp_path):
        store = FileStore(tmp_path / "files", cdc=True)
        state = self.state()
        file_id = self.save(store, state)
        manifest = store.read_manifest(file_id)
        assert manifest["format"] == MANIFEST_FORMAT_V2
        recovered = store.recover_state_chunks(file_id)
        for key, want in state.items():
            got = recovered[key]
            assert got.dtype == want.dtype and got.shape == want.shape
            assert np.array_equal(got, want)

    def test_sub_layer_dedup_on_derived_state(self, tmp_path):
        """A small edit to one big layer re-uploads only O(1) chunks."""
        store = FileStore(tmp_path / "files", cdc=True, cdc_target_bytes=16 * 1024)
        base = self.state(seed=7)
        self.save(store, base)
        derived = {k: v.copy() for k, v in base.items()}
        derived["backbone.weight"][123] += 1.0
        stats_before = store.chunks.dedup_stats()
        self.save(store, derived)
        stats = store.chunks.dedup_stats()
        new_logical = stats["logical_bytes"] - stats_before["logical_bytes"]
        new_dedup = stats["dedup_bytes"] - stats_before["dedup_bytes"]
        # nearly everything the second save offered was already stored
        assert new_dedup / new_logical > 0.8
        assert stats["dedup_ratio"] > 1.5

    def test_mixed_v1_and_v2_manifests_coexist(self, tmp_path):
        v1_store = FileStore(tmp_path / "files", cdc=False)
        state = self.state(seed=5)
        v1_id = self.save(v1_store, state)
        assert v1_store.read_manifest(v1_id)["format"] == MANIFEST_FORMAT

        v2_store = FileStore(tmp_path / "files", cdc=True)
        v2_id = self.save(v2_store, self.state(seed=6))
        assert v2_store.read_manifest(v2_id)["format"] == MANIFEST_FORMAT_V2

        # either store recovers either manifest — the reader dispatches on
        # the per-layer entry shape, not the store's save-time setting
        for store in (v1_store, v2_store):
            for file_id, seed in ((v1_id, 5), (v2_id, 6)):
                recovered = store.recover_state_chunks(file_id)
                want = self.state(seed=seed)
                for key in want:
                    assert np.array_equal(recovered[key], want[key])

    def test_digest_helpers(self, tmp_path):
        store = FileStore(tmp_path / "files", cdc=True)
        file_id = self.save(store, self.state())
        manifest = store.read_manifest(file_id)
        digests = manifest_chunk_digests(manifest)
        assert digests
        per_layer = [
            layer_chunk_digests(meta) for _, meta in manifest["layers"]
        ]
        assert sorted(digests) == sorted(d for ds in per_layer for d in ds)

    def test_delete_releases_all_chunk_refs(self, tmp_path):
        store = FileStore(tmp_path / "files", cdc=True)
        file_id = self.save(store, self.state())
        assert len(store.chunks) > 0
        store.delete(file_id)
        assert len(store.chunks) == 0

    def test_corrupt_chunk_detected_on_recovery(self, tmp_path):
        store = FileStore(
            tmp_path / "files", cdc=True, layout="files", verify_reads=True
        )
        file_id = self.save(store, self.state())
        manifest = store.read_manifest(file_id)
        digest = layer_chunk_digests(manifest["layers"][0][1])[0]
        path = store.chunks.root / "objects" / digest
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        with pytest.raises(StoreCorruptionError):
            store.recover_state_chunks(file_id, verify=True)

    def test_fsck_verifies_v2_chunks_by_content_digest(self, tmp_path):
        from repro.core import ArchitectureRef, ModelManager, ModelSaveInfo
        from repro.core.baseline import BaselineSaveService
        from repro.docstore import DocumentStore
        from tests.conftest import make_tiny_cnn

        store = FileStore(tmp_path / "files", cdc=True, layout="files")
        service = BaselineSaveService(DocumentStore(), store)
        arch = ArchitectureRef.from_factory(
            "tests.conftest", "make_tiny_cnn", {"num_classes": 10}
        )
        service.save_model(ModelSaveInfo(make_tiny_cnn(), arch))
        manager = ModelManager(service)
        assert manager.fsck().clean

        digest = sorted(store.chunks.chunk_ids())[0]
        path = store.chunks.root / "objects" / digest
        payload = bytearray(path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        path.write_bytes(bytes(payload))
        report = manager.fsck(repair=False)
        assert "corrupt_chunk" in {issue.kind for issue in report.issues}

    def test_parallel_recovery_matches_serial(self, tmp_path):
        store = FileStore(tmp_path / "files", cdc=True, workers=4)
        state = self.state(seed=9)
        file_id = self.save(store, state)
        recovered = store.recover_state_chunks(file_id, workers=4)
        for key in state:
            assert np.array_equal(recovered[key], state[key])

    def test_env_var_enables_cdc(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CDC", "1")
        store = FileStore(tmp_path / "files")
        assert store.cdc is True
        monkeypatch.setenv("REPRO_CDC", "0")
        assert FileStore(tmp_path / "files2").cdc is False

    def test_default_target_is_64k(self, tmp_path):
        store = FileStore(tmp_path / "files", cdc=True)
        assert store.cdc_target_bytes == DEFAULT_TARGET_BYTES == 64 * 1024
