"""Smoke tests: every shipped example runs end to end.

Examples are the library's de-facto acceptance tests — they drive the
public API exactly the way a downstream user would, and each one asserts
its own correctness conditions (bitwise-exact recovery, verified
checksums) internally.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "battery_fleet",
        "approach_selection",
        "reproducibility_probe",
        "nlp_finetuning",
    ],
)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} produced no output"


def test_every_example_file_is_covered():
    shipped = {p.stem for p in EXAMPLES_DIR.glob("*.py")}
    covered = {
        "quickstart",
        "battery_fleet",
        "approach_selection",
        "reproducibility_probe",
        "nlp_finetuning",
    }
    assert shipped == covered, (
        f"examples and smoke tests out of sync: {shipped ^ covered}"
    )
