"""Ambient deadlines: scoping, retry integration, storage propagation."""

import pytest

from repro import deadline
from repro.deadline import Deadline
from repro.docstore.client import DocumentStoreClient
from repro.errors import DeadlineExceededError, TransientStoreError
from repro.retry import RetryPolicy


class ManualClock:
    def __init__(self, start: float = 0.0):
        self.t = float(start)

    def perf(self) -> float:
        return self.t

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestDeadline:
    def test_remaining_and_expiry(self):
        clock = ManualClock()
        budget = Deadline(2.0, clock=clock)
        assert budget.remaining() == pytest.approx(2.0)
        assert not budget.expired()
        clock.advance(1.5)
        assert budget.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert budget.expired()
        assert budget.remaining() == 0.0  # clamped, never negative
        with pytest.raises(DeadlineExceededError, match="chunk.read"):
            budget.check("chunk.read")

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-0.1, clock=ManualClock())

    def test_check_passes_before_expiry(self):
        budget = Deadline(1.0, clock=ManualClock())
        budget.check("op")  # no raise


class TestScope:
    def test_no_ambient_outside_scope(self):
        assert deadline.current() is None
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.check("op")  # unbounded: never raises

    def test_scope_binds_and_restores(self):
        clock = ManualClock()
        with deadline.scope(1.0, clock=clock) as bound:
            assert deadline.current() is bound
            assert deadline.remaining() == pytest.approx(1.0)
            clock.advance(2.0)
            assert deadline.expired()
            with pytest.raises(DeadlineExceededError):
                deadline.check("op")
        assert deadline.current() is None

    def test_nested_scope_keeps_tighter_inner(self):
        clock = ManualClock()
        with deadline.scope(10.0, clock=clock):
            with deadline.scope(1.0, clock=clock) as inner:
                assert deadline.remaining() == pytest.approx(1.0)
                assert deadline.current() is inner

    def test_nested_scope_cannot_extend_outer(self):
        clock = ManualClock()
        with deadline.scope(1.0, clock=clock) as outer:
            with deadline.scope(10.0, clock=clock):
                # the generous inner scope is ignored: outer stays bound
                assert deadline.current() is outer
                assert deadline.remaining() == pytest.approx(1.0)


class TestRetryIntegration:
    def policy(self, **kwargs):
        kwargs.setdefault("max_attempts", 5)
        kwargs.setdefault("base_delay_s", 10.0)
        kwargs.setdefault("jitter", 0.0)
        return RetryPolicy(sleep=None, **kwargs)

    def test_deadline_error_is_never_retried(self):
        policy = self.policy()
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise DeadlineExceededError("spent")

        with pytest.raises(DeadlineExceededError):
            policy.call(fn, op="probe")
        assert calls["n"] == 1  # no attempt budget burned
        assert policy.stats["retries"] == 0

    def test_expired_ambient_converts_transient_failure(self):
        clock = ManualClock()
        policy = self.policy()

        def fn():
            clock.advance(5.0)  # the op itself ate the whole budget
            raise TransientStoreError("flaky")

        with deadline.scope(1.0, clock=clock):
            with pytest.raises(DeadlineExceededError) as excinfo:
                policy.call(fn, op="chunk.write")
        assert isinstance(excinfo.value.__cause__, TransientStoreError)
        assert policy.stats["retries"] == 0  # gave up instead of retrying

    def test_backoff_sleep_capped_to_remaining(self):
        clock = ManualClock()
        slept = []
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=10.0, jitter=0.0, sleep=slept.append
        )
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientStoreError("first try fails")
            return "ok"

        with deadline.scope(0.5, clock=clock):
            assert policy.call(fn, op="chunk.read") == "ok"
        assert slept == [pytest.approx(0.5)]  # 10s schedule, 0.5s left

    def test_without_ambient_schedule_is_untouched(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=2, base_delay_s=0.25, jitter=0.0, sleep=slept.append
        )
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientStoreError("first try fails")
            return "ok"

        assert policy.call(fn) == "ok"
        assert slept == [pytest.approx(0.25)]


class TestStoragePropagation:
    def test_sharded_store_checks_deadline(self, tmp_path):
        from tests.cluster.test_sharded_store import make_cluster

        store = make_cluster(tmp_path)
        file_id = store.save_bytes(b"payload" * 100, suffix=".bin")
        clock = ManualClock()
        with deadline.scope(1.0, clock=clock):
            assert store.recover_bytes(file_id)  # plenty of budget
            clock.advance(2.0)
            with pytest.raises(DeadlineExceededError):
                store.recover_bytes(file_id)
            with pytest.raises(DeadlineExceededError):
                store.save_bytes(b"more", suffix=".bin")

    def test_docstore_client_caps_socket_timeouts(self):
        client = DocumentStoreClient.__new__(DocumentStoreClient)  # _capped needs no state
        assert client._capped(5.0) == 5.0  # unbounded: configured timeout
        clock = ManualClock()
        with deadline.scope(1.0, clock=clock):
            assert client._capped(5.0) == pytest.approx(1.0)
            assert client._capped(0.25) == pytest.approx(0.25)  # tighter config wins
            clock.advance(10.0)
            # floor: 0 would flip the socket to non-blocking mode
            assert client._capped(5.0) == pytest.approx(0.001)
