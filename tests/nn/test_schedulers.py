"""Learning-rate schedulers."""

import math

import numpy as np
import pytest

from repro.nn.modules import Parameter
from repro.nn.optim import SGD
from repro.nn.schedulers import CosineAnnealingLR, ExponentialLR, StepLR


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size(self):
        optimizer = make_optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        rates = [scheduler.step() for _ in range(4)]
        assert rates == pytest.approx([1.0, 0.1, 0.1, 0.01])
        assert optimizer.lr == pytest.approx(0.01)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestExponentialLR:
    def test_geometric_decay(self):
        scheduler = ExponentialLR(make_optimizer(), gamma=0.5)
        rates = [scheduler.step() for _ in range(3)]
        assert rates == pytest.approx([0.5, 0.25, 0.125])


class TestCosineAnnealingLR:
    def test_endpoints(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=10, eta_min=0.1)
        for _ in range(10):
            last = scheduler.step()
        assert last == pytest.approx(0.1)

    def test_midpoint_half_amplitude(self):
        scheduler = CosineAnnealingLR(make_optimizer(lr=2.0), t_max=10, eta_min=0.0)
        for _ in range(5):
            last = scheduler.step()
        assert last == pytest.approx(1.0)

    def test_clamps_after_t_max(self):
        scheduler = CosineAnnealingLR(make_optimizer(), t_max=2)
        for _ in range(5):
            last = scheduler.step()
        assert last == pytest.approx(0.0, abs=1e-9)

    def test_invalid_t_max(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), t_max=0)


class TestStateRoundTrip:
    def test_scheduler_state_survives_reload(self):
        optimizer = make_optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        scheduler.step()
        scheduler.step()
        state = scheduler.state_dict()

        fresh_optimizer = make_optimizer()
        fresh = StepLR(fresh_optimizer, step_size=2, gamma=0.1)
        fresh.load_state_dict(state)
        assert fresh.last_epoch == 2
        assert fresh_optimizer.lr == pytest.approx(optimizer.lr)
        # next step continues the same trajectory
        assert fresh.step() == pytest.approx(scheduler.step())

    def test_optimizer_defaults_updated_for_wrapper_state_files(self):
        optimizer = make_optimizer()
        scheduler = ExponentialLR(optimizer, gamma=0.5)
        scheduler.step()
        # the optimizer's serializable defaults must reflect the new rate,
        # so MPA state files capture the scheduled value
        assert optimizer.defaults["lr"] == pytest.approx(0.5)
